"""Ablation — crowd-comparison merge strategies for the ground truth.

The paper merges pairwise judgements into a total order citing
crowdsourced top-k work [16, 17].  This bench compares the three
implemented aggregators (Borda, Copeland, Bradley-Terry) on how well
the merged order recovers the oracle's latent chart quality.
"""

import numpy as np
import pytest
from conftest import print_table

from repro.core.enumeration import enumerate_rule_based
from repro.corpus import PerceptionOracle, aggregate_comparisons, make_table
from repro.ml.metrics import ndcg_at_k


@pytest.fixture(scope="module")
def comparison_setup():
    oracle = PerceptionOracle()
    table = make_table("Airbnb Summary", scale=0.05)
    nodes = enumerate_rule_based(table)
    annotation = oracle.annotate(nodes)
    pairs = oracle.pairwise_comparisons(nodes)
    good = [i for i, ok in enumerate(annotation.labels) if ok]
    return nodes, annotation, pairs, good


@pytest.mark.parametrize("method", ["borda", "copeland", "bradley_terry"])
def test_crowd_merge_method(comparison_setup, method, benchmark):
    nodes, annotation, pairs, good = comparison_setup
    scores = benchmark(aggregate_comparisons, pairs, len(nodes), method)

    # Rank the good charts by the merged order; gains are the latent
    # merged scores the oracle actually used.
    order = sorted(good, key=lambda i: -scores[i])
    gains = [annotation.scores[i] for i in order]
    quality = ndcg_at_k(np.asarray(gains) - min(gains))
    benchmark.extra_info["ndcg_vs_latent"] = round(float(quality), 4)
    assert quality > 0.85  # every merge recovers the latent order well


def test_crowd_merge_report(comparison_setup):
    nodes, annotation, pairs, good = comparison_setup
    rows = []
    for method in ("borda", "copeland", "bradley_terry"):
        scores = aggregate_comparisons(pairs, len(nodes), method)
        order = sorted(good, key=lambda i: -scores[i])
        gains = [annotation.scores[i] for i in order]
        quality = ndcg_at_k(np.asarray(gains) - min(gains))
        rows.append([method, len(pairs), round(float(quality), 4)])
    print_table(
        "Ablation: crowd-comparison merge strategies",
        ["method", "#comparisons", "NDCG vs latent order"],
        rows,
    )
