"""Ablation — correlation families and trend threshold (Section III / IV-B).

The paper's c(X, Y) takes the max over linear / polynomial / power /
log correlations, and Trend(Y) fires when any distribution family fits.
This bench quantifies what each choice buys: restricting to the linear
family alone must lose nonlinear relationships, and the trend R^2
threshold trades precision against recall of "follows a distribution".
"""

import numpy as np
import pytest
from conftest import print_table

from repro.core.correlation import CORRELATION_FAMILIES, correlation
from repro.core.trend import fit_trend


@pytest.fixture(scope="module")
def planted_relationships():
    rng = np.random.default_rng(11)
    x = np.linspace(1, 50, 300)
    noise = lambda s: rng.normal(0, s, len(x))
    return {
        "linear": (x, 3 * x + 5 + noise(5)),
        "power": (x, x**1.8 + noise(30)),
        "log": (x, 12 * np.log(x) + noise(1.5)),
        "parabola": (x - 25, (x - 25) ** 2 + noise(20)),
        "noise": (x, noise(10.0)),
    }


def test_correlation_family_ablation(planted_relationships, benchmark):
    def run():
        rows = []
        for name, (x, y) in planted_relationships.items():
            full = correlation(x, y).strength
            linear_only = correlation(x, y, families=("linear",)).strength
            rows.append([name, round(full, 3), round(linear_only, 3)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: correlation families (all four vs linear only)",
        ["relationship", "|c| all families", "|c| linear only"],
        rows,
    )
    by_name = {r[0]: r for r in rows}
    # The nonlinear families rescue relationships plain Pearson misses.
    assert by_name["parabola"][1] > by_name["parabola"][2] + 0.3
    assert by_name["power"][1] >= 0.9
    assert by_name["noise"][1] < 0.4  # no false positives on noise


def test_trend_threshold_ablation(benchmark):
    rng = np.random.default_rng(5)
    clean = np.linspace(0, 10, 50)
    signals = {
        "clean linear": clean,
        "noisy linear": clean + rng.normal(0, 1.0, 50),
        "very noisy": clean + rng.normal(0, 4.0, 50),
        "pure noise": rng.normal(0, 3.0, 50),
    }

    def run():
        rows = []
        for name, y in signals.items():
            r2 = fit_trend(y, r2_threshold=0.0).r_squared
            detections = [
                fit_trend(y, r2_threshold=t).has_trend for t in (0.5, 0.75, 0.9)
            ]
            rows.append([name, round(r2, 3)] + detections)
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: Trend(Y) threshold sweep",
        ["signal", "best R^2", "t=0.5", "t=0.75", "t=0.9"],
        rows,
    )
    by_name = {r[0]: r for r in rows}
    assert by_name["clean linear"][3]      # detected at the default 0.75
    assert not by_name["pure noise"][2]    # never detected, even lax
