"""Ablation — dominance-graph construction strategies (Section IV-C).

The paper proposes quick-sort partition pruning and range-tree indexing
over the naive pairwise construction.  All three must produce the same
edge set; this bench measures their comparison/time trade-off on real
candidate score sets.
"""

import numpy as np
import pytest
from conftest import print_table

from repro.core import PartialOrderScorer, build_graph, enumerate_rule_based
from repro.core.graph import GRAPH_STRATEGIES
from repro.corpus import make_table


@pytest.fixture(scope="module")
def factor_scores():
    table = make_table("NFL Player Statistics", scale=0.02)
    nodes = enumerate_rule_based(table)
    return PartialOrderScorer().score(nodes)


@pytest.mark.parametrize("strategy", sorted(GRAPH_STRATEGIES))
def test_graph_construction_strategy(factor_scores, strategy, benchmark):
    graph = benchmark(build_graph, factor_scores, strategy)
    benchmark.extra_info["nodes"] = graph.num_nodes
    benchmark.extra_info["edges"] = graph.num_edges
    # Strategies are interchangeable: identical dominance edges.
    reference = build_graph(factor_scores, "naive")
    assert graph.edge_set() == reference.edge_set()


def test_graph_strategies_scale_report(factor_scores):
    import time

    rows = []
    for strategy in sorted(GRAPH_STRATEGIES):
        start = time.perf_counter()
        graph = build_graph(factor_scores, strategy)
        elapsed = time.perf_counter() - start
        rows.append([strategy, graph.num_nodes, graph.num_edges, round(1000 * elapsed, 2)])
    print_table(
        "Ablation: graph construction strategies",
        ["strategy", "nodes", "edges", "ms"],
        rows,
    )
