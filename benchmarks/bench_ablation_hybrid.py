"""Ablation — hybrid preference weight alpha sweep (Section IV-D).

HybridRank scores a chart l_v + alpha * p_v.  alpha = 0 is pure
learning-to-rank, large alpha approaches the pure partial order; the
tuned alpha should sit at or above both endpoints' NDCG.
"""

import numpy as np
from conftest import print_table

from repro.experiments import METHODS, ndcg_with_exponential_gain


def test_hybrid_alpha_sweep(setup, benchmark):
    def sweep():
        grid = (0.0, 0.25, 0.5, 1.0, 2.0, 5.0, 100.0)
        results = {alpha: [] for alpha in grid}
        for annotated in setup.test:
            n = len(annotated.nodes)
            relevance = annotated.annotation.relevance
            po_pos = np.empty(n)
            po_pos[np.asarray(setup.partial_order_full_ranking(annotated))] = (
                np.arange(1, n + 1)
            )
            ltr_pos = np.empty(n)
            ltr_pos[np.asarray(setup.ltr_full_ranking(annotated))] = np.arange(1, n + 1)
            for alpha in grid:
                order = list(np.argsort(ltr_pos + alpha * po_pos, kind="stable"))
                results[alpha].append(
                    ndcg_with_exponential_gain(order, relevance)
                )
        return {alpha: float(np.mean(v)) for alpha, v in results.items()}

    means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_table(
        "Ablation: hybrid alpha sweep (mean NDCG over X1-X10)",
        ["alpha", "mean NDCG"],
        [[alpha, round(v, 4)] for alpha, v in means.items()],
    )
    benchmark.extra_info.update({str(a): round(v, 4) for a, v in means.items()})

    best_alpha = max(means, key=means.get)
    # A mixture should match or beat both pure endpoints.
    assert means[best_alpha] >= means[0.0] - 1e-9
    assert means[best_alpha] >= means[100.0] - 1e-9
