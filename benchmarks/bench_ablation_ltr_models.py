"""Ablation — learning-to-rank model families: LambdaMART vs RankNet.

The paper cites RankNet [10] as the learning-to-rank foundation and
uses LambdaMART [11] as the model.  This ablation trains both on the
same per-table graded relevance and compares their NDCG on the testing
datasets (using the paper's strict 14-feature encoding for both).
"""

import numpy as np
import pytest
from conftest import print_table

from repro.core.features import encode_features
from repro.experiments import ndcg_with_exponential_gain
from repro.ml import RankNet
from repro.ml.lambdamart import RankingDataset


def _encode(nodes):
    return encode_features([n.features for n in nodes], extended=False)


@pytest.fixture(scope="module")
def ranknet_model(setup):
    matrices, relevance, qids = [], [], []
    for gid, annotated in enumerate(setup.train):
        if not annotated.nodes:
            continue
        matrices.append(_encode(annotated.nodes))
        relevance.append(np.asarray(annotated.annotation.relevance))
        qids.append(np.full(len(annotated.nodes), gid))
    data = RankingDataset(
        np.vstack(matrices), np.concatenate(relevance), np.concatenate(qids)
    )
    return RankNet(hidden_units=24, epochs=25).fit(data)


def test_ranknet_vs_lambdamart(setup, ranknet_model, benchmark):
    def evaluate():
        results = {"lambdamart": [], "ranknet": []}
        for annotated in setup.test:
            relevance = annotated.annotation.relevance
            lm_order = setup.ltr_full_ranking(annotated)
            results["lambdamart"].append(
                ndcg_with_exponential_gain(lm_order, relevance)
            )
            scores = ranknet_model.predict(_encode(annotated.nodes))
            rn_order = list(np.argsort(-scores, kind="stable"))
            results["ranknet"].append(
                ndcg_with_exponential_gain(rn_order, relevance)
            )
        return results

    results = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    means = {k: float(np.mean(v)) for k, v in results.items()}
    print_table(
        "Ablation: LTR model families (mean NDCG, X1-X10)",
        ["model", "mean NDCG"],
        [[k, round(v, 4)] for k, v in means.items()],
    )
    benchmark.extra_info.update({k: round(v, 4) for k, v in means.items()})
    # Both are credible rankers: well above the ~0.5 range of random
    # full-list orderings on these gain profiles.
    assert means["lambdamart"] > 0.6
    assert means["ranknet"] > 0.55
