"""Ablation — progressive tournament top-k vs full materialisation
(Section V-B).

The progressive method should (a) return the same top-k composite
scores as scoring every rule-based candidate, while (b) opening fewer
column leaves for small k — the paper's "do not generate the groups of
a column" optimization.
"""

import pytest
from conftest import print_table

from repro.core import enumerate_rule_based, progressive_top_k
from repro.core.enumeration import EnumerationConfig
from repro.corpus import make_table


@pytest.fixture(scope="module")
def wide_table():
    return make_table("McDonald's Menu", scale=0.3)


def test_progressive_vs_full_enumeration_speed(wide_table, benchmark):
    result = benchmark(progressive_top_k, wide_table, 5)
    assert len(result.nodes) == 5
    benchmark.extra_info["columns_opened"] = result.columns_opened
    benchmark.extra_info["columns_total"] = result.columns_total
    benchmark.extra_info["candidates_generated"] = result.candidates_generated


def test_full_enumeration_baseline_speed(wide_table, benchmark):
    nodes = benchmark(enumerate_rule_based, wide_table)
    benchmark.extra_info["candidates"] = len(nodes)


def test_progressive_prunes_and_report(wide_table):
    """Pruning power depends on column-importance skew.

    The menu table is the adversarial case — 20+ interchangeable numeric
    columns give every leaf the same upper bound, so nothing can be
    skipped (reported for reference).  A schema with skewed types (the
    FlyDelay table: one temporal, two categorical, three numeric
    columns) lets the tournament leave low-bound columns closed.
    """
    config = EnumerationConfig()
    rows = []
    for name, table in (("menu (uniform)", wide_table),
                        ("flights (skewed)", make_table("FlyDelay", scale=0.01))):
        all_nodes = enumerate_rule_based(table, config)
        for k in (1, 5, 25):
            result = progressive_top_k(table, k, config)
            rows.append(
                [
                    name,
                    k,
                    f"{result.columns_opened}/{result.columns_total}",
                    result.candidates_generated,
                    len(all_nodes),
                ]
            )
    print_table(
        "Ablation: progressive pruning vs full enumeration",
        ["table", "k", "columns opened", "candidates generated", "full candidates"],
        rows,
    )
    # On the skewed schema, small k must leave columns unopened.
    skewed = make_table("FlyDelay", scale=0.01)
    small_k = progressive_top_k(skewed, 1, config)
    assert small_k.columns_opened < small_k.columns_total
