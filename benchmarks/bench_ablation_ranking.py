"""Ablation — topological-sort baseline vs weight-aware S(v) ranking.

Section IV-C argues the straw-man topological ranking ignores edge
weights; the weight-aware score should align better with ground truth.
"""

import numpy as np
from conftest import print_table

from repro.core import PartialOrderScorer, build_graph, rank_topological, rank_weight_aware
from repro.experiments import ndcg_with_exponential_gain


def test_ranking_method_quality(setup, benchmark):
    def evaluate():
        scores = {"topological": [], "weight_aware": []}
        scorer = PartialOrderScorer()
        for annotated in setup.test:
            keep = setup.decision_tree.predict(annotated.nodes)
            valid = [n for n, k in zip(annotated.nodes, keep) if k]
            relevance = [
                r for r, k in zip(annotated.annotation.relevance, keep) if k
            ]
            if len(valid) < 3:
                continue
            graph = build_graph(scorer.score(valid), "range_tree")
            scores["topological"].append(
                ndcg_with_exponential_gain(rank_topological(graph), relevance)
            )
            scores["weight_aware"].append(
                ndcg_with_exponential_gain(rank_weight_aware(graph), relevance)
            )
        return scores

    scores = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    means = {k: float(np.mean(v)) for k, v in scores.items()}
    print_table(
        "Ablation: ranking method NDCG (valid charts only)",
        ["method", "mean NDCG", "#tables"],
        [[k, round(v, 3), len(scores[k])] for k, v in means.items()],
    )
    benchmark.extra_info.update({k: round(v, 4) for k, v in means.items()})
    # The weight-aware method should not lose to the straw man.
    assert means["weight_aware"] >= means["topological"] - 0.02


def test_ranking_method_speed(setup, benchmark):
    scorer = PartialOrderScorer()
    annotated = max(setup.test, key=lambda a: len(a.nodes))
    graph = build_graph(scorer.score(annotated.nodes), "range_tree")

    def both():
        rank_topological(graph)
        rank_weight_aware(graph)

    benchmark(both)
    benchmark.extra_info["nodes"] = graph.num_nodes
    benchmark.extra_info["edges"] = graph.num_edges
