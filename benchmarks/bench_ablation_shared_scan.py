"""Ablation — shared-scan batch execution vs naive per-query scans.

The paper's Section V-B optimization (and the SeeDB-style DB sharing it
cites): a candidate workload re-uses each transform across many (Y, AGG)
tails, so scanning once per transform instead of once per query should
win roughly the ratio of queries to distinct transforms.
"""

import pytest
from conftest import print_table

from repro.corpus import make_table
from repro.engine import AggregateRequest, SharedScanEngine
from repro.language import AggregateOp, BinByGranularity, BinGranularity, BinIntoBuckets, GroupBy


def _workload(table):
    """An enumeration-shaped workload: every rule transform x every
    numeric Y x SUM/AVG, plus counts."""
    from repro.core.rules import transform_rules
    from repro.dataset import ColumnType

    requests = []
    numeric = [c.name for c in table.columns_of_type(ColumnType.NUMERICAL)]
    for column in table.columns:
        for transform in transform_rules(column):
            requests.append(AggregateRequest(transform, AggregateOp.CNT))
            for y in numeric:
                if y == column.name:
                    continue
                requests.append(AggregateRequest(transform, AggregateOp.SUM, y))
                requests.append(AggregateRequest(transform, AggregateOp.AVG, y))
    return requests


@pytest.fixture(scope="module")
def setup_workload():
    table = make_table("FlyDelay", scale=0.05)
    return table, _workload(table)


def test_shared_scan_execution(setup_workload, benchmark):
    table, requests = setup_workload
    engine = SharedScanEngine(table)
    results = benchmark(engine.execute_batch, requests)
    assert len(results) == len(requests)
    benchmark.extra_info["queries"] = len(requests)


def test_naive_scan_execution(setup_workload, benchmark):
    table, requests = setup_workload
    engine = SharedScanEngine(table)
    results = benchmark(engine.execute_naive, requests)
    assert len(results) == len(requests)


def test_shared_scan_work_report(setup_workload):
    import time

    table, requests = setup_workload
    engine = SharedScanEngine(table)

    start = time.perf_counter()
    engine.execute_batch(requests)
    shared_seconds = time.perf_counter() - start
    shared_transforms = engine.stats.transforms_applied
    shared_passes = engine.stats.column_passes

    engine.stats.reset()
    start = time.perf_counter()
    engine.execute_naive(requests)
    naive_seconds = time.perf_counter() - start

    print_table(
        "Ablation: shared-scan vs naive execution",
        ["strategy", "queries", "transform passes", "column passes", "ms"],
        [
            ["shared", len(requests), shared_transforms, shared_passes,
             round(1000 * shared_seconds, 1)],
            ["naive", len(requests), engine.stats.transforms_applied,
             engine.stats.column_passes, round(1000 * naive_seconds, 1)],
        ],
    )
    # The headline: orders-of-magnitude fewer table scans.
    assert shared_transforms < engine.stats.transforms_applied / 5
    assert shared_seconds < naive_seconds
