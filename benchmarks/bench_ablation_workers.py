"""Ablation — worker-quality weighting vs unweighted crowd merging.

With a realistic annotator pool (some spammers), estimating per-worker
quality and weighting votes should cut pairwise merge errors — the
reason crowd pipelines (and the paper's cited top-k work) model worker
reliability at all.
"""

import numpy as np
import pytest
from conftest import print_table

from repro.corpus import WorkerPool, estimate_worker_quality, weighted_merge


def _setting(spammer_fraction: float, seed: int):
    rng = np.random.default_rng(seed)
    scores = list(np.linspace(0.0, 1.0, 10))
    num_workers = 12
    num_spammers = int(round(spammer_fraction * num_workers))
    accuracies = [0.9] * (num_workers - num_spammers) + [0.5] * num_spammers
    pool = WorkerPool(accuracies, resolution=0.03, seed=seed)
    pairs = [(i, j) for i in range(10) for j in range(i + 1, 10)] * 6
    judgements = pool.collect(scores, pairs, judgements_per_pair=5)
    return scores, accuracies, judgements


def _error_rate(winners, scores):
    wrong = sum(1 for a, b in winners if scores[a] < scores[b])
    return wrong / len(winners) if winners else 0.0


def test_worker_quality_weighting(benchmark):
    def run():
        rows = []
        for spammer_fraction in (0.0, 0.25, 0.5):
            weighted_errors, unweighted_errors = [], []
            for seed in range(5):
                scores, accuracies, judgements = _setting(spammer_fraction, seed)
                quality = estimate_worker_quality(judgements, len(accuracies))
                weighted = weighted_merge(judgements, len(accuracies), quality)
                flat = weighted_merge(
                    judgements, len(accuracies),
                    np.full(len(accuracies), 0.7),
                )
                weighted_errors.append(_error_rate(weighted, scores))
                unweighted_errors.append(_error_rate(flat, scores))
            rows.append(
                [
                    f"{spammer_fraction:.0%}",
                    round(float(np.mean(unweighted_errors)), 4),
                    round(float(np.mean(weighted_errors)), 4),
                ]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: crowd merge error rate vs spammer fraction",
        ["spammers", "unweighted", "quality-weighted"],
        rows,
    )
    # Weighting must not hurt, and must help once spammers are present.
    by_fraction = {r[0]: r for r in rows}
    assert by_fraction["50%"][2] <= by_fraction["50%"][1] + 1e-9
