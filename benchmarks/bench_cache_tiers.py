"""Cache-tier benchmark: persistent L4 fleet reuse + batch dedup.

Two headline measurements, both written to ``BENCH_cache.json``:

* **cold vs warm fleet** — the same fleet of tables is served twice by
  *separate Python processes* sharing one ``--cache-dir``.  The first
  (cold) process computes everything and populates the disk tier; the
  second (warm) process starts with empty in-memory LRUs and must serve
  from L4.  The headline is ``speedup = cold / warm`` (medians of
  repeats); the run **fails (exit 1) when speedup < --min-speedup**
  (default 5x, the ISSUE's acceptance bar).  Timing covers only the
  selection loop inside each worker — interpreter startup is excluded
  by timing in-process and reporting the number back over stdout.

* **batch dedup** — a fleet containing content-identical columns under
  different names is served serially (``n_jobs=1``) with cross-table
  sharing off and on; the :data:`repro.obs.kernels.KERNEL_STATS` ledger
  counts transform-kernel invocations each way.  Dedup must strictly
  reduce them (serial so the per-process ledger sees every call).

Run standalone (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_cache_tiers.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
import time
from typing import Dict, List, Optional

_WORKER = """
import json, sys, time
from repro.corpus.generators import make_table
from repro.core import select_top_k
from repro.engine import DiskCacheTier, MultiLevelCache

spec = json.loads(sys.stdin.read())
tables = [
    make_table(name, scale=spec["scale"], seed=seed)
    for name, seed in spec["fleet"]
]
cache = MultiLevelCache(disk=DiskCacheTier(spec["cache_dir"]))
start = time.perf_counter()
for table in tables:
    select_top_k(table, k=spec["k"], cache=cache)
seconds = time.perf_counter() - start
disk = cache.disk.stats()
print(json.dumps({
    "seconds": seconds,
    "disk_hits": disk["hits"],
    "disk_misses": disk["misses"],
    "disk_stores": disk["stores"],
}))
"""


def _run_fleet(cache_dir: str, fleet, scale: float, k: int) -> Dict:
    """One fleet pass in a fresh process sharing ``cache_dir``."""
    spec = json.dumps(
        {"cache_dir": cache_dir, "fleet": fleet, "scale": scale, "k": k}
    )
    proc = subprocess.run(
        [sys.executable, "-c", _WORKER],
        input=spec, capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout)


def bench_fleet(fleet, scale: float, k: int, repeats: int) -> Dict:
    cold_times: List[float] = []
    warm_times: List[float] = []
    cold_stats = warm_stats = None
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(prefix="repro-l4-") as cache_dir:
            cold_stats = _run_fleet(cache_dir, fleet, scale, k)
            warm_stats = _run_fleet(cache_dir, fleet, scale, k)
            cold_times.append(cold_stats["seconds"])
            warm_times.append(warm_stats["seconds"])
    cold = statistics.median(cold_times)
    warm = statistics.median(warm_times)
    return {
        "tables": len(fleet),
        "repeats": repeats,
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "speedup": round(cold / warm, 2) if warm > 0 else float("inf"),
        "cold_disk": {key: cold_stats[key] for key in
                      ("disk_hits", "disk_misses", "disk_stores")},
        "warm_disk": {key: warm_stats[key] for key in
                      ("disk_hits", "disk_misses", "disk_stores")},
    }


def bench_dedup(scale: float, k: int) -> Dict:
    from repro.core import DeepEye
    from repro.corpus.generators import make_table
    from repro.dataset import Table
    from repro.obs.kernels import KERNEL_STATS

    kernels = ("group_categorical", "bin_numeric", "bin_temporal", "bin_udf")
    base = make_table("City Weather", scale=scale, seed=3)
    twin = Table(
        "City Weather Twin",
        [col.renamed(f"{col.name}_copy") for col in base.columns],
    )
    fleet = [base, twin, make_table("Monthly Sales", scale=scale, seed=4)]

    def run(dedup: bool):
        engine = DeepEye(ranking="partial_order")
        KERNEL_STATS.reset()
        start = time.perf_counter()
        list(engine.top_k_batch(fleet, k=k, n_jobs=1, dedup=dedup))
        seconds = time.perf_counter() - start
        return KERNEL_STATS.calls(*kernels), seconds

    calls_off, seconds_off = run(False)
    calls_on, seconds_on = run(True)
    return {
        "tables": len(fleet),
        "transform_calls_without_dedup": calls_off,
        "transform_calls_with_dedup": calls_on,
        "calls_saved": calls_off - calls_on,
        "seconds_without_dedup": round(seconds_off, 4),
        "seconds_with_dedup": round(seconds_on, 4),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller fleet, 1 repeat")
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=5.0)
    parser.add_argument("--out", default="BENCH_cache.json")
    args = parser.parse_args(argv)

    fleet = [
        ["City Weather", 3], ["Monthly Sales", 4], ["FlyDelay", 5],
        ["Happiness Rank", 6], ["City Weather", 7], ["Monthly Sales", 8],
    ]
    repeats = args.repeats
    if args.quick:
        fleet = fleet[:3]
        repeats = 1

    fleet_result = bench_fleet(fleet, args.scale, args.k, repeats)
    dedup_result = bench_dedup(args.scale, args.k)

    passed = (
        fleet_result["speedup"] >= args.min_speedup
        and fleet_result["warm_disk"]["disk_hits"] > 0
        and dedup_result["calls_saved"] > 0
    )
    payload = {
        "benchmark": "cache_tiers",
        "scale": args.scale,
        "k": args.k,
        "cpus": os.cpu_count(),
        "min_speedup": args.min_speedup,
        "fleet": fleet_result,
        "batch_dedup": dedup_result,
        "passed": passed,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    print(f"cold fleet:  {fleet_result['cold_seconds']}s")
    print(f"warm fleet:  {fleet_result['warm_seconds']}s "
          f"({fleet_result['speedup']}x, "
          f"{fleet_result['warm_disk']['disk_hits']} L4 hits)")
    print(f"batch dedup: {dedup_result['transform_calls_without_dedup']} -> "
          f"{dedup_result['transform_calls_with_dedup']} transform kernel "
          f"calls ({dedup_result['calls_saved']} saved)")
    print(f"passed: {passed}  ->  {args.out}")
    return 0 if passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
