"""Cross-validation check (the paper's "cross validation ... similar
results" note in Section VI).

Runs 5-fold table-level CV of the three recognition models over the
whole 42-table corpus and asserts the Figure 10 shape — decision tree
best — holds out-of-fold too.
"""

import numpy as np
from conftest import print_table

from repro.experiments import cross_validate_recognition


def test_crossval_recognition(setup, benchmark):
    corpus = setup.train + setup.test
    result = benchmark.pedantic(
        cross_validate_recognition,
        args=(corpus,),
        kwargs={"n_folds": 5},
        rounds=1,
        iterations=1,
    )

    rows = []
    for model in ("bayes", "svm", "decision_tree"):
        per_fold = [round(fold[model], 3) for fold in result.folds]
        rows.append([model] + per_fold + [round(result.mean_f1(model), 3)])
    print_table(
        "Cross-validation: recognition F-measure per fold",
        ["model"] + [f"fold {i + 1}" for i in range(5)] + ["mean"],
        rows,
    )

    benchmark.extra_info["winner"] = result.winner()
    # The paper's CV claim: the train/test conclusion holds under CV.
    assert result.winner() == "decision_tree"
    assert result.mean_f1("decision_tree") > 0.6
