"""Extension bench — the multi-column search space (Section II-B).

Not a paper figure: the paper only derives the multi-column search-space
sizes (44m(i+2)Σ4^i C(m,i) and 704m^3) and leaves evaluation to future
work.  This bench measures what our rule-guided enumeration reduces
those spaces to, and how fast the two execution paths are.
"""

import pytest
from conftest import print_table

from repro.core import (
    enumerate_grouped,
    enumerate_multi_series,
    multi_column_space,
    multi_series_quality,
)
from repro.corpus import make_table


@pytest.fixture(scope="module")
def table():
    return make_table("FlyDelay", scale=0.02)


def test_multi_series_enumeration(table, benchmark):
    candidates = benchmark(enumerate_multi_series, table)
    benchmark.extra_info["candidates"] = len(candidates)
    assert candidates
    best = max(candidates, key=multi_series_quality)
    assert multi_series_quality(best) > 0.1


def test_grouped_enumeration(table, benchmark):
    candidates = benchmark(enumerate_grouped, table)
    benchmark.extra_info["candidates"] = len(candidates)
    assert candidates


def test_multicolumn_space_reduction_report(table):
    m = table.num_columns
    theoretical = multi_column_space(m)
    series = enumerate_multi_series(table)
    grouped = enumerate_grouped(table)
    print_table(
        "Extension: multi-column search-space reduction",
        ["space", "candidates"],
        [
            [f"theoretical 704*m^3 (m={m})", theoretical],
            ["rule-guided multi-series", len(series)],
            ["rule-guided grouped (X,Y,Z)", len(grouped)],
        ],
    )
    assert len(series) + len(grouped) < theoretical
