"""Figure 10 — average precision/recall/F-measure of Bayes, SVM, DT.

Paper shape: decision tree >> SVM > Bayes, with DT around 95% F-measure.
Our oracle carries an irreducible set-level noise component, so absolute
numbers sit lower, but the ordering (DT best) must hold.
"""

from conftest import print_table

from repro.experiments import MODEL_LABELS, figure10


def test_figure10_recognition_effectiveness(setup, benchmark):
    result = benchmark.pedantic(figure10, args=(setup,), rounds=1, iterations=1)

    print_table(
        "Figure 10: average recognition effectiveness (%)",
        ["model", "precision", "recall", "F-measure"],
        [
            [
                MODEL_LABELS[model],
                round(100 * metrics["precision"], 1),
                round(100 * metrics["recall"], 1),
                round(100 * metrics["f1"], 1),
            ]
            for model, metrics in result.items()
        ],
    )

    for model, metrics in result.items():
        benchmark.extra_info[f"{model}_f1"] = round(metrics["f1"], 4)

    # The paper's headline claim: the decision tree wins.
    assert result["decision_tree"]["f1"] >= result["svm"]["f1"]
    assert result["decision_tree"]["f1"] >= result["bayes"]["f1"]
    assert result["decision_tree"]["f1"] > 0.65
