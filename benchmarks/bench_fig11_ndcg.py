"""Figure 11(a)-(e) — NDCG of partial order vs learning-to-rank vs hybrid.

Paper shape: the partial order always beats learning-to-rank (PO
0.81-0.97 vs LTR 0.52-0.85), and HybridRank outperforms both on
average (paper: 0.94 mean).
"""

import numpy as np
from conftest import print_table

from repro.experiments import METHODS, figure11, figure11_by_chart

_LABELS = {
    "partial_order": "Partial Order",
    "learning_to_rank": "Learning to Rank",
    "hybrid": "HybridRank",
}


def test_figure11a_overall_ndcg(setup, benchmark):
    result = benchmark.pedantic(figure11, args=(setup,), rounds=1, iterations=1)

    datasets = [f"X{i}" for i in range(1, 11)]
    rows = [
        [_LABELS[m]] + [round(v, 3) for v in result[m]] + [round(float(np.mean(result[m])), 3)]
        for m in METHODS
    ]
    print_table(
        "Figure 11(a): NDCG per testing dataset",
        ["method"] + datasets + ["mean"],
        rows,
    )

    means = {m: float(np.mean(result[m])) for m in METHODS}
    for method, mean in means.items():
        benchmark.extra_info[f"{method}_mean_ndcg"] = round(mean, 4)

    # Paper shape: partial order >= learning to rank; hybrid best overall
    # (small tolerances absorb per-run scale noise).
    assert means["partial_order"] >= means["learning_to_rank"] - 0.01
    assert means["hybrid"] >= max(means["partial_order"], means["learning_to_rank"]) - 0.02


def test_figure11bcde_ndcg_by_chart_type(setup, benchmark):
    result = benchmark.pedantic(
        figure11_by_chart, args=(setup,), rounds=1, iterations=1
    )

    rows = []
    for chart, per_method in result.items():
        for method in METHODS:
            values = per_method[method]
            if values:
                rows.append(
                    [chart, _LABELS[method], round(float(np.mean(values)), 3), len(values)]
                )
    print_table(
        "Figure 11(b-e): mean NDCG by chart type",
        ["chart", "method", "mean NDCG", "#tables"],
        rows,
    )

    assert set(result) == {"bar", "line", "pie", "scatter"}
    # Per the paper, behaviour varies per type, but the expert partial
    # order stays competitive with LTR in the aggregate across types.
    po = np.mean([np.mean(v["partial_order"]) for v in result.values() if v["partial_order"]])
    ltr = np.mean([np.mean(v["learning_to_rank"]) for v in result.values() if v["learning_to_rank"]])
    assert po >= ltr - 0.05
