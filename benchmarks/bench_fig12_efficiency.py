"""Figure 12 — end-to-end latency of the E/R x L/P configurations.

Paper shape: rule-based enumeration (R*) always beats exhaustive (E*)
because it never generates bad candidates; partial-order selection (*P)
beats learning-to-rank (*L) because LTR must score every candidate.
Absolute milliseconds differ from the paper's MacBook; the orderings
and the % breakdown per phase are the reproduced claims.
"""

import numpy as np
from conftest import print_table

from repro.experiments import CONFIGURATIONS, figure12


def test_figure12_end_to_end_latency(setup, benchmark):
    rows = benchmark.pedantic(
        figure12, args=(setup,), kwargs={"k": 10}, rounds=1, iterations=1
    )

    printable = [
        [
            r.dataset[:24],
            r.label,
            round(1000 * r.total_seconds, 1),
            f"{100 * r.enumerate_fraction:.0f}%",
            f"{100 * r.select_fraction:.0f}%",
            r.candidates,
            r.valid,
        ]
        for r in rows
    ]
    print_table(
        "Figure 12: end-to-end time (ms) per configuration",
        ["dataset", "config", "total ms", "enum %", "select %", "cands", "valid"],
        printable,
    )

    by_key = {(r.dataset, r.label): r for r in rows}
    datasets = sorted({r.dataset for r in rows})

    # Shape 1: R enumerates strictly fewer candidates than E, everywhere.
    for dataset in datasets:
        assert by_key[(dataset, "RP")].candidates < by_key[(dataset, "EP")].candidates

    # Shape 2: aggregate wall-clock ordering R < E for both selectors.
    def total(label):
        return sum(by_key[(d, label)].total_seconds for d in datasets)

    assert total("RP") < total("EP")
    assert total("RL") < total("EL")
    benchmark.extra_info.update(
        {label: round(total(label), 3) for label, _, _ in
         [(c[0], c[1], c[2]) for c in CONFIGURATIONS]}
    )

    # Shape 3: partial order selection is not slower than LTR overall
    # (LTR must score every candidate; PO prunes via the classifier).
    assert total("EP") <= total("EL") * 1.5
