"""Incremental append-delta benchmark: living tables vs full recompute.

Measures what :class:`repro.engine.IncrementalSession` buys over
re-running ``select_top_k`` from scratch after every append, on a
synthetic "living" table (two categorical, one numerical and one
temporal column — the shape of an event stream that keeps growing).

Three measurements, all written to ``BENCH_incremental.json``:

* **append throughput** — for each batch size, a session absorbs a
  series of append batches while a from-scratch ``select_top_k`` over
  the same grown table is timed next to it.  The headline is
  ``speedup = scratch_median / incremental_median`` at ``--gate-batch``
  (default 256); the run **fails (exit 1) when it is below
  --min-speedup** (default 3x, the ISSUE's acceptance bar).

* **byte identity** — every single measurement is gated through
  :func:`repro.obs.drift.classify_drift` against the scratch result;
  any kind other than ``identical`` fails the run.  The benchmark is
  therefore also a correctness harness: the speedup only counts if the
  incremental top-k is byte-identical to the full recompute.

* **fingerprint micro-bench** — ``Table.append_rows`` continues each
  column's rolling hash over just the delta; the baseline rebuilds the
  grown columns and re-hashes every value.  Both must agree on the
  final hex digest.

Run standalone (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_incremental.py [--quick]
"""

from __future__ import annotations

import argparse
import datetime as dt
import json
import os
import statistics
import time
from typing import Dict, List, Optional

import numpy as np

from repro.core import select_top_k
from repro.dataset import Column, ColumnType, Table
from repro.engine import IncrementalSession
from repro.obs.drift import classify_drift, entry_from_result

_REGIONS = np.array(
    ["north", "south", "east", "west", "centre", "coast",
     "delta", "plains", "ridge", "valley", "summit", "shore"]
)
_TIERS = np.array(["bronze", "silver", "gold", "platinum", "basic", "plus"])
_DAY0 = dt.date(2019, 1, 1).toordinal()
_DAY_SPAN = 2000


def _living_table(n: int, seed: int) -> Table:
    """An event-stream shaped table: 2 Cat + 1 Num + 1 Tem."""
    rng = np.random.default_rng(seed)
    days = [
        dt.date.fromordinal(_DAY0 + int(o))
        for o in rng.integers(0, _DAY_SPAN, n)
    ]
    return Table(
        "living_events",
        [
            Column("region", ColumnType.CATEGORICAL,
                   _REGIONS[rng.integers(0, len(_REGIONS), n)]),
            Column("tier", ColumnType.CATEGORICAL,
                   _TIERS[rng.integers(0, len(_TIERS), n)]),
            Column("revenue", ColumnType.NUMERICAL,
                   rng.normal(250.0, 60.0, n)),
            Column("day", ColumnType.TEMPORAL, days),
        ],
    )


def _batch(seed: int, size: int) -> List[List]:
    rng = np.random.default_rng(seed)
    return [
        [
            str(_REGIONS[rng.integers(len(_REGIONS))]),
            str(_TIERS[rng.integers(len(_TIERS))]),
            float(rng.normal(250.0, 60.0)),
            dt.date.fromordinal(_DAY0 + int(rng.integers(_DAY_SPAN))),
        ]
        for _ in range(size)
    ]


def bench_appends(
    base_rows: int, batch_size: int, appends: int, k: int, seed: int
) -> Dict:
    """Time ``appends`` consecutive batches both ways over one session."""
    session = IncrementalSession(_living_table(base_rows, seed), k=k)
    incremental: List[float] = []
    scratch: List[float] = []
    drift_kinds: List[str] = []
    for i in range(appends):
        rows = _batch(1000 * batch_size + i, batch_size)

        start = time.perf_counter()
        session.append(rows)
        incremental.append(time.perf_counter() - start)

        grown = session.table
        start = time.perf_counter()
        result = select_top_k(grown, k=k, provenance=True)
        scratch.append(time.perf_counter() - start)

        expected = entry_from_result(grown.name, grown.fingerprint(), result)
        drift_kinds.append(classify_drift(expected, session.entry)["kind"])

    inc = statistics.median(incremental)
    scr = statistics.median(scratch)
    return {
        "batch_size": batch_size,
        "appends": appends,
        "final_rows": session.table.num_rows,
        "incremental_seconds": round(inc, 4),
        "scratch_seconds": round(scr, 4),
        "speedup": round(scr / inc, 2) if inc > 0 else float("inf"),
        "rows_per_second": round(batch_size / inc, 1) if inc > 0 else float("inf"),
        "drift_kinds": drift_kinds,
    }


def bench_fingerprint(
    base_rows: int, batch_size: int, repeats: int, seed: int
) -> Dict:
    """Rolling append_rows fingerprint vs full re-hash of the grown table."""
    table = _living_table(base_rows, seed)
    table.fingerprint()  # warm the per-column rolling hash state
    rows = _batch(9999, batch_size)
    rolling: List[float] = []
    full: List[float] = []
    agree = True
    for _ in range(repeats):
        start = time.perf_counter()
        grown = table.append_rows(rows)
        rolling_fp = grown.fingerprint()
        rolling.append(time.perf_counter() - start)

        start = time.perf_counter()
        rebuilt = Table(
            grown.name,
            [Column(c.name, c.ctype, c.values) for c in grown.columns],
        )
        full_fp = rebuilt.fingerprint()
        full.append(time.perf_counter() - start)
        agree = agree and rolling_fp == full_fp

    roll = statistics.median(rolling)
    rehash = statistics.median(full)
    return {
        "base_rows": base_rows,
        "batch_size": batch_size,
        "repeats": repeats,
        "rolling_seconds": round(roll, 6),
        "full_rehash_seconds": round(rehash, 6),
        "speedup": round(rehash / roll, 2) if roll > 0 else float("inf"),
        "fingerprints_agree": agree,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="gate batch only, fewer appends")
    parser.add_argument("--base-rows", type=int, default=100_000)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--appends", type=int, default=5,
                        help="append batches per batch size")
    parser.add_argument("--batch-sizes", type=int, nargs="+",
                        default=[64, 256, 1024])
    parser.add_argument("--gate-batch", type=int, default=256)
    parser.add_argument("--min-speedup", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", default="BENCH_incremental.json")
    args = parser.parse_args(argv)

    batch_sizes = list(args.batch_sizes)
    appends = args.appends
    if args.quick:
        batch_sizes = [args.gate_batch]
        appends = min(appends, 3)
    if args.gate_batch not in batch_sizes:
        batch_sizes.append(args.gate_batch)

    results = [
        bench_appends(args.base_rows, batch, appends, args.k, args.seed)
        for batch in sorted(batch_sizes)
    ]
    fingerprint = bench_fingerprint(
        args.base_rows, args.gate_batch, repeats=5, seed=args.seed
    )

    gate = next(r for r in results if r["batch_size"] == args.gate_batch)
    all_identical = all(
        kind == "identical" for r in results for kind in r["drift_kinds"]
    )
    passed = (
        gate["speedup"] >= args.min_speedup
        and all_identical
        and fingerprint["fingerprints_agree"]
    )

    payload = {
        "benchmark": "incremental",
        "base_rows": args.base_rows,
        "k": args.k,
        "cpus": os.cpu_count(),
        "min_speedup": args.min_speedup,
        "gate_batch": args.gate_batch,
        "batches": results,
        "fingerprint": fingerprint,
        "all_identical": all_identical,
        "passed": passed,
    }
    with open(args.out, "w") as handle:
        json.dump(payload, handle, indent=1)
        handle.write("\n")

    for r in results:
        print(
            f"batch={r['batch_size']:>5}: incremental {r['incremental_seconds']}s"
            f" vs scratch {r['scratch_seconds']}s  ({r['speedup']}x,"
            f" {r['rows_per_second']} rows/s, drift={set(r['drift_kinds'])})"
        )
    print(
        f"fingerprint: rolling {fingerprint['rolling_seconds']}s vs rehash "
        f"{fingerprint['full_rehash_seconds']}s ({fingerprint['speedup']}x)"
    )
    print(f"gate: {gate['speedup']}x >= {args.min_speedup}x at "
          f"batch={args.gate_batch}, identical={all_identical}")
    print(f"passed: {passed}  ->  {args.out}")
    return 0 if passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
