"""Out-of-core ingestion benchmark: pushdown speedup + streaming memory.

Two measurements back the ingestion layer:

* **pushdown vs pull-then-bin** — a seeded sqlite table is charted two
  ways: ``SqlitePushdown.serve`` (GROUP BY runs inside the database,
  bucket arrays come back) vs the historical pull path (fetch every
  row, build the in-memory table, run the transform kernels).  Outputs
  are asserted equal before any timing is trusted; the run **fails
  (exit 1)** when the speedup falls below ``--min-speedup`` (default 3).
* **streaming build memory** — a synthetic million-row source is built
  in streaming mode at two sizes; ``tracemalloc`` peaks must stay under
  ``--max-stream-mb`` and near-constant as rows double (the sketch and
  reservoir are bounded, so doubling the stream must not double the
  peak), and the source is asserted to have been read exactly once.

Results land in ``BENCH_ingestion.json`` (override ``--out``).

Run standalone (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_ingestion.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import sqlite3
import tempfile
import time
import tracemalloc
from pathlib import Path
from typing import Iterator, List, Tuple

import numpy as np

from repro.dataset.inference import ColumnType
from repro.dataset.sources import (
    DEFAULT_CHUNK_ROWS,
    SqlitePushdown,
    SqliteSource,
    TableSource,
    from_source,
)
from repro.language.ast import (
    AggregateOp,
    BinGranularity,
    BinByGranularity,
    BinIntoBuckets,
    GroupBy,
)
from repro.language.binning import (
    bin_numeric,
    bin_temporal,
    group_categorical,
)

REGIONS = ["north", "south", "east", "west", "centre"]

SIGNATURES = [
    (GroupBy("region"), AggregateOp.CNT, None),
    (GroupBy("region"), AggregateOp.SUM, "sales"),
    (GroupBy("region"), AggregateOp.AVG, "sales"),
    (BinIntoBuckets("sales", 10), AggregateOp.CNT, None),
    (BinIntoBuckets("sales", 10), AggregateOp.SUM, "units"),
    (BinByGranularity("day", BinGranularity.MONTH), AggregateOp.CNT, None),
    (BinByGranularity("day", BinGranularity.MONTH), AggregateOp.SUM, "sales"),
]


def _make_sqlite(path: Path, rows: int, seed: int = 7) -> None:
    rng = np.random.default_rng(seed)
    conn = sqlite3.connect(str(path))
    conn.execute(
        "CREATE TABLE sales (region TEXT, day TEXT, sales REAL, units REAL)"
    )
    batch = 50_000
    for start in range(0, rows, batch):
        n = min(batch, rows - start)
        regions = rng.integers(0, len(REGIONS), n)
        days = rng.integers(0, 365, n)
        sales = np.round(rng.uniform(0, 500, n), 2)
        units = rng.integers(0, 40, n)
        conn.executemany(
            "INSERT INTO sales VALUES (?, ?, ?, ?)",
            [
                (
                    REGIONS[regions[i]],
                    f"2021-{days[i] // 31 + 1:02d}-{days[i] % 28 + 1:02d}",
                    float(sales[i]),
                    float(units[i]),
                )
                for i in range(n)
            ],
        )
    conn.commit()
    conn.close()


def _pull_then_bin(path: Path):
    """The historical path: fetch all rows, build the table, run kernels."""
    table = from_source(
        SqliteSource(path, table="sales"), materialize=True, pushdown=False
    )
    charts = {}
    for transform, op, y in SIGNATURES:
        column = table.column(transform.column)
        if isinstance(transform, GroupBy):
            small = group_categorical(column)
        elif isinstance(transform, BinByGranularity):
            small = bin_temporal(column, transform.granularity)
        else:
            small = bin_numeric(column, transform.n)
        counts = np.bincount(small.assignment, minlength=small.num_buckets)
        if op is AggregateOp.CNT:
            y_values = counts.astype(np.float64)
        else:
            weights = table.column(y).values.astype(np.float64)
            sums = np.bincount(
                small.assignment, weights=weights, minlength=small.num_buckets
            )
            y_values = (
                sums
                if op is AggregateOp.SUM
                else np.where(counts > 0, sums / np.maximum(counts, 1), 0.0)
            )
        charts[(transform, op, y)] = (
            small.labels,
            tuple(np.asarray(y_values).tolist()),
        )
    return charts


def _pushdown(path: Path):
    """The new path: GROUP BY runs inside sqlite; rows never enter Python.

    The provider is built directly from the known column types — the
    whole point of pushdown is that serving never requires pulling or
    inferring the relation, so the pull path's materialisation cost is
    exactly what it saves.
    """
    provider = SqlitePushdown(
        path,
        '"sales"',
        {
            "region": ColumnType.CATEGORICAL,
            "day": ColumnType.TEMPORAL,
            "sales": ColumnType.NUMERICAL,
            "units": ColumnType.NUMERICAL,
        },
        has_rowid_relation=True,
    )
    charts = {}
    for transform, op, y in SIGNATURES:
        parts = provider.serve(transform, op, y)
        assert parts is not None, provider.stats()
        charts[(transform, op, y)] = (parts["labels"], parts["y_values"])
    return charts


def _time(fn, *args):
    start = time.perf_counter()
    value = fn(*args)
    return value, time.perf_counter() - start


class SyntheticSource(TableSource):
    """A generated relation that counts how many times it was read."""

    kind = "synthetic"

    def __init__(self, rows: int, seed: int = 11) -> None:
        self.rows = rows
        self.seed = seed
        self.passes = 0

    @property
    def default_name(self) -> str:
        return f"synthetic-{self.rows}"

    def describe(self) -> str:
        """Row count and seed of the generated relation."""
        return f"{self.rows} generated rows (seed={self.seed})"

    def iter_chunks(
        self, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[Tuple[List[str], List[tuple]]]:
        """Generate chunk-sized row batches; one full sweep per call."""
        self.passes += 1
        rng = np.random.default_rng(self.seed)
        header = ["region", "value", "year"]
        remaining = self.rows
        while remaining > 0:
            n = min(chunk_rows, remaining)
            remaining -= n
            regions = rng.integers(0, len(REGIONS), n)
            values = rng.uniform(-1000, 1000, n)
            years = rng.integers(1995, 2024, n)
            yield header, [
                (
                    REGIONS[regions[i]],
                    f"{values[i]:.4f}",
                    str(years[i]),
                )
                for i in range(n)
            ]


def _streaming_peak_mb(rows: int, chunk_rows: int, sample_rows: int):
    source = SyntheticSource(rows)
    tracemalloc.start()
    tracemalloc.reset_peak()
    start = time.perf_counter()
    table = from_source(
        source,
        materialize=False,
        chunk_rows=chunk_rows,
        sample_rows=sample_rows,
    )
    seconds = time.perf_counter() - start
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert source.passes == 1, "streaming build must read the source once"
    assert table.stream_profile.rows == rows
    return peak / 1e6, seconds


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default="BENCH_ingestion.json")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail when pushdown is not this much faster than pull-then-bin",
    )
    parser.add_argument(
        "--max-stream-mb",
        type=float,
        default=250.0,
        help="fail when the streaming build's tracemalloc peak exceeds this",
    )
    args = parser.parse_args()

    sql_rows = 150_000 if args.quick else 600_000
    stream_sizes = (250_000, 500_000) if args.quick else (500_000, 1_000_000)
    chunk_rows = DEFAULT_CHUNK_ROWS
    sample_rows = 10_000

    report = {
        "benchmark": "out_of_core_ingestion",
        "cpus": os.cpu_count(),
        "quick": bool(args.quick),
        "min_speedup": args.min_speedup,
        "max_stream_mb": args.max_stream_mb,
    }

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "sales.db"
        _make_sqlite(path, sql_rows)

        # Warm the page cache so both paths read a hot file.
        Path(path).read_bytes()
        pull_charts, pull_seconds = _time(_pull_then_bin, path)
        push_charts, push_seconds = _time(_pushdown, path)

        # Identical labels; aggregates within float-summation noise.
        assert set(pull_charts) == set(push_charts)
        for key, (labels, y_values) in pull_charts.items():
            assert push_charts[key][0] == labels, key
            np.testing.assert_allclose(
                np.asarray(push_charts[key][1]),
                np.asarray(y_values),
                rtol=1e-9,
            )

        speedup = pull_seconds / push_seconds if push_seconds > 0 else float("inf")
        report["pushdown"] = {
            "rows": sql_rows,
            "signatures": len(SIGNATURES),
            "pull_then_bin_seconds": round(pull_seconds, 4),
            "pushdown_seconds": round(push_seconds, 4),
            "speedup": round(speedup, 2),
        }

    streaming = []
    for rows in stream_sizes:
        peak_mb, seconds = _streaming_peak_mb(rows, chunk_rows, sample_rows)
        streaming.append(
            {
                "rows": rows,
                "chunk_rows": chunk_rows,
                "sample_rows": sample_rows,
                "peak_traced_mb": round(peak_mb, 2),
                "seconds": round(seconds, 3),
                "one_pass": True,
            }
        )
    growth = streaming[-1]["peak_traced_mb"] / max(
        streaming[0]["peak_traced_mb"], 0.01
    )
    report["streaming"] = {
        "builds": streaming,
        "peak_growth_at_2x_rows": round(growth, 3),
    }

    failures = []
    if speedup < args.min_speedup:
        failures.append(
            f"pushdown speedup {speedup:.2f}x < required "
            f"{args.min_speedup:.2f}x"
        )
    worst_mb = max(b["peak_traced_mb"] for b in streaming)
    if worst_mb > args.max_stream_mb:
        failures.append(
            f"streaming peak {worst_mb:.1f}MB > budget "
            f"{args.max_stream_mb:.1f}MB"
        )
    if growth > 1.5:
        failures.append(
            f"streaming peak grew {growth:.2f}x when rows doubled "
            f"(expected bounded memory)"
        )
    report["failures"] = failures

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=1)
        handle.write("\n")

    print(
        f"pushdown: {report['pushdown']['speedup']}x over pull-then-bin "
        f"({report['pushdown']['pushdown_seconds']}s vs "
        f"{report['pushdown']['pull_then_bin_seconds']}s, "
        f"{sql_rows} rows, {len(SIGNATURES)} signatures)"
    )
    for build in streaming:
        print(
            f"streaming: {build['rows']} rows in {build['seconds']}s, "
            f"peak {build['peak_traced_mb']}MB (one pass)"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
