"""Columnar-kernel benchmark: vectorized transforms vs. row-wise oracles.

Two measurements back the kernel rewrite:

* **micro** — each transform kernel (temporal binning per granularity,
  numeric binning, categorical grouping, UDF bucketing) timed against
  its ``_reference_*`` row-at-a-time oracle on the same columns, with
  the outputs asserted identical before any timing is trusted;
* **end-to-end** — ``select_top_k`` over the benchmark corpus with the
  vectorized kernels vs. under
  :func:`repro.language.binning.use_reference_kernels`, reporting the
  *enumerate*-phase span timings (where all kernel work lives) and
  asserting the top-k output is byte-identical either way.

The run **fails (exit 1)** when the temporal-binning micro speedup
falls below ``--min-speedup`` (default 5; CI passes 3 to absorb shared
runners).  Results land in ``BENCH_kernels.json`` (override ``--out``).

Run standalone (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_kernels.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time
from typing import Callable, Dict, List

import numpy as np

from repro.core import select_top_k
from repro.corpus.generators import make_table
from repro.dataset import Column, ColumnType
from repro.language import BinGranularity, use_reference_kernels
from repro.language.binning import (
    _reference_bin_numeric,
    _reference_bin_temporal,
    _reference_bin_udf,
    _reference_group_categorical,
    assign_buckets,
    bin_numeric,
    bin_temporal,
    bin_udf,
    group_categorical,
)

#: Temporal-heavy corpus table for the end-to-end run (flight delays).
E2E_DATASET = "FlyDelay"
#: Numeric-heavy corpus table, the same workload bench_overhead uses.
E2E_DATASET_NUMERIC = "Happiness Rank"


def _median_seconds(fn: Callable[[], object], repeats: int) -> float:
    times = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def _columns(rows: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    temporal = Column(
        "t",
        ColumnType.TEMPORAL,
        rng.uniform(0, 4 * 365 * 86400, size=rows) + 1.4e9,
    )
    numeric = Column("v", ColumnType.NUMERICAL, rng.normal(50, 20, size=rows))
    categorical = Column(
        "c",
        ColumnType.CATEGORICAL,
        np.asarray(
            [f"cat{int(i)}" for i in rng.integers(0, 24, size=rows)],
            dtype=object,
        ),
    )
    return temporal, numeric, categorical


def bench_micro(rows: int, repeats: int) -> List[Dict]:
    temporal, numeric, categorical = _columns(rows)
    udf = lambda v: f"band{int(abs(v)) // 10}"  # noqa: E731

    cases = [
        (
            f"bin_temporal[{g.value}]",
            lambda g=g: bin_temporal(temporal, g),
            lambda g=g: assign_buckets(_reference_bin_temporal(temporal, g)),
        )
        for g in BinGranularity
    ]
    cases += [
        (
            "bin_numeric[n=10]",
            lambda: bin_numeric(numeric, 10),
            lambda: assign_buckets(_reference_bin_numeric(numeric, 10)),
        ),
        (
            "group_categorical",
            lambda: group_categorical(categorical),
            lambda: assign_buckets(_reference_group_categorical(categorical)),
        ),
        (
            "bin_udf",
            lambda: bin_udf(numeric, udf),
            lambda: assign_buckets(_reference_bin_udf(numeric, udf)),
        ),
    ]

    results = []
    for name, vectorized, reference in cases:
        fast, slow = vectorized(), reference()
        if fast != slow:
            raise AssertionError(
                f"{name}: vectorized output differs from the reference oracle"
            )
        fast_s = _median_seconds(vectorized, repeats)
        slow_s = _median_seconds(reference, max(3, repeats // 2))
        results.append(
            {
                "kernel": name,
                "rows": rows,
                "buckets": fast.num_buckets,
                "vectorized_seconds": round(fast_s, 6),
                "reference_seconds": round(slow_s, 6),
                "speedup": round(slow_s / fast_s, 2) if fast_s > 0 else None,
            }
        )
        print(
            f"{name:<28} vectorized={fast_s * 1e3:8.3f}ms "
            f"reference={slow_s * 1e3:9.3f}ms "
            f"speedup={results[-1]['speedup']:>8}x"
        )
    return results


def _top_k_signature(result) -> list:
    return [
        (
            node.key(),
            node.data.x_labels,
            node.data.x_values,
            node.data.y_values,
        )
        for node in result.nodes
    ]


def bench_end_to_end(dataset: str, scale: float, repeats: int) -> Dict:
    table = make_table(dataset, scale=scale)

    def run():
        return select_top_k(table, k=10, enumeration="rules", cache=None)

    vec_result = run()  # warmup + output capture
    vectorized = [run() for _ in range(repeats)]
    with use_reference_kernels():
        ref_result = run()
        rowwise = [run() for _ in range(repeats)]

    if _top_k_signature(vec_result) != _top_k_signature(ref_result):
        raise AssertionError(
            f"{dataset}: top-k differs between vectorized and reference kernels"
        )

    def phase(results, name):
        return statistics.median(r.timings[name] for r in results)

    report = {
        "dataset": dataset,
        "scale": scale,
        "rows": table.num_rows,
        "columns": table.num_columns,
        "repeats": repeats,
        "top_k_identical": True,
        "enumerate_seconds": {
            "vectorized": round(phase(vectorized, "enumerate"), 4),
            "reference": round(phase(rowwise, "enumerate"), 4),
        },
        "total_seconds": {
            "vectorized": round(
                statistics.median(r.total_seconds for r in vectorized), 4
            ),
            "reference": round(
                statistics.median(r.total_seconds for r in rowwise), 4
            ),
        },
    }
    enum = report["enumerate_seconds"]
    report["enumerate_speedup"] = (
        round(enum["reference"] / enum["vectorized"], 2)
        if enum["vectorized"] > 0
        else None
    )
    print(
        f"{dataset:<16} ({table.num_rows} rows) enumerate: "
        f"vectorized={enum['vectorized']:.3f}s "
        f"reference={enum['reference']:.3f}s "
        f"speedup={report['enumerate_speedup']}x (top-k identical)"
    )
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: smaller columns/corpus, fewer repeats",
    )
    parser.add_argument("--rows", type=int, default=None)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail when the worst temporal micro speedup is below this "
        "(CI passes 3 to absorb shared-runner noise)",
    )
    parser.add_argument("--out", default="BENCH_kernels.json")
    args = parser.parse_args()

    rows = args.rows if args.rows is not None else (20_000 if args.quick else 100_000)
    scale = args.scale if args.scale is not None else (0.05 if args.quick else 0.2)
    repeats = args.repeats if args.repeats is not None else (5 if args.quick else 9)

    micro = bench_micro(rows, repeats)
    end_to_end = [
        bench_end_to_end(E2E_DATASET, scale, max(3, repeats // 2)),
        # The numeric corpus table is tiny; run it at full scale so the
        # kernel share of the enumerate phase is above timer noise.
        bench_end_to_end(E2E_DATASET_NUMERIC, min(1.0, scale * 5), max(3, repeats // 2)),
    ]

    temporal_speedups = [
        entry["speedup"]
        for entry in micro
        if entry["kernel"].startswith("bin_temporal") and entry["speedup"]
    ]
    worst_temporal = min(temporal_speedups)
    report = {
        "benchmark": "columnar_kernels",
        "cpus": os.cpu_count(),
        "min_speedup": args.min_speedup,
        "worst_temporal_speedup": worst_temporal,
        "micro": micro,
        "end_to_end": end_to_end,
        "passed": worst_temporal >= args.min_speedup,
    }
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.out}")

    if not report["passed"]:
        print(
            f"FAIL: worst temporal-binning speedup {worst_temporal:.1f}x "
            f"below the {args.min_speedup:.1f}x gate"
        )
        return 1
    print(
        f"PASS: worst temporal-binning speedup {worst_temporal:.1f}x "
        f">= {args.min_speedup:.1f}x"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
