"""Extension bench — label budget vs recognition quality.

How much of the paper's 33k-chart labelling effort does each model
need?  The decision tree should dominate at every budget and approach
its ceiling with a fraction of the labels.
"""

import numpy as np
from conftest import print_table

from repro.experiments.learning_curve import recognition_learning_curve


def test_recognition_learning_curve(setup, benchmark):
    points = benchmark.pedantic(
        recognition_learning_curve,
        args=(setup.train, setup.test),
        kwargs={"fractions": (0.1, 0.25, 0.5, 1.0)},
        rounds=1,
        iterations=1,
    )

    rows = [
        [
            f"{p.fraction:.0%}",
            p.num_labels,
            round(p.f1_per_model["bayes"], 3),
            round(p.f1_per_model["svm"], 3),
            round(p.f1_per_model["decision_tree"], 3),
        ]
        for p in points
    ]
    print_table(
        "Extension: test F-measure vs training-label budget",
        ["budget", "#labels", "Bayes", "SVM", "DT"],
        rows,
    )

    assert len(points) >= 3
    dt_curve = [p.f1_per_model["decision_tree"] for p in points]
    # More labels never hurt much (allow small non-monotonic noise).
    assert dt_curve[-1] >= dt_curve[0] - 0.05
    # DT at a quarter budget already beats the others at full budget —
    # the rule structure is cheap to learn.
    quarter = next(p for p in points if p.fraction >= 0.25)
    full = points[-1]
    assert quarter.f1_per_model["decision_tree"] >= full.f1_per_model["bayes"] - 0.05
