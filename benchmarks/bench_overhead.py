"""Observability-overhead benchmark: tracing + metrics must stay cheap.

Measures the wall-clock cost that the :mod:`repro.obs` layer adds to
``select_top_k`` by interleaving instrumented and uninstrumented runs
of the same workload (interleaving cancels thermal / cache-warmup
drift that back-to-back blocks would fold into one side).  Three
configurations are timed per repeat:

* **off**       — no tracer, no metrics (the baseline);
* **metrics**   — a private :class:`~repro.obs.MetricsRegistry`;
* **full**      — metrics plus a :class:`~repro.obs.Tracer` recording
  the nested per-phase span tree;
* **events**    — an in-memory :class:`~repro.obs.EventLog` plus
  per-chart provenance records (the decision-observability path).

The headline numbers are ``overhead = full / off`` and
``events / off`` (medians of repeats); the run **fails (exit 1) when
either exceeds ``--max-ratio``** (default 1.10, i.e. >10% overhead),
and the paper-facing target recorded in the JSON is 5%.  Results land in ``BENCH_overhead.json`` (override with
``--out``); ``--trace-out`` additionally writes one Chrome trace-event
JSON from the last instrumented run, which CI uploads as an artifact.

Run standalone (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time
from typing import Dict, List

from repro.core import EnumerationConfig, select_top_k
from repro.corpus.generators import make_table
from repro.obs import EventLog, MetricsRegistry, Tracer

DATASET = "Happiness Rank"  # numeric-heavy: a large candidate space
TARGET_RATIO = 1.05  # the paper-facing goal: <5% overhead


def _run_once(table, tracer=None, metrics=None, events=None) -> float:
    start = time.perf_counter()
    select_top_k(
        table,
        k=10,
        enumeration="rules",
        config=EnumerationConfig(),
        cache=None,  # caching would let later runs skip the work entirely
        tracer=tracer,
        metrics=metrics,
        events=events,
    )
    return time.perf_counter() - start


def bench(scale: float, repeats: int, trace_out: str) -> Dict:
    table = make_table(DATASET, scale=scale)
    timings: Dict[str, List[float]] = {
        "off": [], "metrics": [], "full": [], "events": [],
    }
    tracer = Tracer()

    _run_once(table)  # one warmup, discarded (first-touch interning etc.)
    for _ in range(repeats):
        # Interleave so drift hits every configuration equally.
        timings["off"].append(_run_once(table))
        timings["metrics"].append(_run_once(table, metrics=MetricsRegistry()))
        tracer.clear()
        timings["full"].append(
            _run_once(table, tracer=tracer, metrics=MetricsRegistry())
        )
        timings["events"].append(_run_once(table, events=EventLog()))

    if trace_out:
        tracer.write_chrome_trace(trace_out)
        print(f"wrote {trace_out}")

    medians = {name: statistics.median(times) for name, times in timings.items()}
    report = {
        "benchmark": "observability_overhead",
        "dataset": DATASET,
        "scale": scale,
        "rows": table.num_rows,
        "columns": table.num_columns,
        "repeats": repeats,
        "cpus": os.cpu_count(),
        "target_ratio": TARGET_RATIO,
        "median_seconds": {k: round(v, 4) for k, v in medians.items()},
        "overhead_metrics": round(medians["metrics"] / medians["off"], 4),
        "overhead_full": round(medians["full"] / medians["off"], 4),
        "overhead_events": round(medians["events"] / medians["off"], 4),
    }
    for name in ("off", "metrics", "full", "events"):
        print(f"{name:<8} median={medians[name]:.3f}s over {repeats} repeats")
    print(
        f"overhead: metrics-only {report['overhead_metrics']:.3f}x, "
        f"trace+metrics {report['overhead_full']:.3f}x, "
        f"events+provenance {report['overhead_events']:.3f}x"
    )
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: smaller table, fewer repeats",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.10,
        help="fail when full/off exceeds this (CI gate; paper target 1.05)",
    )
    parser.add_argument("--out", default="BENCH_overhead.json")
    parser.add_argument(
        "--trace-out",
        default="",
        help="also write a Chrome trace of the last instrumented run",
    )
    args = parser.parse_args()

    scale = args.scale if args.scale is not None else (0.1 if args.quick else 0.3)
    repeats = args.repeats if args.repeats is not None else (5 if args.quick else 11)

    report = bench(scale, repeats, args.trace_out)
    report["max_ratio"] = args.max_ratio
    worst = max(report["overhead_full"], report["overhead_events"])
    report["passed"] = worst <= args.max_ratio
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.out}")

    if not report["passed"]:
        print(
            f"FAIL: instrumented/uninstrumented ratio "
            f"{worst:.3f} exceeds {args.max_ratio}"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
