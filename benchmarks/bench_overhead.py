"""Observability-overhead benchmark: tracing + metrics must stay cheap.

Measures the wall-clock cost that the :mod:`repro.obs` layer adds to
``select_top_k`` by interleaving instrumented and uninstrumented runs
of the same workload (interleaving cancels thermal / cache-warmup
drift that back-to-back blocks would fold into one side).  Three
configurations are timed per repeat:

* **off**       — no tracer, no metrics (the baseline);
* **metrics**   — a private :class:`~repro.obs.MetricsRegistry`;
* **full**      — metrics plus a :class:`~repro.obs.Tracer` recording
  the nested per-phase span tree;
* **events**    — an in-memory :class:`~repro.obs.EventLog` plus
  per-chart provenance records (the decision-observability path);
* **profiled**  — full instrumentation with the
  :class:`~repro.obs.SamplingProfiler` running at its default 5ms
  interval (the everything-on serving configuration).

The headline numbers are ``overhead = full / off`` and
``events / off`` (medians of repeats); the run **fails (exit 1) when
either exceeds ``--max-ratio``** (default 1.10, i.e. >10% overhead)
**or ``profiled / off`` exceeds ``--max-profiled-ratio``** (default
1.15 — sampling adds a little on top of tracing), and the paper-facing
target recorded in the JSON is 5%.  Results land in
``BENCH_overhead.json`` (override with ``--out``); ``--trace-out``
additionally writes one Chrome trace-event JSON from the last
instrumented run, and ``--speedscope-out`` a speedscope profile of a
FlyDelay selection, both of which CI uploads as artifacts.

Run standalone (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_overhead.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time
from typing import Dict, List

from repro.core import EnumerationConfig, select_top_k
from repro.corpus.generators import make_table
from repro.obs import EventLog, MetricsRegistry, SamplingProfiler, Tracer

DATASET = "Happiness Rank"  # numeric-heavy: a large candidate space
PROFILE_DATASET = "FlyDelay"  # the artifact profile: a bigger real table
TARGET_RATIO = 1.05  # the paper-facing goal: <5% overhead


def _run_once(table, tracer=None, metrics=None, events=None) -> float:
    start = time.perf_counter()
    select_top_k(
        table,
        k=10,
        enumeration="rules",
        config=EnumerationConfig(),
        cache=None,  # caching would let later runs skip the work entirely
        tracer=tracer,
        metrics=metrics,
        events=events,
    )
    return time.perf_counter() - start


def bench(scale: float, repeats: int, trace_out: str) -> Dict:
    table = make_table(DATASET, scale=scale)
    timings: Dict[str, List[float]] = {
        "off": [], "metrics": [], "full": [], "events": [], "profiled": [],
    }
    tracer = Tracer()

    _run_once(table)  # one warmup, discarded (first-touch interning etc.)
    for _ in range(repeats):
        # Interleave so drift hits every configuration equally.
        timings["off"].append(_run_once(table))
        timings["metrics"].append(_run_once(table, metrics=MetricsRegistry()))
        tracer.clear()
        timings["full"].append(
            _run_once(table, tracer=tracer, metrics=MetricsRegistry())
        )
        timings["events"].append(_run_once(table, events=EventLog()))
        tracer.clear()
        with SamplingProfiler(tracer=tracer):
            timings["profiled"].append(
                _run_once(table, tracer=tracer, metrics=MetricsRegistry())
            )

    if trace_out:
        tracer.write_chrome_trace(trace_out)
        print(f"wrote {trace_out}")

    medians = {name: statistics.median(times) for name, times in timings.items()}
    report = {
        "benchmark": "observability_overhead",
        "dataset": DATASET,
        "scale": scale,
        "rows": table.num_rows,
        "columns": table.num_columns,
        "repeats": repeats,
        "cpus": os.cpu_count(),
        "target_ratio": TARGET_RATIO,
        "median_seconds": {k: round(v, 4) for k, v in medians.items()},
        "overhead_metrics": round(medians["metrics"] / medians["off"], 4),
        "overhead_full": round(medians["full"] / medians["off"], 4),
        "overhead_events": round(medians["events"] / medians["off"], 4),
        "overhead_profiled": round(medians["profiled"] / medians["off"], 4),
    }
    for name in ("off", "metrics", "full", "events", "profiled"):
        print(f"{name:<8} median={medians[name]:.3f}s over {repeats} repeats")
    print(
        f"overhead: metrics-only {report['overhead_metrics']:.3f}x, "
        f"trace+metrics {report['overhead_full']:.3f}x, "
        f"events+provenance {report['overhead_events']:.3f}x, "
        f"profiled {report['overhead_profiled']:.3f}x"
    )
    return report


def write_speedscope_artifact(path: str, scale: float) -> None:
    """Profile one fully-instrumented FlyDelay selection and write the
    speedscope document CI publishes (open at speedscope.app)."""
    table = make_table(PROFILE_DATASET, scale=scale)
    tracer = Tracer()
    profiler = SamplingProfiler(tracer=tracer)
    with profiler:
        _run_once(table, tracer=tracer, metrics=MetricsRegistry())
    profiler.write_speedscope(
        path, name=f"select_top_k {PROFILE_DATASET} scale={scale}"
    )
    summary = profiler.summary()
    print(
        f"wrote {path} ({summary['samples']} samples, "
        f"{summary['distinct_stacks']} stacks)"
    )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: smaller table, fewer repeats",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.10,
        help="fail when full/off exceeds this (CI gate; paper target 1.05)",
    )
    parser.add_argument("--out", default="BENCH_overhead.json")
    parser.add_argument(
        "--max-profiled-ratio",
        type=float,
        default=1.15,
        help="fail when profiled/off exceeds this (sampling on top of "
        "full instrumentation)",
    )
    parser.add_argument(
        "--trace-out",
        default="",
        help="also write a Chrome trace of the last instrumented run",
    )
    parser.add_argument(
        "--speedscope-out",
        default="",
        help="also write a speedscope profile of one FlyDelay selection",
    )
    args = parser.parse_args()

    scale = args.scale if args.scale is not None else (0.1 if args.quick else 0.3)
    repeats = args.repeats if args.repeats is not None else (5 if args.quick else 11)

    report = bench(scale, repeats, args.trace_out)
    if args.speedscope_out:
        write_speedscope_artifact(args.speedscope_out, scale)
    report["max_ratio"] = args.max_ratio
    report["max_profiled_ratio"] = args.max_profiled_ratio
    worst = max(report["overhead_full"], report["overhead_events"])
    report["passed"] = (
        worst <= args.max_ratio
        and report["overhead_profiled"] <= args.max_profiled_ratio
    )
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.out}")

    if not report["passed"]:
        if worst > args.max_ratio:
            print(
                f"FAIL: instrumented/uninstrumented ratio "
                f"{worst:.3f} exceeds {args.max_ratio}"
            )
        if report["overhead_profiled"] > args.max_profiled_ratio:
            print(
                f"FAIL: profiled/uninstrumented ratio "
                f"{report['overhead_profiled']:.3f} exceeds "
                f"{args.max_profiled_ratio}"
            )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
