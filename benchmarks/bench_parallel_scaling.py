"""Parallel-scaling + cache benchmark for the batch-serving engine.

Measures two serving-engine claims on the exhaustive-enumeration
workload (the heaviest online configuration):

* **scaling** — wall-clock of ``select_top_k`` at ``n_jobs`` in
  {1, 2, 4, 8} with the process backend, reported as speedup over
  serial, plus a determinism check that every parallel run returns
  exactly the serial answer;
* **caching** — cold vs warm latency of a repeated call through the
  multi-level cache, with the per-level hit/miss counters.

Results land in ``BENCH_parallel.json`` (override with ``--out``) so
the perf trajectory accumulates across PRs.  Machine caveat: speedup
is bounded by the CPUs actually available — on a single-core container
parallel runs only measure pool overhead; the JSON records ``cpus`` so
readers can tell.

Run standalone (not via pytest)::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import time
from typing import Dict, List

from repro.core import EnumerationConfig, select_top_k
from repro.corpus.generators import make_table
from repro.engine import MultiLevelCache

DATASET = "Happiness Rank"  # numeric-heavy: a large exhaustive space


def _run_once(table, n_jobs: int, backend: str, cache=None):
    start = time.perf_counter()
    result = select_top_k(
        table,
        k=10,
        enumeration="exhaustive",
        config=EnumerationConfig(n_jobs=n_jobs, backend=backend),
        cache=cache,
    )
    return time.perf_counter() - start, result


def _signature(result) -> List[tuple]:
    return [node.key() for node in result.nodes]


def bench(
    scale: float, jobs: List[int], backend: str, repeats: int
) -> Dict:
    table = make_table(DATASET, scale=scale)
    report: Dict = {
        "benchmark": "parallel_scaling",
        "dataset": DATASET,
        "scale": scale,
        "rows": table.num_rows,
        "columns": table.num_columns,
        "backend": backend,
        "cpus": os.cpu_count(),
        "scaling": [],
        "cache": {},
    }

    serial_seconds = None
    serial_signature = None
    for n_jobs in jobs:
        best = min(_run_once(table, n_jobs, backend)[0] for _ in range(repeats))
        _, result = _run_once(table, n_jobs, backend)
        if n_jobs == 1:
            serial_seconds = best
            serial_signature = _signature(result)
        identical = _signature(result) == serial_signature
        row = {
            "n_jobs": n_jobs,
            "seconds": round(best, 4),
            "speedup": round(serial_seconds / best, 3) if best else None,
            "candidates": result.candidates,
            "identical_to_serial": identical,
        }
        report["scaling"].append(row)
        print(
            f"n_jobs={n_jobs:<2d} {best:8.3f}s  "
            f"speedup={row['speedup']:.2f}x  identical={identical}"
        )
        if not identical:
            raise AssertionError(
                f"n_jobs={n_jobs} returned different top-k than serial"
            )

    cache = MultiLevelCache()
    cold, cold_result = _run_once(table, 1, backend, cache=cache)
    warm, warm_result = _run_once(table, 1, backend, cache=cache)
    if _signature(warm_result) != _signature(cold_result):
        raise AssertionError("warm-cache result differs from cold")
    report["cache"] = {
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 6),
        "speedup": round(cold / warm, 1) if warm else None,
        "stats": warm_result.cache_stats,
    }
    print(
        f"cache    cold={cold:.3f}s warm={warm * 1000:.3f}ms  "
        f"speedup={report['cache']['speedup']:.0f}x"
    )
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI mode: tiny table, jobs {1, 2}, one repeat",
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument(
        "--jobs", type=int, nargs="+", default=None, help="n_jobs values"
    )
    parser.add_argument("--backend", default="process")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--out", default="BENCH_parallel.json")
    args = parser.parse_args()

    scale = args.scale if args.scale is not None else (0.05 if args.quick else 0.2)
    jobs = args.jobs if args.jobs is not None else ([1, 2] if args.quick else [1, 2, 4, 8])
    repeats = args.repeats if args.repeats is not None else (1 if args.quick else 3)
    if jobs[0] != 1:
        jobs = [1] + [j for j in jobs if j != 1]

    report = bench(scale, jobs, args.backend, repeats)
    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
    print(f"wrote {args.out}")

    # Quality gates (skipped where the hardware cannot express them).
    warm_speedup = report["cache"]["speedup"]
    if warm_speedup is not None and warm_speedup < 5:
        print(f"WARNING: warm-cache speedup {warm_speedup}x below the 5x target")
        return 1
    at4 = next((r for r in report["scaling"] if r["n_jobs"] == 4), None)
    if at4 and (os.cpu_count() or 1) >= 4 and at4["speedup"] < 2:
        print(f"WARNING: n_jobs=4 speedup {at4['speedup']}x below the 2x target")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
