"""Table III — statistics of the 42-dataset corpus.

Paper: #-tuples 3..99,527 (avg 3,381); #-columns 2..25; 2,520 good /
30,892 bad annotated charts; 285,236 pairwise comparisons.  We
regenerate the same statistics over the synthetic corpus (at benchmark
scale, so tuple counts shrink proportionally while column counts and
good/bad proportions hold).
"""

from conftest import print_table

from repro.experiments import table3


def test_table3_corpus_statistics(setup, benchmark):
    stats = benchmark.pedantic(table3, args=(setup,), rounds=1, iterations=1)

    print_table(
        "Table III: corpus statistics",
        ["metric", "value"],
        [
            ["#-datasets", stats["num_datasets"]],
            ["#-tuples (min..max)", f"{stats['tuples_min']}..{stats['tuples_max']}"],
            ["#-tuples (avg)", round(stats["tuples_avg"], 1)],
            ["#-columns (min..max)", f"{stats['columns_min']}..{stats['columns_max']}"],
            ["good charts", stats["good_charts"]],
            ["bad charts", stats["bad_charts"]],
            ["pairwise comparisons", stats["comparisons"]],
        ],
    )

    benchmark.extra_info.update(
        {k: v for k, v in stats.items() if k != "tables"}
    )
    assert stats["num_datasets"] == 42
    assert stats["columns_max"] == 25  # NFL Player Statistics
    # The paper's good:bad skew (~1:12) holds in shape: bads dominate.
    assert stats["bad_charts"] > 2 * stats["good_charts"]
