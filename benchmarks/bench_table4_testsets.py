"""Table IV — the ten testing datasets X1-X10.

Paper: names, #-tuples (75..99,527), #-columns (4..25), and #-charts
(good visualizations: 10..275).  Regenerated at benchmark scale.
"""

from conftest import TEST_SCALE, print_table

from repro.experiments import table4


def test_table4_testing_datasets(setup, benchmark):
    rows = benchmark.pedantic(table4, args=(setup,), rounds=1, iterations=1)

    print_table(
        f"Table IV: 10 testing datasets (rows scaled x{TEST_SCALE})",
        ["No.", "name", "#-tuples", "#-columns", "#-charts"],
        [
            [r["no"], r["name"], r["#-tuples"], r["#-columns"], r["#-charts"]]
            for r in rows
        ],
    )

    assert len(rows) == 10
    names = [r["name"] for r in rows]
    assert names[0] == "Hollywood's Stories"
    assert names[9] == "FlyDelay"
    # Column counts are scale-independent and match the paper exactly.
    assert [r["#-columns"] for r in rows] == [8, 4, 23, 12, 13, 25, 9, 6, 14, 6]
    # Every dataset has at least one good chart to find.
    assert all(r["#-charts"] > 0 for r in rows)
