"""Table VI / Figure 9 — coverage of the nine real use cases D1-D9.

Paper shape: every use case's published charts are covered by a finite
top-k; the best case (D3 Flight Statistics, Figure 9) has all published
charts on the first page (top-6), while other cases need a deeper k
(e.g. D1's 5 charts covered by top-23).
"""

from conftest import print_table

from repro.experiments import figure9_top_results, table6

USECASE_SCALE = 0.15


def test_table6_real_usecase_coverage(setup, benchmark):
    rows = benchmark.pedantic(
        table6, args=(setup,), kwargs={"scale": USECASE_SCALE}, rounds=1, iterations=1
    )

    print_table(
        "Table VI: coverage of real use cases",
        ["use case", "#-published", "covered at top-k", "#-candidates"],
        [
            [r.usecase, r.num_published, r.covered_at_k or "not covered", r.candidates]
            for r in rows
        ],
    )

    assert len(rows) == 9
    covered = [r for r in rows if r.covered]
    # Shape: the pipeline finds what publishers chart — most use cases
    # are fully covered at some finite k.
    assert len(covered) >= 7
    for row in covered:
        assert row.covered_at_k >= row.num_published
        benchmark.extra_info[row.usecase] = row.covered_at_k


def test_figure9_first_page_for_d3(setup, benchmark):
    top6 = benchmark.pedantic(
        figure9_top_results,
        args=(setup,),
        kwargs={"scale": USECASE_SCALE, "k": 6},
        rounds=1,
        iterations=1,
    )
    print("\n=== Figure 9: DeepEye first page for D3 Flight Statistics ===")
    for i, description in enumerate(top6, start=1):
        print(f"  {i}. {description}")
    assert len(top6) == 6
