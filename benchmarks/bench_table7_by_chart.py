"""Table VII — recognition effectiveness per chart type (B/L/P/S).

Paper shape: decision tree beats SVM and Bayes on every chart type;
line charts are the easiest class (99.5% in the paper).
"""

from conftest import print_table

from repro.experiments import MODEL_LABELS, table7


def test_table7_effectiveness_by_chart_type(setup, benchmark):
    result = benchmark.pedantic(table7, args=(setup,), rounds=1, iterations=1)

    rows = []
    for chart, per_model in result.items():
        for model, metrics in per_model.items():
            rows.append(
                [
                    chart,
                    MODEL_LABELS[model],
                    round(100 * metrics["precision"], 1),
                    round(100 * metrics["recall"], 1),
                    round(100 * metrics["f1"], 1),
                ]
            )
    print_table(
        "Table VII: effectiveness by chart type (%)",
        ["chart", "model", "precision", "recall", "F-measure"],
        rows,
    )

    assert set(result) == {"bar", "line", "pie", "scatter"}
    wins = 0
    comparisons = 0
    for per_model in result.values():
        if "decision_tree" not in per_model:
            continue
        for other in ("bayes", "svm"):
            if other in per_model:
                comparisons += 1
                if per_model["decision_tree"]["f1"] >= per_model[other]["f1"] - 0.03:
                    wins += 1
    # DT wins (or ties within noise) in the large majority of cells.
    assert wins >= comparisons * 0.7
