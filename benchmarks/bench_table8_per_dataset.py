"""Table VIII — F-measure per dataset x chart type x model.

Paper shape: decision tree has the best F-measure in (nearly) every
dataset/chart cell, typically by 10+ points over Bayes.
"""

import numpy as np
from conftest import print_table

from repro.experiments import MODEL_LABELS, table8


def test_table8_fmeasure_per_dataset(setup, benchmark):
    result = benchmark.pedantic(table8, args=(setup,), rounds=1, iterations=1)

    rows = []
    for dataset, by_chart in result.items():
        for chart, models in by_chart.items():
            rows.append(
                [dataset[:24], chart]
                + [round(100 * models[m], 0) for m in ("bayes", "svm", "decision_tree")]
            )
    print_table(
        "Table VIII: F-measure (%) per dataset and chart type",
        ["dataset", "chart", "Bayes", "SVM", "DT"],
        rows,
    )

    assert len(result) == 10
    # Aggregate over all cells: DT's mean F-measure is the highest.
    means = {}
    for model in ("bayes", "svm", "decision_tree"):
        values = [
            models[model]
            for by_chart in result.values()
            for models in by_chart.values()
        ]
        means[model] = float(np.mean(values))
        benchmark.extra_info[f"{model}_mean_f1"] = round(means[model], 4)
    assert means["decision_tree"] >= means["bayes"]
    assert means["decision_tree"] >= means["svm"] - 0.02
