"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The
trained :class:`~repro.experiments.common.ExperimentSetup` is expensive
(corpus generation + annotation + model training), so it is built once
per benchmark session at a moderate scale.

Absolute numbers depend on the scale and this machine; the *shapes*
(who wins, by roughly what factor, where crossovers fall) are what the
paper claims and what EXPERIMENTS.md records.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentSetup

#: Row-count scales used for the reported results.  X10 at TEST_SCALE
#: has ~2,000 rows; the training corpus ~8,000 labelled charts.
TRAIN_SCALE = 0.08
TEST_SCALE = 0.02
MAX_NODES = 150


@pytest.fixture(scope="session")
def setup() -> ExperimentSetup:
    return ExperimentSetup.build(
        train_scale=TRAIN_SCALE,
        test_scale=TEST_SCALE,
        max_nodes_per_table=MAX_NODES,
        ltr_estimators=50,
    )


def print_table(title: str, header: list, rows: list) -> None:
    """Print a paper-style table to the benchmark log."""
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    line = " | ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))
