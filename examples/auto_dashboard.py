"""Auto-dashboard: diverse panels that together tell the story.

The paper's selection problem asks for top-k charts that "when putting
them together, can tell compelling stories".  A plain top-k is often
redundant; this example composes a diversified dashboard (MMR over the
partial-order scores, mixing single-column charts with stacked/grouped
multi-column views), renders each panel as ASCII, and writes the whole
board as a set of standalone SVG files.

Run:  python examples/auto_dashboard.py
"""

from __future__ import annotations

from pathlib import Path

from repro.core import compose_dashboard
from repro.corpus import make_table
from repro.render import multi_to_svg, render_ascii, render_multi_ascii, to_svg


def main() -> None:
    table = make_table("FlyDelay", scale=0.03)
    print(f"Input: {table}\n")

    dashboard = compose_dashboard(table, k=6, diversity=0.5)
    print(dashboard.describe())
    print()

    out_dir = Path(__file__).with_name("dashboard_svg")
    out_dir.mkdir(exist_ok=True)
    for i, item in enumerate(dashboard.items, start=1):
        print(f"--- panel {i} " + "-" * 46)
        if item.is_multi:
            print(render_multi_ascii(item.chart))
            svg = multi_to_svg(item.chart)
        else:
            print(render_ascii(item.chart))
            svg = to_svg(item.chart)
        (out_dir / f"panel_{i}.svg").write_text(svg, encoding="utf-8")
        print()

    print(f"SVG panels written to {out_dir}/panel_*.svg")


if __name__ == "__main__":
    main()
