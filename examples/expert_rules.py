"""Expert knobs: partial-order factors, custom rule config, progressive k.

Demonstrates the expert-facing machinery of Sections IV and V:

1. score candidates on the three factors M/Q/W and print the dominance
   graph's size;
2. restrict the rule system (e.g. only MONTH/HOUR binning, 8 buckets)
   through :class:`EnumerationConfig`;
3. use the progressive tournament to fetch a top-k while opening only a
   fraction of the columns.

Run:  python examples/expert_rules.py
"""

from __future__ import annotations

from repro import EnumerationConfig, progressive_top_k
from repro.core import PartialOrderScorer, build_graph, enumerate_rule_based
from repro.core.ranking import rank_weight_aware, weight_aware_scores
from repro.corpus import make_table
from repro.language import BinGranularity


def main() -> None:
    table = make_table("Airbnb Summary", scale=0.1)
    print(f"Input: {table}\n")

    # --- 1. factors and the dominance graph --------------------------
    nodes = enumerate_rule_based(table)
    scorer = PartialOrderScorer()
    scores = scorer.score(nodes)
    graph = build_graph(scores, "range_tree")
    ranking = rank_weight_aware(graph)
    s = weight_aware_scores(graph)
    print(
        f"{len(nodes)} rule-based candidates, dominance graph with "
        f"{graph.num_edges} edges"
    )
    print("Top-3 by weight-aware score S(v):")
    for i in ranking[:3]:
        f = scores[i]
        print(
            f"  S={s[i]:7.2f}  M={f.m:.2f} Q={f.q:.2f} W={f.w:.2f}  "
            f"{nodes[i].describe()}"
        )
    print()

    # --- 2. a restricted rule configuration --------------------------
    narrow = EnumerationConfig(
        granularities=(BinGranularity.MONTH, BinGranularity.HOUR),
        numeric_bins=(8,),
        correlation_threshold=0.7,
    )
    narrow_nodes = enumerate_rule_based(table, narrow)
    print(
        f"Restricted rules (MONTH/HOUR bins, 8 buckets, corr>=0.7): "
        f"{len(narrow_nodes)} candidates (vs {len(nodes)} default)\n"
    )

    # --- 3. progressive top-k ----------------------------------------
    result = progressive_top_k(table, k=4)
    print(
        f"Progressive top-4: opened {result.columns_opened}/"
        f"{result.columns_total} columns, generated "
        f"{result.candidates_generated} candidates"
    )
    for node, score in zip(result.nodes, result.scores):
        print(f"  {score:.3f}  {node.describe()}")


if __name__ == "__main__":
    main()
