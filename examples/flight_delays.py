"""The paper's running example: flight-delay statistics (Table I).

Regenerates the FlyDelay dataset (the synthetic stand-in for the BTS
O'Hare 2015 data), runs the full trained pipeline — decision-tree
recognition plus hybrid ranking — and shows how DeepEye rediscovers the
paper's Figure 1 stories:

* the departure/arrival delay correlation (Figure 1(a)),
* passengers per month (Figure 1(b)),
* the hourly delay seasonality with its evening peak (Figure 1(c)),

while the trendless delay-by-date chart (Figure 1(d)) ranks low.

Run:  python examples/flight_delays.py            (takes ~1-2 minutes)
"""

from __future__ import annotations

from repro import DeepEye
from repro.corpus import (
    CorpusConfig,
    PerceptionOracle,
    build_corpus,
    build_training_examples,
    make_table,
    training_tables,
)
from repro.render import render_ascii, to_vega_lite_json


def main() -> None:
    # --- offline: train on (a slice of) the training corpus ----------
    print("Training recognition + ranking models on the corpus ...")
    tables = training_tables(scale=0.05)[:12]
    corpus = build_corpus(
        tables, PerceptionOracle(), CorpusConfig(max_nodes_per_table=100)
    )
    engine = DeepEye(ranking="hybrid").train(build_training_examples(corpus))
    print(f"  hybrid alpha = {engine.hybrid.alpha}\n")

    # --- online: visualize the flight-delay table --------------------
    flights = make_table("FlyDelay", scale=0.05)
    print(f"Input: {flights}\n")
    result = engine.top_k(flights, k=6)

    print(
        f"{result.candidates} candidates -> {result.valid} valid -> top-6 "
        f"({result.total_seconds:.2f}s)\n"
    )
    for rank, node in enumerate(result.nodes, start=1):
        print(f"--- #{rank} " + "-" * 50)
        print(render_ascii(node))
        print()

    # The winning chart, as a Vega-Lite spec ready for any front end.
    print("Top chart as Vega-Lite JSON (truncated):")
    print(to_vega_lite_json(result.nodes[0])[:400], "...")


if __name__ == "__main__":
    main()
