"""Keyword-driven visualization search (the paper's future work, Sec VIII).

"One major future work is to support keyword queries such that users
specify their intent in a natural way" — this example searches the
flight-delay table with plain-language queries and renders the hits.

Run:  python examples/keyword_search.py
"""

from __future__ import annotations

from repro.core import keyword_search
from repro.corpus import make_table
from repro.render import render_ascii

QUERIES = (
    "average delay by hour",
    "share of passengers per carrier",
    "total passengers by month",
    "departure versus arrival delay",
)


def main() -> None:
    flights = make_table("FlyDelay", scale=0.02)
    print(f"Input: {flights}\n")

    for query in QUERIES:
        print(f'>> "{query}"')
        hits = keyword_search(flights, query, k=2)
        if not hits:
            print("   (no matching charts)\n")
            continue
        for hit in hits:
            print(
                f"   score={hit.score:.2f} "
                f"(keywords={hit.keyword_score:.2f}, quality={hit.quality_score:.2f}) "
                f"matched={list(hit.matched)}"
            )
            print("   " + hit.node.describe())
        print()
        print(render_ascii(hits[0].node))
        print()


if __name__ == "__main__":
    main()
