"""Multi-column charts: the Section II-B extensions.

Recreates the paper's Figure 1(a) and 1(b) on the FlyDelay table:

* a scatter of departure vs arrival delay *colored by carrier*
  (group-then-plot, case (ii));
* monthly passenger totals *stacked by destination* (case (ii) with
  temporal binning);
* a multi-series comparison of the two delay columns over the hour of
  day (case (i)),

and shows rule-guided enumeration of the multi-column search space.

Run:  python examples/multi_column.py
"""

from __future__ import annotations

from repro.core import (
    enumerate_grouped,
    enumerate_multi_series,
    execute_grouped,
    execute_multi_series,
    multi_series_quality,
)
from repro.corpus import make_table
from repro.language import (
    AggregateOp,
    BinByGranularity,
    BinGranularity,
    ChartType,
)
from repro.render import multi_to_vega_lite, render_multi_ascii


def main() -> None:
    flights = make_table("FlyDelay", scale=0.03)
    print(f"Input: {flights}\n")

    # --- Figure 1(b): monthly passengers, stacked by destination -----
    fig1b = execute_grouped(
        flights,
        group_by="destination",
        x="scheduled",
        z="passengers",
        transform=BinByGranularity("scheduled", BinGranularity.MONTH),
        op=AggregateOp.SUM,
        chart=ChartType.BAR,
        max_groups=5,
    )
    print(render_multi_ascii(fig1b))
    print(f"quality = {multi_series_quality(fig1b):.2f}\n")

    # --- Figure 1(c)-style, two series: both delays by hour ----------
    delays = execute_multi_series(
        flights,
        x="scheduled",
        ys=["departure_delay", "arrival_delay"],
        transform=BinByGranularity("scheduled", BinGranularity.HOUR),
        op=AggregateOp.AVG,
        chart=ChartType.LINE,
    )
    print(render_multi_ascii(delays))
    print(f"quality = {multi_series_quality(delays):.2f}\n")

    # --- enumeration of the multi-column space -----------------------
    series_candidates = enumerate_multi_series(flights)
    grouped_candidates = enumerate_grouped(flights)
    print(
        f"Rule-guided multi-column space: {len(series_candidates)} "
        f"multi-series + {len(grouped_candidates)} grouped candidates"
    )
    best = max(
        series_candidates + grouped_candidates, key=multi_series_quality
    )
    print(f"Best by quality: {best.describe()}")

    spec = multi_to_vega_lite(best)
    print(f"(Vega-Lite spec with {len(spec['data']['values'])} data points ready)")


if __name__ == "__main__":
    main()
