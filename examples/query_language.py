"""The visualization language by hand (Section II-B).

Shows the textual query syntax of Figure 2: parse the paper's Q1,
execute it against a table, inspect the chart data, and compose the
equivalent query programmatically with the AST.

Run:  python examples/query_language.py
"""

from __future__ import annotations

from repro import parse_query
from repro.corpus import make_table
from repro.language import (
    AggregateOp,
    BinByGranularity,
    BinGranularity,
    ChartType,
    OrderBy,
    OrderTarget,
    VisQuery,
    execute,
)
from repro.render import render_ascii


Q1 = """
VISUALIZE line
SELECT scheduled, AVG(departure_delay)
FROM flights
BIN scheduled BY HOUR
ORDER BY scheduled
"""


def main() -> None:
    flights = make_table("FlyDelay", scale=0.02)

    # --- textual syntax ----------------------------------------------
    parsed = parse_query(Q1)
    print("Parsed query (paper's Q1):")
    print(parsed.query.to_text(parsed.table_name))
    print()

    data = execute(parsed.query, flights)
    print(
        f"Executed: |X| = {data.source_rows} rows -> |X'| = "
        f"{data.transformed_rows} points, d(X') = {data.distinct_x}"
    )
    from repro.core import make_node

    node = make_node(flights, parsed.query)
    print(render_ascii(node))
    print()

    # --- programmatic AST --------------------------------------------
    same_query = VisQuery(
        chart=ChartType.LINE,
        x="scheduled",
        y="departure_delay",
        transform=BinByGranularity("scheduled", BinGranularity.HOUR),
        aggregate=AggregateOp.AVG,
        order=OrderBy(OrderTarget.X),
    )
    assert same_query == parsed.query, "AST and parser agree"
    print("Programmatic AST equals the parsed query:", same_query == parsed.query)

    # Feature vector of this candidate (Section III).
    print("\nFeature vector F:")
    for name, value in node.features.as_pairs():
        print(f"  {name:10s} = {value}")


if __name__ == "__main__":
    main()
