"""Quickstart: automatic visualization of a table in ~20 lines.

Builds a small sales table, asks DeepEye for the top-5 visualizations
with the zero-training expert partial order, and renders each as an
ASCII chart plus the query that produced it.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import datetime as dt
import random

from repro import DeepEye, Table
from repro.render import render_ascii


def build_table() -> Table:
    rng = random.Random(42)
    months = [dt.datetime(2023, 1 + i % 12, 1) for i in range(240)]
    products = [rng.choice(["laptop", "phone", "tablet", "monitor"]) for _ in range(240)]
    base = {"laptop": 1400, "phone": 900, "tablet": 500, "monitor": 300}
    units = [rng.randint(3, 40) for _ in range(240)]
    revenue = [
        u * base[p] * (1 + 0.25 * (m.month in (11, 12))) + rng.gauss(0, 400)
        for u, p, m in zip(units, products, months)
    ]
    return Table.from_dict(
        "sales",
        {"month": months, "product": products, "revenue": revenue, "units": units},
    )


def main() -> None:
    table = build_table()
    print(f"Input: {table}\n")

    # partial_order needs no training data: expert rules rank charts.
    engine = DeepEye(ranking="partial_order", recognizer_model=None)
    result = engine.top_k(table, k=5)

    print(
        f"Considered {result.candidates} candidate charts, "
        f"{result.valid} valid, in {result.total_seconds:.2f}s\n"
    )
    for rank, node in enumerate(result.nodes, start=1):
        print(f"--- #{rank} " + "-" * 50)
        print(node.query.to_text(table.name))
        print()
        print(render_ascii(node))
        print()


if __name__ == "__main__":
    main()
