"""Run the paper's full evaluation end-to-end and write a report.

Builds the 42-table corpus, trains every model, executes all Section VI
experiments (recognition, ranking, coverage, efficiency) at a small
scale, checks the paper's headline shape claims, and writes
``reproduction_report.md`` next to this script.

Run:  python examples/reproduce_paper.py   (takes several minutes)
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments import run_reproduction, write_markdown_report


def main() -> None:
    print("Running the full DeepEye reproduction (small scale) ...")
    result = run_reproduction(train_scale=0.05, test_scale=0.012)

    print(f"\nFinished in {result.elapsed_seconds:.0f}s.  Headline shapes:")
    for claim, holds in result.shape_summary().items():
        print(f"  [{'ok' if holds else 'XX'}] {claim}")

    out = Path(__file__).with_name("reproduction_report.md")
    write_markdown_report(result, out)
    print(f"\nReport written to {out}")


if __name__ == "__main__":
    main()
