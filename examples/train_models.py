"""Train once, save, reload: the offline/online split of Figure 4.

DeepEye's offline component retrains periodically and ships models to
the online component.  This example trains a hybrid engine on the
corpus, saves it to ``trained_engine/`` as plain JSON, reloads it in a
"fresh process", and verifies both engines agree on a new table.

Run:  python examples/train_models.py
"""

from __future__ import annotations

from pathlib import Path

from repro import DeepEye
from repro.corpus import (
    CorpusConfig,
    PerceptionOracle,
    build_corpus,
    build_training_examples,
    make_table,
    training_tables,
)


def main() -> None:
    # --- offline: train and persist -----------------------------------
    print("Training (hybrid ranking, decision-tree recognition) ...")
    corpus = build_corpus(
        training_tables(scale=0.04)[:10],
        PerceptionOracle(),
        CorpusConfig(max_nodes_per_table=80),
    )
    engine = DeepEye(ranking="hybrid").train(build_training_examples(corpus))

    out_dir = Path(__file__).with_name("trained_engine")
    engine.save(out_dir)
    files = sorted(p.name for p in out_dir.iterdir())
    print(f"Saved to {out_dir}: {files}\n")

    # --- online: reload and serve --------------------------------------
    restored = DeepEye.load(out_dir)
    table = make_table("Airbnb Summary", scale=0.03)
    original = [n.describe() for n in engine.top_k(table, k=4).nodes]
    reloaded = [n.describe() for n in restored.top_k(table, k=4).nodes]

    print(f"Top-4 for {table.name}:")
    for description in reloaded:
        print(f"  - {description}")
    print(f"\noriginal and reloaded engines agree: {original == reloaded}")
    assert original == reloaded


if __name__ == "__main__":
    main()
