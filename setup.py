"""Legacy setuptools entry point.

Kept so fully offline environments (no `wheel` on PyPI mirror) can
install editable via `python setup.py develop`; normal environments
should use `pip install -e .`.
"""

from setuptools import setup

setup()
