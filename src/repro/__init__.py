"""DeepEye reproduction: automatic data visualization.

A full re-implementation of *DeepEye: Towards Automatic Data
Visualization* (ICDE 2018): given a relational table, enumerate the
visualization search space, recognise good charts with a trained
classifier, rank them by learned or expert partial orders, and return
the top-k — plus every substrate (relational tables, a visualization
query language, and from-scratch ML models) the system depends on.

Quickstart::

    from repro import DeepEye, Table

    table = Table.from_dict("sales", {"month": [...], "revenue": [...]})
    engine = DeepEye(ranking="partial_order")
    for node in engine.top_k(table, k=5).nodes:
        print(node.describe())
"""

from .core import (
    DeepEye,
    EnumerationConfig,
    HybridRanker,
    LearningToRankRanker,
    PartialOrderRanker,
    SelectionResult,
    TrainingExample,
    VisualizationNode,
    VisualizationRecognizer,
    enumerate_candidates,
    make_node,
    progressive_top_k,
    select_top_k,
)
from .dataset import Column, ColumnType, Table, read_csv, write_csv
from .engine import AppendReport, IncrementalDriftError, IncrementalSession
from .language import ChartType, VisQuery, execute, parse_query
from .obs import MetricsRegistry, Tracer, global_registry

__version__ = "1.0.0"

__all__ = [
    "DeepEye",
    "EnumerationConfig",
    "HybridRanker",
    "LearningToRankRanker",
    "PartialOrderRanker",
    "SelectionResult",
    "TrainingExample",
    "VisualizationNode",
    "VisualizationRecognizer",
    "enumerate_candidates",
    "make_node",
    "progressive_top_k",
    "select_top_k",
    "Column",
    "ColumnType",
    "Table",
    "read_csv",
    "write_csv",
    "IncrementalSession",
    "AppendReport",
    "IncrementalDriftError",
    "ChartType",
    "VisQuery",
    "execute",
    "parse_query",
    "MetricsRegistry",
    "Tracer",
    "global_registry",
    "__version__",
]
