"""Command-line interface: automatic visualization from a shell.

Commands
--------
``visualize``  top-k charts of a CSV file (ASCII, Vega-Lite, or list)::

    python -m repro visualize data.csv --k 5 --format ascii

``search``     keyword search over a CSV's candidate charts::

    python -m repro search data.csv "average delay by hour"

``query``      run a visualization-language query against a CSV::

    python -m repro query data.csv --text "VISUALIZE bar
    SELECT carrier, CNT(carrier)
    FROM data
    GROUP BY carrier"

``datasets``   list the built-in synthetic corpus; ``generate`` writes
one of them to CSV for experimentation.

``obs``        observability tooling: ``obs report`` aggregates a JSONL
decision-event log, ``obs snapshot`` writes a golden top-k snapshot
over the bundled example tables, ``obs diff`` replays the current
code against a stored snapshot and classifies per-table quality drift,
and ``obs timeline`` joins an event log (plus optional trace / metrics
exports) into one ordered per-request narrative::

    python -m repro obs snapshot --out golden.json
    python -m repro obs diff golden.json
    python -m repro obs timeline events.jsonl --request <id>

Every pipeline command also accepts ``--profile PATH``: a sampling
wall-clock profiler runs for the duration of the command and writes
flamegraph-collapsed stacks to PATH plus a speedscope JSON profile to
PATH ``.speedscope.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from .core import keyword_search, make_node, select_top_k
from .core.enumeration import EnumerationConfig
from .corpus.generators import TESTING_SPECS, TRAINING_SPECS, make_table
from .dataset import write_csv
from .errors import ReproError
from .obs import (
    EventLog,
    MetricsRegistry,
    RuntimeSampler,
    SamplingProfiler,
    Tracer,
    aggregate_events,
    build_snapshot,
    build_timeline,
    diff_snapshots,
    entry_from_result,
    format_drift_report,
    format_event_report,
    format_timeline,
    load_snapshot,
    maybe_span,
    parse_exemplars,
    read_event_log,
    request_scope,
    save_snapshot,
    timeline_request_ids,
)
from .language import parse_query
from .render import render_ascii, to_vega_lite_json

__all__ = ["main", "build_parser"]


def _serving_parent() -> argparse.ArgumentParser:
    """Serving + observability flags shared by every pipeline command.

    One parent parser instead of per-command copies, so ``--trace`` /
    ``--metrics`` (and ``--jobs`` / ``--backend`` / ``--no-cache``)
    behave identically under ``visualize``, ``search``, ``query``,
    ``explain``, and ``profile``.
    """
    parent = argparse.ArgumentParser(add_help=False)
    # Marks commands carrying this parent: only they get live obs
    # plumbing in main().  Subcommand flags that happen to share a
    # dest (`obs timeline --trace/--metrics` name *input* files) must
    # not trigger trace/metrics *output* writers over their inputs.
    parent.set_defaults(obs_flags=True)
    serving = parent.add_argument_group("serving")
    serving.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="parallel workers (1 = serial, -1 = all cores); results are "
        "identical at any value",
    )
    serving.add_argument(
        "--backend",
        choices=("process", "thread"),
        default="process",
        help="worker pool flavour for --jobs > 1",
    )
    serving.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the multi-level serving cache",
    )
    serving.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="attach a persistent disk cache tier (L4) rooted at DIR; "
        "entries survive across runs (ignored with --no-cache)",
    )
    ingest = parent.add_argument_group("ingestion")
    ingest.add_argument(
        "--source",
        choices=("auto", "csv", "jsonl", "sqlite"),
        default="auto",
        help="input backend; 'auto' infers from the file extension "
        "(.csv/.tsv, .jsonl/.ndjson, .db/.sqlite/.sqlite3)",
    )
    ingest.add_argument(
        "--table",
        metavar="NAME",
        help="sqlite only: read this table (rowid stays visible, so "
        "GROUP BY pushdown covers first-appearance ordering)",
    )
    ingest.add_argument(
        "--query",
        metavar="SQL",
        help="sqlite only: read the result of this SQL query instead "
        "of a whole table",
    )
    ingest.add_argument(
        "--stream",
        action="store_true",
        help="force the one-pass streaming build (sketch + reservoir "
        "sample) regardless of source size",
    )
    ingest.add_argument(
        "--no-pushdown",
        action="store_true",
        help="disable sqlite GROUP BY pushdown; transforms run on the "
        "materialised table via the in-memory kernels",
    )
    obs = parent.add_argument_group("observability")
    obs.add_argument(
        "--trace",
        metavar="PATH",
        help="write a Chrome trace-event JSON of this run to PATH "
        "('-' = stdout); open via chrome://tracing",
    )
    obs.add_argument(
        "--metrics",
        metavar="PATH",
        help="write Prometheus-text metrics of this run to PATH "
        "('-' = stdout)",
    )
    obs.add_argument(
        "--events",
        metavar="PATH",
        help="append structured decision events (JSONL) of this run to "
        "PATH; inspect with `repro obs report PATH`",
    )
    obs.add_argument(
        "--profile",
        metavar="PATH",
        help="sample the run with the wall-clock profiler and write "
        "flamegraph-collapsed stacks to PATH plus speedscope JSON to "
        "PATH.speedscope.json",
    )
    obs.add_argument(
        "--profile-interval",
        type=float,
        default=0.005,
        metavar="SECONDS",
        help="sampling period for --profile (default: 0.005)",
    )
    return parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DeepEye reproduction: automatic data visualization",
    )
    commands = parser.add_subparsers(dest="command", required=True)
    serving = _serving_parent()

    visualize = commands.add_parser(
        "visualize",
        help="top-k visualizations of a CSV file",
        parents=[serving],
    )
    visualize.add_argument(
        "csv", help="input path (CSV, JSONL, or sqlite; see --source)"
    )
    visualize.add_argument("--k", type=int, default=5, help="number of charts")
    visualize.add_argument(
        "--format",
        choices=("ascii", "vega", "list"),
        default="ascii",
        help="output format",
    )
    visualize.add_argument(
        "--enumeration",
        choices=("rules", "exhaustive"),
        default="rules",
        help="candidate generation mode",
    )
    visualize.add_argument(
        "--provenance",
        action="store_true",
        help="print a per-chart 'why this rank' provenance report "
        "(ignored with --format vega, which must stay pure JSON)",
    )

    search = commands.add_parser(
        "search", help="keyword visualization search", parents=[serving]
    )
    search.add_argument(
        "csv", help="input path (CSV, JSONL, or sqlite; see --source)"
    )
    search.add_argument("keywords", help="query, e.g. 'average delay by hour'")
    search.add_argument("--k", type=int, default=3)
    search.add_argument(
        "--format", choices=("ascii", "vega", "list"), default="ascii"
    )

    query = commands.add_parser(
        "query",
        help="run a visualization-language query",
        parents=[serving],
    )
    query.add_argument(
        "csv", help="input path (CSV, JSONL, or sqlite; see --source)"
    )
    query.add_argument(
        "--text",
        help="the query text; reads stdin when omitted",
    )
    query.add_argument(
        "--format", choices=("ascii", "vega"), default="ascii"
    )

    explain = commands.add_parser(
        "explain",
        help="rank a CSV's charts and explain each position",
        parents=[serving],
    )
    explain.add_argument(
        "csv", help="input path (CSV, JSONL, or sqlite; see --source)"
    )
    explain.add_argument("--k", type=int, default=3)

    profile = commands.add_parser(
        "profile",
        help="profile a CSV: types, cardinalities, correlations",
        parents=[serving],
    )
    profile.add_argument(
        "csv", help="input path (CSV, JSONL, or sqlite; see --source)"
    )

    commands.add_parser("datasets", help="list the built-in synthetic corpus")

    generate = commands.add_parser(
        "generate", help="write a synthetic corpus dataset to CSV"
    )
    generate.add_argument("name", help="dataset name (see `datasets`)")
    generate.add_argument("out", help="output CSV path")
    generate.add_argument("--scale", type=float, default=1.0)
    generate.add_argument("--seed", type=int, default=0)

    obs = commands.add_parser(
        "obs",
        help="observability tools: event-log reports and drift snapshots",
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)

    report = obs_commands.add_parser(
        "report", help="aggregate a JSONL decision-event log"
    )
    report.add_argument(
        "log", help="event-log path (rotated .1/.2/... backups included)"
    )
    report.add_argument(
        "--json", action="store_true", help="emit the summary as JSON"
    )

    snapshot = obs_commands.add_parser(
        "snapshot",
        help="write a golden top-k snapshot over the bundled example "
        "tables (the `repro datasets` testing corpus)",
    )
    snapshot.add_argument(
        "--out", default="golden_topk.json", help="snapshot output path"
    )
    snapshot.add_argument("--k", type=int, default=5)
    snapshot.add_argument(
        "--scale", type=float, default=0.05,
        help="size multiplier for the generated example tables",
    )
    snapshot.add_argument("--seed", type=int, default=0)
    snapshot.add_argument(
        "--tables",
        help="comma-separated subset of table names (default: all)",
    )
    snapshot.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="run the snapshot selections through a persistent disk "
        "cache tier rooted at DIR",
    )

    timeline = obs_commands.add_parser(
        "timeline",
        help="join an event log (plus optional trace/metrics exports) "
        "into one ordered per-request narrative",
    )
    timeline.add_argument(
        "log", help="event-log path (rotated .1/.2/... backups included)"
    )
    timeline.add_argument(
        "--request",
        metavar="ID",
        help="the request id to reconstruct (default: the log's only "
        "request; error when ambiguous)",
    )
    timeline.add_argument(
        "--list",
        action="store_true",
        help="list the request ids present in the log and exit",
    )
    timeline.add_argument(
        "--trace",
        metavar="PATH",
        help="also merge spans from a --trace Chrome-trace JSON export",
    )
    timeline.add_argument(
        "--metrics",
        metavar="PATH",
        help="also merge metric exemplars from a --metrics "
        "Prometheus-text export",
    )
    timeline.add_argument(
        "--json", action="store_true", help="emit the records as JSON"
    )

    diff = obs_commands.add_parser(
        "diff",
        help="replay the current code against a golden snapshot and "
        "classify per-table drift",
    )
    diff.add_argument("snapshot", help="golden snapshot path")
    diff.add_argument(
        "--out", help="also write the full JSON drift report to PATH"
    )
    diff.add_argument(
        "--fail-on",
        default="score_shifted,reordered,churned,missing,added",
        help="comma-separated drift kinds that make the command exit 1 "
        "(default: everything except 'identical')",
    )
    diff.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="replay through a persistent disk cache tier rooted at DIR "
        "(the cache-persistence CI job diffs twice against one DIR to "
        "prove disk-served answers are byte-identical)",
    )

    cache = commands.add_parser(
        "cache",
        help="manage a persistent disk cache tier (see --cache-dir)",
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)

    cache_stats = cache_commands.add_parser(
        "stats", help="entry counts and on-disk bytes of a cache directory"
    )
    cache_stats.add_argument("dir", help="cache directory")
    cache_stats.add_argument(
        "--json", action="store_true", help="emit the stats as JSON"
    )

    cache_warm = cache_commands.add_parser(
        "warm",
        help="load the hottest disk entries into an in-memory cache and "
        "report per-level counts (validates a prewarm workflow)",
    )
    cache_warm.add_argument("dir", help="cache directory")
    cache_warm.add_argument(
        "--per-level", type=int, default=None,
        help="cap on entries loaded per level (default: the level's "
        "LRU capacity)",
    )

    cache_clear = cache_commands.add_parser(
        "clear", help="delete every entry under a cache directory"
    )
    cache_clear.add_argument("dir", help="cache directory")

    return parser


# ----------------------------------------------------------------------
# Observability plumbing
# ----------------------------------------------------------------------
def _obs_from_args(args):
    """(tracer, registry, events) per the --trace/--metrics/--events
    flags (None = off).

    ``--profile`` also gets a tracer even without ``--trace``: the
    profiler attributes samples to open spans, so phase context in the
    flamegraph costs nothing extra.  The trace file is still only
    written when ``--trace`` asked for one.
    """
    if not getattr(args, "obs_flags", False):
        return None, None, None
    wants_tracer = getattr(args, "trace", None) or getattr(
        args, "profile", None
    )
    tracer = Tracer() if wants_tracer else None
    registry = MetricsRegistry() if getattr(args, "metrics", None) else None
    events = (
        EventLog(path=args.events) if getattr(args, "events", None) else None
    )
    return tracer, registry, events


def _emit_obs(args, tracer: Optional[Tracer], registry, events, out) -> None:
    """Write the trace / metrics / events outputs the flags asked for."""
    if tracer is not None and getattr(args, "trace", None):
        if args.trace == "-":
            json.dump(tracer.to_chrome_trace(), out, indent=2)
            out.write("\n")
        else:
            tracer.write_chrome_trace(args.trace)
            print(f"# wrote trace to {args.trace}", file=out)
    if registry is not None:
        # One vitals sample per run, so even fast one-shot commands
        # report RSS / GC / thread gauges next to their request metrics.
        RuntimeSampler(registry).sample_once()
        text = registry.to_prometheus_text()
        if args.metrics == "-":
            out.write(text)
        else:
            with open(args.metrics, "w") as handle:
                handle.write(text)
            print(f"# wrote metrics to {args.metrics}", file=out)
    if events is not None:
        events.close()
        print(
            f"# wrote {len(events)} events to {args.events}", file=out
        )


def _emit_nodes(nodes, fmt: str, out) -> None:
    for rank, node in enumerate(nodes, start=1):
        if fmt == "vega":
            print(to_vega_lite_json(node), file=out)
        elif fmt == "ascii":
            print(f"--- #{rank} " + "-" * 50, file=out)
            print(render_ascii(node), file=out)
        else:
            print(f"{rank}. {node.describe()}", file=out)


def _phase_report(result) -> str:
    """The ``# phases:`` line body; explicit ``n/a`` when a run recorded
    no timings (e.g. a result-cache hit) instead of a blank line."""
    report = "  ".join(
        f"{name}={seconds:.3f}s ({fraction:.0%})"
        for name, seconds, fraction in result.phases()
    )
    return report or "n/a (no phase timings recorded)"


def _cache_report(result) -> str:
    """The ``# cache:`` line body; explicit ``n/a`` when the run had no
    serving cache rather than omitting the line."""
    stats = result.cache_stats
    if not stats:
        return "n/a (caching disabled)"
    levels: Dict[str, Dict[str, int]] = {}
    for key, value in stats.items():
        level, _, counter = key.rpartition("_")
        levels.setdefault(level, {})[counter] = value
    return "  ".join(
        f"{level}={counters.get('hits', 0)}h/{counters.get('misses', 0)}m"
        f"/{counters.get('size', 0)} entries"
        for level, counters in sorted(levels.items())
    )


def _cache_from_args(args):
    """The serving cache the --no-cache/--cache-dir flags ask for."""
    from .engine import DiskCacheTier, MultiLevelCache

    if getattr(args, "no_cache", False):
        return None
    cache_dir = getattr(args, "cache_dir", None)
    disk = DiskCacheTier(cache_dir) if cache_dir else None
    return MultiLevelCache(disk=disk)


def _load_table(args):
    """The input table per the ingestion flags.

    The positional stays named ``csv`` for compatibility, but
    --source/--table/--query route it through the multi-backend
    ingestion layer; a plain CSV path without --stream materialises
    through the exact ``read_csv`` build path.
    """
    from .dataset.sources import from_source, resolve_source

    source = resolve_source(
        args.csv,
        kind=getattr(args, "source", None),
        query=getattr(args, "query", None),
        table=getattr(args, "table", None),
    )
    return from_source(
        source,
        materialize="streaming" if getattr(args, "stream", False) else "auto",
        pushdown=not getattr(args, "no_pushdown", False),
        tracer=getattr(args, "obs_tracer", None),
        metrics=getattr(args, "obs_registry", None),
    )


def _cmd_visualize(args, out) -> int:
    from .core.explain import provenance_report

    table = _load_table(args)
    result = select_top_k(
        table,
        k=args.k,
        enumeration=args.enumeration,
        config=EnumerationConfig(n_jobs=args.jobs, backend=args.backend),
        cache=_cache_from_args(args),
        tracer=args.obs_tracer,
        metrics=args.obs_registry,
        events=args.obs_events,
        provenance=args.provenance,
    )
    print(
        f"# {table.name}: {result.candidates} candidates, "
        f"{result.valid} valid, top-{len(result.nodes)} "
        f"({result.total_seconds:.2f}s)",
        file=out,
    )
    if args.format != "vega":  # vega readers expect pure JSON after line 1
        print(f"# phases: {_phase_report(result)}", file=out)
        print(f"# cache: {_cache_report(result)}", file=out)
    _emit_nodes(result.nodes, args.format, out)
    if args.provenance and args.format != "vega":
        report = provenance_report(result)
        if report:
            print("# provenance", file=out)
            print(report, file=out, end="")
    return 0


def _cmd_search(args, out) -> int:
    table = _load_table(args)
    hits = keyword_search(table, args.keywords, k=args.k)
    if not hits:
        print(f"no charts match {args.keywords!r}", file=out)
        return 1
    for hit in hits:
        print(
            f"# score={hit.score:.2f} matched={','.join(hit.matched)}", file=out
        )
        _emit_nodes([hit.node], args.format, out)
    return 0


def _cmd_query(args, out) -> int:
    from .language import validate_query

    table = _load_table(args)
    text = args.text if args.text is not None else sys.stdin.read()
    parsed = parse_query(text)
    problems = validate_query(parsed.query, table)
    if problems:
        for problem in problems:
            print(f"problem: {problem}", file=sys.stderr)
        return 2
    node = make_node(table, parsed.query)
    if args.format == "vega":
        print(to_vega_lite_json(node), file=out)
    else:
        print(render_ascii(node), file=out)
    return 0


def _cmd_datasets(args, out) -> int:
    print("# testing datasets (Table IV)", file=out)
    for spec in TESTING_SPECS:
        print(f"  {spec.name}  ({spec.rows} rows, {spec.domain})", file=out)
    print("# training datasets", file=out)
    for spec in TRAINING_SPECS:
        print(f"  {spec.name}  ({spec.rows} rows, {spec.domain})", file=out)
    return 0


def _cmd_generate(args, out) -> int:
    table = make_table(args.name, scale=args.scale, seed=args.seed)
    write_csv(table, args.out)
    print(
        f"wrote {table.num_rows} rows x {table.num_columns} columns to "
        f"{args.out}",
        file=out,
    )
    return 0


def _cmd_explain(args, out) -> int:
    from .core import enumerate_rule_based, explain_ranking
    from .core.partial_order import matching_quality_raw

    table = _load_table(args)
    nodes = [
        n for n in enumerate_rule_based(table) if matching_quality_raw(n) > 0
    ]
    for explanation in explain_ranking(nodes, top=args.k):
        print(explanation.summary(), file=out)
        print("", file=out)
    return 0


def _cmd_profile(args, out) -> int:
    from .dataset import profile_table

    table = _load_table(args)
    print(profile_table(table).describe(), file=out)
    return 0


def _snapshot_entries(
    k: int,
    scale: float,
    seed: int,
    names: Optional[Sequence[str]],
    cache_dir: Optional[str] = None,
) -> List[dict]:
    """One snapshot entry per bundled example table (deterministic:
    `make_table` is seeded, selection runs serial partial-order).

    With ``cache_dir`` the selections run through a disk-backed cache —
    the answers must be byte-identical to the uncached replay, which is
    exactly what the cache-persistence CI job asserts by diffing a
    snapshot against a disk-tier replay twice in separate processes.
    """
    cache = None
    if cache_dir:
        from .engine import DiskCacheTier, MultiLevelCache

        cache = MultiLevelCache(disk=DiskCacheTier(cache_dir))
    wanted = list(names) if names else [s.name for s in TESTING_SPECS]
    entries = []
    for name in wanted:
        table = make_table(name, scale=scale, seed=seed)
        result = select_top_k(table, k=k, provenance=True, cache=cache)
        entries.append(
            entry_from_result(table.name, table.fingerprint(), result)
        )
    return entries


def _cmd_obs_timeline(args, out) -> int:
    """Join event / span / exemplar streams into one request narrative."""
    events = list(read_event_log(args.log))
    request_ids = timeline_request_ids(events)
    if args.list:
        if not request_ids:
            print("# no request ids in log", file=out)
            return 1
        for request_id in request_ids:
            print(request_id, file=out)
        return 0
    request_id = args.request
    if request_id is None:
        if len(request_ids) == 1:
            request_id = request_ids[0]
        else:
            print(
                f"error: log holds {len(request_ids)} request ids; pick "
                "one with --request (see --list)",
                file=sys.stderr,
            )
            return 2
    trace = None
    if args.trace:
        with open(args.trace) as handle:
            trace = json.load(handle)
    exemplars = None
    if args.metrics:
        with open(args.metrics) as handle:
            exemplars = parse_exemplars(handle.read())
    records = build_timeline(
        events, trace=trace, exemplars=exemplars, request_id=request_id
    )
    if not records:
        print(
            f"error: no records for request {request_id!r}",
            file=sys.stderr,
        )
        return 1
    if args.json:
        json.dump(records, out, indent=2)
        out.write("\n")
    else:
        out.write(format_timeline(records))
    return 0


def _cmd_obs(args, out) -> int:
    if args.obs_command == "timeline":
        return _cmd_obs_timeline(args, out)

    if args.obs_command == "report":
        summary = aggregate_events(read_event_log(args.log))
        if args.json:
            json.dump(summary, out, indent=2, sort_keys=True)
            out.write("\n")
        else:
            out.write(format_event_report(summary))
        return 0

    if args.obs_command == "snapshot":
        names = (
            [n.strip() for n in args.tables.split(",") if n.strip()]
            if args.tables
            else None
        )
        entries = _snapshot_entries(
            args.k, args.scale, args.seed, names,
            cache_dir=getattr(args, "cache_dir", None),
        )
        config = {
            "scale": args.scale,
            "seed": args.seed,
            "tables": [entry["table"] for entry in entries],
        }
        save_snapshot(build_snapshot(entries, args.k, config), args.out)
        print(
            f"# wrote golden snapshot of {len(entries)} tables to "
            f"{args.out}",
            file=out,
        )
        return 0

    # diff: replay with the snapshot's own recorded configuration, so a
    # diff against the same code is identical by construction.
    old = load_snapshot(args.snapshot)
    config = old.get("config", {})
    k = int(old.get("k", 5))
    entries = _snapshot_entries(
        k,
        float(config.get("scale", 0.05)),
        int(config.get("seed", 0)),
        config.get("tables"),
        cache_dir=getattr(args, "cache_dir", None),
    )
    report = diff_snapshots(old, build_snapshot(entries, k, config))
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
    out.write(format_drift_report(report))
    fail_on = {
        kind.strip() for kind in args.fail_on.split(",") if kind.strip()
    }
    failures = sum(
        count for kind, count in report["counts"].items() if kind in fail_on
    )
    return 1 if failures else 0


def _cmd_cache(args, out) -> int:
    from .engine import DiskCacheTier, MultiLevelCache

    tier = DiskCacheTier(args.dir)
    if args.cache_command == "stats":
        stats = {
            "dir": tier.directory,
            "schema_version": int(
                tier.version_dir.rsplit("v", 1)[-1]
            ),
            "bytes": tier.total_bytes(),
            "entries": {
                level: tier.entry_count(level) for level in tier.levels
            },
        }
        if args.json:
            json.dump(stats, out, indent=2, sort_keys=True)
            out.write("\n")
        else:
            per_level = "  ".join(
                f"{level}={count}" for level, count in stats["entries"].items()
            )
            print(
                f"# cache {stats['dir']} (schema v{stats['schema_version']}):"
                f" {stats['bytes']} bytes  {per_level}",
                file=out,
            )
        return 0

    if args.cache_command == "warm":
        import time as _time

        cache = MultiLevelCache(disk=tier)
        start = _time.perf_counter()
        loaded = cache.prewarm(per_level=args.per_level)
        seconds = _time.perf_counter() - start
        per_level = "  ".join(
            f"{level}={count}" for level, count in loaded.items()
        )
        print(
            f"# prewarmed {sum(loaded.values())} entries in {seconds:.3f}s"
            f"  ({per_level or 'empty cache'})",
            file=out,
        )
        return 0

    # clear
    removed = tier.clear()
    print(f"# removed {removed} entries from {tier.directory}", file=out)
    return 0


_COMMANDS = {
    "visualize": _cmd_visualize,
    "search": _cmd_search,
    "query": _cmd_query,
    "explain": _cmd_explain,
    "profile": _cmd_profile,
    "datasets": _cmd_datasets,
    "generate": _cmd_generate,
    "obs": _cmd_obs,
    "cache": _cmd_cache,
}


def _emit_profile(args, profiler: SamplingProfiler, out) -> None:
    """Write the --profile outputs: collapsed stacks + speedscope JSON."""
    profiler.write_collapsed(args.profile)
    speedscope = args.profile + ".speedscope.json"
    profiler.write_speedscope(speedscope, name=f"repro {args.command}")
    info = profiler.summary()
    print(
        f"# wrote profile to {args.profile} (+ .speedscope.json): "
        f"{info['samples']} samples / {info['distinct_stacks']} stacks "
        f"@ {info['interval'] * 1000:g}ms over "
        f"{info['wall_seconds']:.2f}s",
        file=out,
    )


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    parser = build_parser()
    args = parser.parse_args(argv)
    tracer, registry, events = _obs_from_args(args)
    # Commands read these instead of re-parsing the flags; datasets /
    # generate / obs (no serving parent) get the disabled defaults.
    args.obs_tracer = tracer
    args.obs_registry = registry
    args.obs_events = events
    profiler = (
        SamplingProfiler(interval=args.profile_interval, tracer=tracer)
        if getattr(args, "profile", None)
        else None
    )
    try:
        # One CLI invocation is one request: ingestion, selection, and
        # every metric exemplar below correlate under a single id.
        with request_scope(command=args.command), maybe_span(
            tracer, args.command, argv=" ".join(argv or sys.argv[1:])
        ):
            if profiler is not None:
                profiler.start()
            try:
                code = _COMMANDS[args.command](args, out)
            finally:
                if profiler is not None:
                    profiler.stop()
    except (ReproError, FileNotFoundError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    _emit_obs(args, tracer, registry, events, out)
    if profiler is not None:
        _emit_profile(args, profiler, out)
    return code
