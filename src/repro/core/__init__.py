"""DeepEye core: features, rules, recognition, ranking, and selection."""

from .correlation import CorrelationResult, correlation, correlation_strength, pearson
from .enumeration import (
    EnumerationConfig,
    EnumerationContext,
    enumerate_candidates,
    enumerate_exhaustive,
    enumerate_rule_based,
    exhaustive_for_column,
    multi_column_space,
    one_column_space,
    rule_based_for_column,
    rule_based_for_pair,
    two_column_space,
)
from .features import FeatureVector, encode_features, extract_features
from .graph import DominanceGraph, build_graph
from .hybrid import HybridRanker
from .ltr import LearningToRankRanker
from .multicolumn import (
    MultiSeriesData,
    enumerate_grouped,
    enumerate_multi_series,
    execute_grouped,
    execute_multi_series,
    multi_series_quality,
)
from .dashboard import Dashboard, DashboardItem, compose_dashboard, diversified_top_k
from .explain import ChartExplanation, explain_node, explain_ranking
from .nodes import VisualizationNode, make_node
from .search import SearchHit, keyword_search, score_keywords
from .partial_order import (
    FactorScores,
    PartialOrderScorer,
    dominates,
    edge_weight,
    matching_quality_raw,
    strictly_dominates,
    transformation_quality,
)
from .pipeline import DeepEye, TrainingExample
from .progressive import ProgressiveResult, estimate_column_importance, progressive_top_k
from .ranking import rank_topological, rank_weight_aware, top_k, weight_aware_scores
from .recognition import RECOGNIZER_MODELS, VisualizationRecognizer
from .rules import (
    RuleConfig,
    aggregate_rules,
    canonical_order,
    complies,
    sorting_rules,
    transform_rules,
    visualization_rules,
)
from .selection import PartialOrderRanker, SelectionResult, select_top_k
from .trend import TrendResult, fit_trend, trend

__all__ = [
    "CorrelationResult",
    "correlation",
    "correlation_strength",
    "pearson",
    "EnumerationConfig",
    "EnumerationContext",
    "enumerate_candidates",
    "enumerate_exhaustive",
    "enumerate_rule_based",
    "exhaustive_for_column",
    "rule_based_for_pair",
    "rule_based_for_column",
    "two_column_space",
    "one_column_space",
    "multi_column_space",
    "FeatureVector",
    "encode_features",
    "extract_features",
    "DominanceGraph",
    "build_graph",
    "HybridRanker",
    "LearningToRankRanker",
    "VisualizationNode",
    "make_node",
    "MultiSeriesData",
    "enumerate_grouped",
    "enumerate_multi_series",
    "execute_grouped",
    "execute_multi_series",
    "multi_series_quality",
    "SearchHit",
    "keyword_search",
    "score_keywords",
    "ChartExplanation",
    "explain_node",
    "explain_ranking",
    "Dashboard",
    "DashboardItem",
    "compose_dashboard",
    "diversified_top_k",
    "FactorScores",
    "PartialOrderScorer",
    "dominates",
    "strictly_dominates",
    "edge_weight",
    "matching_quality_raw",
    "transformation_quality",
    "DeepEye",
    "TrainingExample",
    "ProgressiveResult",
    "estimate_column_importance",
    "progressive_top_k",
    "rank_topological",
    "rank_weight_aware",
    "top_k",
    "weight_aware_scores",
    "RECOGNIZER_MODELS",
    "VisualizationRecognizer",
    "RuleConfig",
    "aggregate_rules",
    "canonical_order",
    "complies",
    "sorting_rules",
    "transform_rules",
    "visualization_rules",
    "PartialOrderRanker",
    "SelectionResult",
    "select_top_k",
    "TrendResult",
    "fit_trend",
    "trend",
]
