"""Column correlation c(X, Y) — feature (6) of Section III.

The paper considers *linear, polynomial, power, and log* correlations and
takes the maximum of the four as c(X, Y) in [-1, 1].  Each family is
evaluated as the absolute Pearson correlation of a transformed pair:

* linear:       corr(x, y)
* polynomial:   corr(x^2, y) — degree-2 proxy, plus quadratic-fit R
* power:        corr(log x, log y)   (requires positive x and y)
* log:          corr(log x, y)       (requires positive x)

The returned value keeps the sign of the winning family's correlation so
"larger is higher correlation" holds as in the paper, while rules that
only need strength use :func:`correlation_strength`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "CorrelationResult",
    "pearson",
    "correlation",
    "correlation_strength",
    "CORRELATION_FAMILIES",
]

CORRELATION_FAMILIES = ("linear", "polynomial", "power", "log")


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Plain Pearson correlation; 0.0 when either side is constant."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) != len(y) or len(x) < 2:
        return 0.0
    x_std = x.std()
    y_std = y.std()
    if x_std <= 1e-12 or y_std <= 1e-12:
        return 0.0
    value = float(np.mean((x - x.mean()) * (y - y.mean())) / (x_std * y_std))
    return max(-1.0, min(1.0, value))


@dataclass(frozen=True)
class CorrelationResult:
    """The winning correlation family and all per-family scores."""

    value: float
    family: str
    per_family: Dict[str, float]

    @property
    def strength(self) -> float:
        """Magnitude of the strongest correlation, in [0, 1]."""
        return abs(self.value)


def _family_scores(
    x: np.ndarray, y: np.ndarray, families: Sequence[str]
) -> Dict[str, float]:
    scores: Dict[str, float] = {}
    if "linear" in families:
        scores["linear"] = pearson(x, y)
    if "polynomial" in families:
        # Degree-2 proxy: correlation against the centred square captures
        # symmetric parabolic relationships that plain Pearson misses.
        centred = x - x.mean()
        scores["polynomial"] = pearson(centred**2, y)
    positive_x = x > 0
    if "log" in families and positive_x.sum() >= max(3, len(x) // 2):
        scores["log"] = pearson(np.log(x[positive_x]), y[positive_x])
    if "power" in families:
        positive_both = positive_x & (y > 0)
        if positive_both.sum() >= max(3, len(x) // 2):
            scores["power"] = pearson(
                np.log(x[positive_both]), np.log(y[positive_both])
            )
    return scores


def correlation(
    x: Sequence[float],
    y: Sequence[float],
    families: Sequence[str] = CORRELATION_FAMILIES,
) -> CorrelationResult:
    """Compute c(X, Y): the strongest correlation across families.

    Non-finite values are dropped pairwise.  Fewer than three valid pairs
    yields zero correlation.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) != len(y):
        shorter = min(len(x), len(y))
        x, y = x[:shorter], y[:shorter]
    finite = np.isfinite(x) & np.isfinite(y)
    x, y = x[finite], y[finite]
    if len(x) < 3:
        return CorrelationResult(0.0, "linear", {f: 0.0 for f in families})

    scores = _family_scores(x, y, families)
    if not scores:
        return CorrelationResult(0.0, "linear", {})
    best_family = max(scores, key=lambda f: abs(scores[f]))
    return CorrelationResult(scores[best_family], best_family, scores)


def correlation_strength(
    x: Sequence[float],
    y: Sequence[float],
    families: Sequence[str] = CORRELATION_FAMILIES,
) -> float:
    """|c(X, Y)| in [0, 1]; convenience for rules and M(v) of scatter."""
    return correlation(x, y, families).strength
