"""Dashboard composition: top-k charts that *together* tell the story.

The paper motivates selection with "it often needs to show multiple
(or top-k) visualizations that, when putting them together, can tell
compelling stories" — but a plain top-k list is often redundant (the
same data as a bar, a line, and sorted differently).  This module adds
diversified selection: maximal-marginal-relevance (MMR) over the
partial-order scores, where a candidate's redundancy against already
chosen charts is measured from shared columns, chart type, and
transform.

``compose_dashboard`` also folds in the multi-column extension
candidates so a dashboard can mix simple charts with stacked/grouped
views (the paper's Figure 1 is exactly such a mix).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..dataset.table import Table
from .enumeration import EnumerationConfig, enumerate_rule_based
from .multicolumn import (
    MultiSeriesData,
    enumerate_grouped,
    enumerate_multi_series,
    multi_series_quality,
)
from .nodes import VisualizationNode
from .partial_order import PartialOrderScorer, matching_quality_raw
from .ranking import weight_aware_scores_from_factors

__all__ = ["DashboardItem", "Dashboard", "diversified_top_k", "compose_dashboard"]

ChartLike = Union[VisualizationNode, MultiSeriesData]


@dataclass
class DashboardItem:
    """One panel: a chart plus its selection bookkeeping."""

    chart: ChartLike
    relevance: float
    redundancy: float

    @property
    def is_multi(self) -> bool:
        return isinstance(self.chart, MultiSeriesData)

    def describe(self) -> str:
        """One-line summary of the panel's chart."""
        return self.chart.describe()


@dataclass
class Dashboard:
    """An ordered set of diverse panels for one table."""

    table_name: str
    items: List[DashboardItem]

    def __len__(self) -> int:
        return len(self.items)

    def describe(self) -> str:
        """Multi-line summary of every panel with its bookkeeping."""
        lines = [f"Dashboard for {self.table_name} ({len(self.items)} panels):"]
        for i, item in enumerate(self.items, start=1):
            kind = "multi" if item.is_multi else "chart"
            lines.append(
                f"  {i}. [{kind}] {item.describe()} "
                f"(relevance {item.relevance:.2f}, overlap {item.redundancy:.2f})"
            )
        return "\n".join(lines)


def _columns_of(chart: ChartLike) -> frozenset:
    if isinstance(chart, MultiSeriesData):
        return frozenset({chart.x_name} | set(chart.series))
    return frozenset(chart.columns)


def _chart_kind(chart: ChartLike) -> str:
    return chart.chart.value


def _transform_of(chart: ChartLike):
    if isinstance(chart, MultiSeriesData):
        return chart.transform
    return chart.query.transform


def similarity(a: ChartLike, b: ChartLike) -> float:
    """Redundancy between two charts in [0, 1].

    Weighted Jaccard of columns (0.6), same chart type (0.25), same
    transform (0.15): two bars of the same grouped columns are nearly
    duplicates; a pie and a line over disjoint columns are not.
    """
    columns_a, columns_b = _columns_of(a), _columns_of(b)
    union = columns_a | columns_b
    jaccard = len(columns_a & columns_b) / len(union) if union else 0.0
    same_type = 1.0 if _chart_kind(a) == _chart_kind(b) else 0.0
    same_transform = 1.0 if _transform_of(a) == _transform_of(b) else 0.0
    return 0.6 * jaccard + 0.25 * same_type + 0.15 * same_transform


def diversified_top_k(
    charts: Sequence[ChartLike],
    relevance: Sequence[float],
    k: int,
    diversity: float = 0.45,
) -> List[DashboardItem]:
    """MMR selection: iteratively take the chart maximising

        (1 - diversity) * relevance  -  diversity * max_sim(selected).

    ``diversity`` = 0 degenerates to plain top-k; 1 ignores relevance.
    """
    if not 0.0 <= diversity <= 1.0:
        raise ValueError(f"diversity must be in [0, 1], got {diversity}")
    if len(charts) != len(relevance):
        raise ValueError("charts and relevance must be aligned")

    remaining = list(range(len(charts)))
    chosen: List[DashboardItem] = []
    while remaining and len(chosen) < k:
        best_index, best_value, best_overlap = None, -np.inf, 0.0
        for index in remaining:
            overlap = max(
                (similarity(charts[index], item.chart) for item in chosen),
                default=0.0,
            )
            value = (1.0 - diversity) * relevance[index] - diversity * overlap
            if value > best_value:
                best_index, best_value, best_overlap = index, value, overlap
        chosen.append(
            DashboardItem(
                chart=charts[best_index],
                relevance=float(relevance[best_index]),
                redundancy=float(best_overlap),
            )
        )
        remaining.remove(best_index)
    return chosen


def compose_dashboard(
    table: Table,
    k: int = 6,
    diversity: float = 0.45,
    include_multicolumn: bool = True,
    config: EnumerationConfig = EnumerationConfig(),
) -> Dashboard:
    """Build a diversified dashboard for a table.

    Single-chart candidates are scored with the normalised weight-aware
    partial order; multi-column candidates with their quality heuristic,
    mapped onto the same [0, 1] scale.
    """
    nodes = [
        n for n in enumerate_rule_based(table, config)
        if matching_quality_raw(n) > 0
    ]
    charts: List[ChartLike] = list(nodes)
    if nodes:
        factors = PartialOrderScorer().score(nodes)
        raw_scores = np.asarray(weight_aware_scores_from_factors(factors))
        top = raw_scores.max()
        relevance = list(raw_scores / top if top > 0 else raw_scores)
    else:
        relevance = []

    if include_multicolumn:
        multi = enumerate_multi_series(table, config=config.rule_config())
        multi += enumerate_grouped(table, config=config.rule_config())
        for data in multi:
            quality = multi_series_quality(data)
            if quality > 0:
                charts.append(data)
                relevance.append(quality)

    items = diversified_top_k(charts, relevance, k, diversity)
    return Dashboard(table_name=table.name, items=items)
