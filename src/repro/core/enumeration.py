"""Candidate enumeration over the visualization search space (Figure 3).

Two generation modes mirror the paper's Figure 12 legends:

* **Exhaustive (E)** — every executable query in the two-column (and
  optionally one-column) search space: all transforms, aggregates,
  orderings, and chart types.
* **Rule-based (R)** — only queries the Section V-A decision rules
  admit, with one canonical ordering per chart.

Both modes share an :class:`EnumerationContext` that caches the
expensive work per *data variant* — the grouped/binned assignment per
(column, transform) and each aggregate per (transform, Y, op) — so the
four chart types and three orderings over the same data cost one
transform pass, which is the paper's first Section V-B optimization.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dataset.column import Column, ColumnType
from ..dataset.table import Table
from ..errors import ValidationError
from ..language.aggregation import aggregate
from ..language.ast import (
    AggregateOp,
    BinByGranularity,
    BinByUDF,
    BinGranularity,
    BinIntoBuckets,
    ChartType,
    GroupBy,
    OrderBy,
    OrderTarget,
    Transform,
    VisQuery,
)
from ..language.binning import DEFAULT_NUM_BUCKETS, TransformResult
from ..language.executor import (
    ChartData,
    apply_transform,
    as_float_tuple,
    as_str_tuple,
)
from .correlation import correlation
from .features import ColumnFeatures, FeatureVector, series_stats
from .nodes import VisualizationNode
from .rules import (
    PruningCounters,
    RuleConfig,
    aggregate_rules,
    canonical_order,
    sorting_rules,
    transform_rules,
    visualization_rules,
)

__all__ = [
    "EnumerationConfig",
    "EnumerationContext",
    "enumerate_exhaustive",
    "enumerate_rule_based",
    "exhaustive_for_column",
    "rule_based_for_pair",
    "rule_based_for_column",
    "enumerate_candidates",
    "two_column_space",
    "one_column_space",
    "multi_column_space",
    "search_space_size",
]


# ----------------------------------------------------------------------
# Search-space sizes (the closed forms of Section II-B)
# ----------------------------------------------------------------------
def two_column_space(m: int) -> int:
    """|search space| for two columns: 528 * m * (m - 1)."""
    return 528 * m * (m - 1)


def one_column_space(m: int) -> int:
    """|search space| for one column: 264 * m."""
    return 264 * m


def multi_column_space(m: int) -> int:
    """|search space| for the X/Y/Z three-column case: 704 * m^3."""
    return 704 * m**3


def search_space_size(m: int, include_one_column: bool = True) -> int:
    """The full candidate space selection enumerates over for m columns.

    528·m(m−1) two-column queries plus (optionally) the 264·m
    one-column ones — the denominator of the paper's pruning-ratio
    claims, which the observability layer reports alongside the
    per-rule pruning counters.
    """
    return two_column_space(m) + (one_column_space(m) if include_one_column else 0)


# ----------------------------------------------------------------------
# Configuration
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EnumerationConfig:
    """Knobs shared by both enumeration modes.

    ``orderings`` is ``"all"`` (none/X/Y — the exhaustive space),
    ``"canonical"`` (one designer-chosen ordering per chart) or
    ``"none"``.
    """

    include_one_column: bool = True
    orderings: str = "all"
    numeric_bins: Tuple[int, ...] = (DEFAULT_NUM_BUCKETS,)
    granularities: Tuple[BinGranularity, ...] = tuple(BinGranularity)
    correlation_threshold: float = 0.5
    #: Registered UDF bucketings as (name, callable) pairs; applied to
    #: numeric x columns in both enumeration modes (the paper's
    #: ``BIN X BY UDF(X)`` case).
    udfs: Tuple = ()
    #: Worker count for the parallel serving engine: 1 runs serially in
    #: process, -1 uses every CPU, n > 1 fans candidate enumeration +
    #: feature extraction + recognition out over x-columns.  Never
    #: changes results — parallel output is identical to serial.
    n_jobs: int = 1
    #: Pool flavour for n_jobs > 1: ``"process"`` (true parallelism,
    #: models shipped to workers once) or ``"thread"`` (zero setup cost,
    #: useful when numpy dominates or pickling is unwanted).
    backend: str = "process"

    def rule_config(self) -> RuleConfig:
        """The rule-system view of this configuration."""
        return RuleConfig(
            granularities=self.granularities,
            numeric_bins=self.numeric_bins,
            correlation_threshold=self.correlation_threshold,
            udfs=self.udfs,
        )


# ----------------------------------------------------------------------
# Shared-computation context
# ----------------------------------------------------------------------
class EnumerationContext:
    """Caches per-table computation shared by many candidates.

    All caches key on hashable AST fragments, so a context can be reused
    across enumeration modes for the same table.

    ``cache`` optionally plugs in a cross-call, cross-table store (a
    :class:`repro.engine.cache.MultiLevelCache` by duck type: an object
    with ``transforms`` / ``features`` LRU levels).  Entries are keyed
    on the table's content fingerprint, so repeated or duplicated
    tables reuse grouped/binned assignments and feature vectors across
    independent contexts.

    ``pruning`` accumulates per-decision-rule candidate accounting
    (:class:`~repro.core.rules.PruningCounters`) across every
    enumeration run through this context; always on — incrementing a
    dict counter is far cheaper than the work it measures.
    """

    def __init__(
        self,
        table: Table,
        config: EnumerationConfig = EnumerationConfig(),
        cache=None,
    ) -> None:
        self.table = table
        self.config = config
        self.cache = cache
        self.pruning = PruningCounters()
        self._cache_fp: Optional[str] = (
            table.cache_fingerprint() if cache is not None else None
        )
        self._column_features: Dict[str, ColumnFeatures] = {}
        self._raw_corr: Dict[Tuple[str, str], float] = {}
        self._transforms: Dict[Transform, TransformResult] = {}
        self._aggregates: Dict[Tuple[Transform, str, AggregateOp], np.ndarray] = {}
        self._transformed_corr: Dict[Tuple, float] = {}

    # -- cached primitives ---------------------------------------------
    def column_features(self, name: str) -> ColumnFeatures:
        """Cached per-column features (1)-(5)."""
        if name not in self._column_features:
            self._column_features[name] = ColumnFeatures.of(self.table.column(name))
        return self._column_features[name]

    def raw_correlation(self, x: str, y: str) -> float:
        """c(X, Y) over the raw columns; 0 when either is categorical."""
        key = (x, y) if x <= y else (y, x)
        if key not in self._raw_corr:
            col_x = self.table.column(key[0])
            col_y = self.table.column(key[1])
            if ColumnType.CATEGORICAL in (col_x.ctype, col_y.ctype):
                value = 0.0
            else:
                value = correlation(col_x.values, col_y.values).value
            self._raw_corr[key] = value
        return self._raw_corr[key]

    def transform_result(self, transform: Transform) -> TransformResult:
        """Compact columnar result of a TRANSFORM, cached.

        Both the per-context dict and the shared ``cache.transforms``
        level store the :class:`~repro.language.binning.TransformResult`
        itself — a few label strings plus three small arrays and the
        row assignment, never per-row ``Bucket`` objects.
        """
        if transform not in self._transforms:
            if self.cache is not None:
                key = (self._cache_fp, transform)
                result = self._cache_get("transforms", key)
                if result is None:
                    result = apply_transform(transform, self.table)
                    self._cache_put("transforms", key, result)
            else:
                result = apply_transform(transform, self.table)
            self._transforms[transform] = result
        return self._transforms[transform]

    def _cache_get(self, level: str, key):
        """Tiered lookup when the cache supports it (``fetch`` falls
        through to the disk tier); plain ``get`` for duck-typed caches."""
        fetch = getattr(self.cache, "fetch", None)
        if fetch is not None:
            return fetch(level, key)
        return getattr(self.cache, level).get(key)

    def _cache_put(self, level: str, key, value) -> None:
        store = getattr(self.cache, "store", None)
        if store is not None:
            store(level, key, value)
        else:
            getattr(self.cache, level).put(key, value)

    def aggregated(self, transform: Transform, y: str, op: AggregateOp) -> np.ndarray:
        """Cached per-bucket aggregate of Y under a TRANSFORM."""
        key = (transform, y, op)
        if key not in self._aggregates:
            result = self.transform_result(transform)
            y_col = self.table.column(y) if op is not AggregateOp.CNT else None
            self._aggregates[key] = aggregate(
                op, result.assignment, result.num_buckets, y_col
            )
        return self._aggregates[key]

    # -- data-variant construction ---------------------------------------
    def _base_data(
        self,
        x: str,
        y: str,
        transform: Optional[Transform],
        op: Optional[AggregateOp],
    ) -> Optional[ChartData]:
        """Unordered ChartData for a variant; None when inexecutable."""
        placeholder = VisQuery(
            chart=ChartType.BAR, x=x, y=y, transform=transform, aggregate=op
        )
        if transform is None:
            y_col = self.table.column(y)
            if y_col.ctype is not ColumnType.NUMERICAL:
                return None
            x_col = self.table.column(x)
            if x_col.ctype is ColumnType.CATEGORICAL:
                labels = as_str_tuple(x_col.values)
                x_values = as_float_tuple(np.arange(len(labels)))
                discrete = True
            else:
                x_values = as_float_tuple(x_col.values)
                labels = ()  # elided for continuous raw series (fast path)
                discrete = False
            return ChartData(
                query=placeholder,
                x_labels=labels,
                x_values=x_values,
                y_values=as_float_tuple(y_col.values),
                x_is_discrete=discrete,
                source_rows=self.table.num_rows,
            )
        try:
            result = self.transform_result(transform)
            y_values = self.aggregated(transform, y, op)
        except ValidationError:
            return None
        return ChartData(
            query=placeholder,
            x_labels=result.labels,
            x_values=result.values_tuple,
            y_values=as_float_tuple(y_values),
            x_is_discrete=isinstance(transform, GroupBy),
            source_rows=self.table.num_rows,
        )

    @staticmethod
    def _order_data(data: ChartData, order: Optional[OrderBy]) -> ChartData:
        if order is None or data.is_empty():
            return data
        keys = np.asarray(
            data.x_values if order.target is OrderTarget.X else data.y_values
        )
        permutation = np.argsort(keys, kind="stable")
        if order.descending:
            permutation = permutation[::-1]
        return dataclasses.replace(
            data,
            x_labels=tuple(data.x_labels[i] for i in permutation)
            if data.x_labels
            else (),
            x_values=tuple(data.x_values[i] for i in permutation),
            y_values=tuple(data.y_values[i] for i in permutation),
        )

    def transformed_correlation(
        self,
        x: str,
        y: str,
        transform: Optional[Transform],
        op: Optional[AggregateOp],
        data: ChartData,
    ) -> float:
        """c(X', Y') — permutation-invariant, so cached per data variant."""
        key = (x, y, transform, op)
        if key not in self._transformed_corr:
            self._transformed_corr[key] = correlation(
                data.x_values, data.y_values
            ).value
        return self._transformed_corr[key]

    def build_node(self, query: VisQuery, data: ChartData) -> VisualizationNode:
        """Assemble a node from cached parts (equivalent to make_node)."""
        chart_data = dataclasses.replace(data, query=query)
        if self.cache is not None:
            key = (
                self._cache_fp,
                query.chart,
                query.x,
                query.y,
                query.transform,
                query.aggregate,
                query.order,
            )
            features = self._cache_get("features", key)
            if features is None:
                features = self._measure_features(query, chart_data)
                self._cache_put("features", key, features)
        else:
            features = self._measure_features(query, chart_data)
        return VisualizationNode(
            query=query,
            data=chart_data,
            features=features,
            table_name=self.table.name,
        )

    def _measure_features(
        self, query: VisQuery, chart_data: ChartData
    ) -> FeatureVector:
        """Measure the feature vector **F** of one candidate chart."""
        y_entropy, y_spread, trend_r2 = series_stats(chart_data.y_values)
        return FeatureVector(
            x=self.column_features(query.x),
            y=self.column_features(query.y),
            corr=self.raw_correlation(query.x, query.y),
            chart=query.chart,
            transformed_rows=chart_data.transformed_rows,
            distinct_tx=chart_data.distinct_x,
            distinct_ty=chart_data.distinct_y,
            corr_transformed=self.transformed_correlation(
                query.x, query.y, query.transform, query.aggregate, chart_data
            ),
            y_min_transformed=chart_data.y_min,
            y_entropy=y_entropy,
            y_spread=y_spread,
            trend_r2=trend_r2,
        )


class SourceEnumerationContext(EnumerationContext):
    """Enumeration context for source-backed tables.

    Two optional table annotations (see :mod:`repro.dataset.sources`)
    change where cached primitives come from, leaving every other code
    path — variant generation, pruning, feature measurement, node
    assembly — untouched:

    * ``table.pushdown_provider`` (materialised sqlite): transformed
      data variants are served straight from SQL ``GROUP BY`` bucket
      arrays when the signature is expressible; the provider returns
      ``None`` for anything it cannot translate exactly and the
      in-memory kernel path runs as usual.  Pushdown chart parts stay
      in a per-provider memo, never in the shared transform cache —
      they carry no row assignment and must not masquerade as kernel
      ``TransformResult`` entries.
    * ``table.stream_profile`` (reservoir-sample tables): per-column
      features (1)–(5) come from the one-pass full-stream sketch
      statistics instead of the sampled column bytes, so ``d(X)``,
      ``|X|``, ``r(X)``, min and max describe the real table.
    """

    def __init__(
        self,
        table: Table,
        config: EnumerationConfig = EnumerationConfig(),
        cache=None,
    ) -> None:
        super().__init__(table, config, cache=cache)
        self.provider = getattr(table, "pushdown_provider", None)
        self.profile = getattr(table, "stream_profile", None)

    def column_features(self, name: str) -> ColumnFeatures:
        if self.profile is not None and name not in self._column_features:
            stats = self.profile.stats_for(name)
            if stats is not None:
                self._column_features[name] = ColumnFeatures(
                    num_distinct=stats.num_distinct,
                    num_tuples=stats.num_tuples,
                    unique_ratio=stats.unique_ratio,
                    min_value=stats.min_value,
                    max_value=stats.max_value,
                    ctype=stats.ctype,
                )
        return super().column_features(name)

    def _base_data(
        self,
        x: str,
        y: str,
        transform: Optional[Transform],
        op: Optional[AggregateOp],
    ) -> Optional[ChartData]:
        if self.provider is not None and transform is not None and op is not None:
            parts = self.provider.serve(transform, op, y)
            if parts is not None:
                placeholder = VisQuery(
                    chart=ChartType.BAR, x=x, y=y,
                    transform=transform, aggregate=op,
                )
                return ChartData(
                    query=placeholder,
                    x_labels=parts["labels"],
                    x_values=parts["values"],
                    y_values=parts["y_values"],
                    x_is_discrete=parts["x_is_discrete"],
                    source_rows=parts["source_rows"],
                )
        return super()._base_data(x, y, transform, op)


def context_for(
    table: Table,
    config: EnumerationConfig = EnumerationConfig(),
    cache=None,
) -> EnumerationContext:
    """The right context class for a table: source-aware when the table
    carries a pushdown provider or stream profile, plain otherwise."""
    if (
        getattr(table, "pushdown_provider", None) is not None
        or getattr(table, "stream_profile", None) is not None
    ):
        return SourceEnumerationContext(table, config, cache=cache)
    return EnumerationContext(table, config, cache=cache)


# ----------------------------------------------------------------------
# Variant generation shared by both modes
# ----------------------------------------------------------------------
def _exhaustive_transforms(
    x: Column, config: EnumerationConfig
) -> List[Optional[Transform]]:
    """All transform options of the two-column space for column X."""
    options: List[Optional[Transform]] = [None]
    if x.ctype.is_groupable:
        options.append(GroupBy(x.name))
    if x.ctype is ColumnType.TEMPORAL:
        options.extend(BinByGranularity(x.name, g) for g in config.granularities)
    if x.ctype is ColumnType.NUMERICAL:
        options.extend(BinIntoBuckets(x.name, n) for n in config.numeric_bins)
        options.extend(BinByUDF(x.name, name, udf) for name, udf in config.udfs)
    return options


def _aggregates_for(y: Column, transform: Optional[Transform]) -> List[Optional[AggregateOp]]:
    if transform is None:
        return [None]
    if y.ctype is ColumnType.NUMERICAL:
        return [AggregateOp.AVG, AggregateOp.SUM, AggregateOp.CNT]
    return [AggregateOp.CNT]


def _order_options(
    config: EnumerationConfig, chart: ChartType, x_type: ColumnType
) -> List[Optional[OrderBy]]:
    if config.orderings == "none":
        return [None]
    if config.orderings == "canonical":
        return [canonical_order(chart, x_type)]
    return [None, OrderBy(OrderTarget.X), OrderBy(OrderTarget.Y)]


# ----------------------------------------------------------------------
# The two enumeration modes
# ----------------------------------------------------------------------
def _exhaustive_for_pair(
    ctx: EnumerationContext,
    x_name: str,
    y_name: str,
    counters: Optional[PruningCounters] = None,
) -> List[VisualizationNode]:
    """Every executable exhaustive candidate for one ordered (X, Y) pair."""
    table = ctx.table
    config = ctx.config
    counters = ctx.pruning if counters is None else counters
    x_col = table.column(x_name)
    y_col = table.column(y_name)
    one_column = x_name == y_name
    nodes: List[VisualizationNode] = []
    for transform in _exhaustive_transforms(x_col, config):
        if one_column and transform is None:
            continue  # a raw single column has no (X, Y) pairing
        ops = (
            [AggregateOp.CNT]
            if one_column
            else _aggregates_for(y_col, transform)
        )
        for op in ops:
            data = ctx._base_data(x_name, y_name, transform, op)
            if data is None or data.is_empty():
                counters.prune("variant_inexecutable")
                continue
            for chart in ChartType:
                for order in _order_options(config, chart, x_col.ctype):
                    query = VisQuery(
                        chart=chart,
                        x=x_name,
                        y=y_name,
                        transform=transform,
                        aggregate=op,
                        order=order,
                    )
                    counters.emit()
                    nodes.append(ctx.build_node(query, ctx._order_data(data, order)))
    return nodes


def exhaustive_for_column(
    ctx: EnumerationContext,
    x_name: str,
    counters: Optional[PruningCounters] = None,
) -> Tuple[List[VisualizationNode], List[VisualizationNode]]:
    """Exhaustive candidates with ``x_name`` on the x-axis.

    Returns ``(one_column_nodes, two_column_nodes)`` separately so that
    per-column fan-out (the parallel executor's unit of work) can
    reassemble the exact serial order of :func:`enumerate_exhaustive`,
    which emits all one-column candidates before any two-column ones.

    ``counters`` overrides where pruning accounting accumulates
    (defaults to ``ctx.pruning``); the parallel executor passes a
    per-task accumulator so worker counts merge back race-free.
    """
    one_nodes: List[VisualizationNode] = []
    if ctx.config.include_one_column:
        one_nodes = _exhaustive_for_pair(ctx, x_name, x_name, counters)
    pair_nodes: List[VisualizationNode] = []
    for y_name in ctx.table.column_names:
        if y_name != x_name:
            pair_nodes.extend(_exhaustive_for_pair(ctx, x_name, y_name, counters))
    return one_nodes, pair_nodes


def enumerate_exhaustive(
    table: Table,
    config: EnumerationConfig = EnumerationConfig(),
    context: Optional[EnumerationContext] = None,
) -> List[VisualizationNode]:
    """Mode E: every executable candidate in the search space."""
    ctx = context or EnumerationContext(table, config)
    one_nodes: List[VisualizationNode] = []
    pair_nodes: List[VisualizationNode] = []
    for x_name in table.column_names:
        ones, pairs = exhaustive_for_column(ctx, x_name)
        one_nodes.extend(ones)
        pair_nodes.extend(pairs)
    return one_nodes + pair_nodes


def rule_based_for_pair(
    ctx: EnumerationContext,
    x_name: str,
    y_name: str,
    counters: Optional[PruningCounters] = None,
) -> List[VisualizationNode]:
    """Rule-compliant candidates for one ordered (X, Y) pair.

    The building block of both full rule-based enumeration and the
    progressive method's per-column leaves.

    ``counters`` (default ``ctx.pruning``) records, per decision rule,
    how many candidate variants the rules eliminated, maintaining the
    invariant ``considered == emitted + pruned`` — see
    :class:`~repro.core.rules.PruningCounters`.
    """
    table = ctx.table
    rule_config = ctx.config.rule_config()
    counters = ctx.pruning if counters is None else counters
    x_col = table.column(x_name)
    y_col = table.column(y_name)
    one_column = x_name == y_name
    nodes: List[VisualizationNode] = []

    # Raw (untransformed) candidates: scatter for correlated Num/Num pairs.
    if (
        not one_column
        and y_col.ctype is ColumnType.NUMERICAL
        and x_col.ctype is ColumnType.NUMERICAL
    ):
        if (
            abs(ctx.raw_correlation(x_name, y_name))
            >= rule_config.correlation_threshold
        ):
            query = VisQuery(
                chart=ChartType.SCATTER,
                x=x_name,
                y=y_name,
                order=OrderBy(OrderTarget.X),
            )
            data = ctx._base_data(x_name, y_name, None, None)
            if data is not None and not data.is_empty():
                counters.emit()
                nodes.append(
                    ctx.build_node(query, ctx._order_data(data, query.order))
                )
            else:
                counters.prune("scatter_degenerate_data")
        else:
            # The Num/Num scatter rule: below-threshold |c(X, Y)| means
            # the raw point cloud carries no relationship worth showing.
            counters.prune("scatter_low_correlation")

    # Transformed candidates per the transformation rules.  CNT(Y) counts
    # rows per bucket regardless of Y, so the chart it produces is
    # identical for every Y column: rule-based enumeration emits count
    # charts only through the one-column (x == y) path to avoid
    # duplicates, leaving AVG/SUM for genuine two-column pairs.
    for transform in transform_rules(x_col, rule_config):
        if one_column:
            ops = [AggregateOp.CNT]
        else:
            ops = [op for op in aggregate_rules(y_col) if op is not AggregateOp.CNT]
            if not ops:
                counters.prune("aggregate_count_dedup")
                continue
        for op in ops:
            data = ctx._base_data(x_name, y_name, transform, op)
            # A transform that leaves fewer than two buckets can never
            # be a meaningful chart; rules prune it outright.
            if data is None:
                counters.prune("variant_inexecutable")
                continue
            if data.transformed_rows < 2:
                counters.prune("variant_min_buckets")
                continue
            correlated = (
                abs(
                    ctx.transformed_correlation(x_name, y_name, transform, op, data)
                )
                >= rule_config.correlation_threshold
            )
            if x_col.ctype is ColumnType.NUMERICAL and not correlated:
                # visualization_rules withholds SCATTER for Num X when
                # the transformed series is uncorrelated.
                counters.prune("scatter_uncorrelated_transformed")
            for chart in visualization_rules(x_col.ctype, True, correlated):
                order = canonical_order(chart, x_col.ctype)
                query = VisQuery(
                    chart=chart,
                    x=x_name,
                    y=y_name,
                    transform=transform,
                    aggregate=op,
                    order=order,
                )
                counters.emit()
                # The sorting rule fixes one canonical ordering where the
                # exhaustive space tries all three (none / X / Y).
                counters.prune("ordering_canonicalised", 2)
                nodes.append(ctx.build_node(query, ctx._order_data(data, order)))
    return nodes


def rule_based_for_column(
    ctx: EnumerationContext,
    x_name: str,
    counters: Optional[PruningCounters] = None,
) -> List[VisualizationNode]:
    """All rule-compliant candidates with ``x_name`` on the x-axis."""
    nodes: List[VisualizationNode] = []
    if ctx.config.include_one_column:
        nodes.extend(rule_based_for_pair(ctx, x_name, x_name, counters))
    for y_name in ctx.table.column_names:
        if y_name != x_name:
            nodes.extend(rule_based_for_pair(ctx, x_name, y_name, counters))
    return nodes


def enumerate_rule_based(
    table: Table,
    config: EnumerationConfig = EnumerationConfig(),
    context: Optional[EnumerationContext] = None,
) -> List[VisualizationNode]:
    """Mode R: only rule-compliant candidates, one canonical ordering each."""
    ctx = context or EnumerationContext(table, config)
    nodes: List[VisualizationNode] = []
    for x_name in table.column_names:
        nodes.extend(rule_based_for_column(ctx, x_name))
    return nodes


def enumerate_candidates(
    table: Table,
    mode: str = "rules",
    config: EnumerationConfig = EnumerationConfig(),
    context: Optional[EnumerationContext] = None,
) -> List[VisualizationNode]:
    """Enumerate candidates in ``mode`` "exhaustive" (E) or "rules" (R)."""
    if mode in ("rules", "R"):
        return enumerate_rule_based(table, config, context)
    if mode in ("exhaustive", "E"):
        return enumerate_exhaustive(table, config, context)
    raise ValueError(f"unknown enumeration mode {mode!r}; use 'rules' or 'exhaustive'")
