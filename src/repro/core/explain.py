"""Explanations: *why* DeepEye ranked a chart where it did.

A recommendation a user can't interrogate is a black box — the paper
argues for expert rules precisely because "it is hard to improve search
performance of black-boxes".  :func:`explain_ranking` turns a ranked
candidate set into per-chart explanations: the factor breakdown
(M/Q/W), how many charts it dominates / is dominated by, which decision
rules admitted it, and plain-language notes (trend found, correlation
strength, slice diversity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..language.ast import AggregateOp, ChartType
from ..obs.provenance import render_provenance
from .nodes import VisualizationNode
from .partial_order import (
    FactorScores,
    PartialOrderScorer,
    strictly_dominates,
)
from .ranking import weight_aware_scores_from_factors
from .trend import fit_trend

__all__ = [
    "ChartExplanation",
    "explain_ranking",
    "explain_node",
    "provenance_report",
]


@dataclass
class ChartExplanation:
    """Everything explaining one chart's position in a ranking."""

    node: VisualizationNode
    rank: int
    factors: FactorScores
    score: float
    dominates: int
    dominated_by: int
    notes: List[str]

    def summary(self) -> str:
        """A compact multi-line human-readable explanation."""
        lines = [
            f"#{self.rank}: {self.node.describe()}",
            (
                f"  factors: M={self.factors.m:.2f} (chart/data fit), "
                f"Q={self.factors.q:.2f} (summarisation), "
                f"W={self.factors.w:.2f} (column importance)"
            ),
            (
                f"  dominance: better than {self.dominates} charts, "
                f"beaten by {self.dominated_by}"
            ),
        ]
        lines.extend(f"  - {note}" for note in self.notes)
        return "\n".join(lines)


def _notes_for(node: VisualizationNode) -> List[str]:
    """Plain-language observations about one chart."""
    notes: List[str] = []
    chart = node.chart
    data = node.data

    if node.query.transform is not None:
        reduction = 1.0 - data.transformed_rows / max(data.source_rows, 1)
        notes.append(
            f"{node.query.transform.describe()} summarises "
            f"{data.source_rows} rows into {data.transformed_rows} points "
            f"({100 * reduction:.0f}% reduction)"
        )
    else:
        notes.append(f"raw data: all {data.transformed_rows} points plotted")

    if chart is ChartType.LINE:
        result = fit_trend(data.y_values)
        if result.has_trend:
            notes.append(
                f"y values follow a {result.family} trend "
                f"(R²={result.r_squared:.2f})"
            )
        else:
            notes.append(
                f"no clear trend in the y values "
                f"(best R²={result.r_squared:.2f}) — weak line chart"
            )
    elif chart is ChartType.SCATTER:
        strength = abs(node.features.corr_transformed)
        grade = "strong" if strength >= 0.7 else "moderate" if strength >= 0.4 else "weak"
        notes.append(f"{grade} correlation between the axes (|c|={strength:.2f})")
    elif chart is ChartType.PIE:
        if node.query.aggregate is AggregateOp.AVG:
            notes.append("AVG slices make no part-to-whole sense in a pie")
        if data.distinct_x > 10:
            notes.append(f"{data.distinct_x} slices is a lot for one pie")
    elif chart is ChartType.BAR:
        if data.distinct_x > 20:
            notes.append(f"{data.distinct_x} bars exceeds the ~20-bar sweet spot")

    return notes


def explain_node(
    node: VisualizationNode,
    factors: FactorScores,
    rank: int,
    score: float,
    dominates: int,
    dominated_by: int,
) -> ChartExplanation:
    """Assemble the explanation of one already-scored chart."""
    return ChartExplanation(
        node=node,
        rank=rank,
        factors=factors,
        score=score,
        dominates=dominates,
        dominated_by=dominated_by,
        notes=_notes_for(node),
    )


def provenance_report(result) -> str:
    """The "why this rank" report of a provenance-carrying result.

    ``result`` is any object with a ``provenance`` dict of
    :class:`~repro.obs.ChartProvenance` records (a
    :class:`~repro.core.selection.SelectionResult` from a
    ``provenance=True`` run).  Unlike :func:`explain_ranking`, which
    re-scores candidates under the expert partial order, this renders
    what the selection run *actually* recorded — including LTR scores,
    hybrid blend arithmetic and recognizer verdicts when those decided
    the rank.  Empty string when the result carries no records.
    """
    records = getattr(result, "provenance", None) or {}
    if not records:
        return ""
    report = render_provenance(list(records.values()))
    source = getattr(result, "source", None)
    if source:
        query = source.get("query_fingerprint")
        header = (
            f"source: {source.get('kind')} {source.get('id')} "
            f"mode={source.get('mode')}"
            + (f" query={query}" if query else "")
            + (" pushdown" if source.get("pushdown") else "")
        )
        report = header + "\n" + report
    return report


def explain_ranking(
    nodes: Sequence[VisualizationNode],
    top: Optional[int] = None,
    scorer: Optional[PartialOrderScorer] = None,
) -> List[ChartExplanation]:
    """Score, rank, and explain a candidate set (best first).

    ``top`` limits how many explanations are returned (all by default);
    dominance counts are always computed over the full set.
    """
    if not nodes:
        return []
    scorer = scorer or PartialOrderScorer()
    factors = scorer.score(nodes)
    scores = weight_aware_scores_from_factors(factors)

    n = len(nodes)
    dominates_count = [0] * n
    dominated_count = [0] * n
    for i in range(n):
        for j in range(n):
            if i != j and strictly_dominates(factors[i], factors[j]):
                dominates_count[i] += 1
                dominated_count[j] += 1

    order = sorted(
        range(n),
        key=lambda i: (
            -scores[i],
            -(factors[i].m + factors[i].q + factors[i].w),
            i,
        ),
    )
    limit = len(order) if top is None else min(top, len(order))
    return [
        explain_node(
            nodes[i],
            factors[i],
            rank=position + 1,
            score=scores[i],
            dominates=dominates_count[i],
            dominated_by=dominated_count[i],
        )
        for position, i in enumerate(order[:limit])
    ]
