"""The recognition feature vector **F** (Section III).

For a two-column candidate the paper extracts, per column: the number of
distinct values d(X), the number of tuples |X|, the unique ratio r(X),
min(X), max(X) and the data type T(X) — six features per column — plus
the column correlation c(X, Y) and the visualization type: 14 features.

:func:`extract_features` measures them; :func:`encode_features` turns a
batch into a fixed-width numeric matrix (one-hot types and chart, log-
scaled cardinalities, presence flags for undefined min/max) usable by
every classifier in :mod:`repro.ml`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..dataset.column import Column, ColumnType
from ..dataset.table import Table
from ..language.ast import ChartType, VisQuery
from ..language.executor import ChartData
from .correlation import correlation
from .trend import fit_trend

__all__ = [
    "ColumnFeatures",
    "FeatureVector",
    "extract_features",
    "encode_features",
    "series_stats",
    "FEATURE_NAMES",
]


def series_stats(y_values: Sequence[float]) -> Tuple[float, float, float]:
    """Shape statistics of a plotted y series.

    Returns ``(normalised entropy, relative spread, trend R^2)`` — the
    measurable counterparts of the perception factors (slice diversity,
    bar contrast, line trend) that the raw 14 features cannot express.
    """
    y = np.asarray(y_values, dtype=np.float64)
    if len(y) == 0:
        return 0.0, 0.0, 0.0
    magnitude = np.abs(y)
    total = magnitude.sum()
    if total > 0 and len(y) > 1:
        p = magnitude[magnitude > 0] / total
        y_entropy = float(-(p * np.log(p)).sum() / np.log(len(y)))
    else:
        y_entropy = 0.0
    mean_abs = magnitude.mean()
    y_spread = float(y.std() / mean_abs) if mean_abs > 0 else 0.0
    trend_r2 = fit_trend(y, r2_threshold=0.0).r_squared if len(y) >= 3 else 0.0
    return y_entropy, min(y_spread, 5.0), trend_r2


@dataclass(frozen=True)
class ColumnFeatures:
    """Features (1)-(5) for one column."""

    num_distinct: int
    num_tuples: int
    unique_ratio: float
    min_value: Optional[float]
    max_value: Optional[float]
    ctype: ColumnType

    @classmethod
    def of(cls, column: Column) -> "ColumnFeatures":
        return cls(
            num_distinct=column.num_distinct,
            num_tuples=column.num_tuples,
            unique_ratio=column.unique_ratio,
            min_value=column.min(),
            max_value=column.max(),
            ctype=column.ctype,
        )


@dataclass(frozen=True)
class FeatureVector:
    """The full 14-feature vector, plus transformed-data statistics.

    The paper's Table II shows that a visualization node also records
    ``|X'|``, ``d(X')``, ``d(Y')`` and ``c(X', Y')`` of the transformed
    data; these feed the partial-order factors and are kept here so each
    candidate is featurised exactly once.
    """

    x: ColumnFeatures
    y: ColumnFeatures
    corr: float
    chart: ChartType
    # transformed-data statistics (Table II)
    transformed_rows: int
    distinct_tx: int
    distinct_ty: int
    corr_transformed: float
    y_min_transformed: float
    # series-shape statistics of the plotted y values (extended set)
    y_entropy: float
    y_spread: float
    trend_r2: float

    def as_pairs(self) -> List[Tuple[str, object]]:
        """(name, value) pairs in a stable order, for reports and tests."""
        return list(zip(FEATURE_NAMES, self._raw_values()))

    def _raw_values(self) -> List[object]:
        return [
            self.x.num_distinct,
            self.x.num_tuples,
            self.x.unique_ratio,
            self.x.min_value,
            self.x.max_value,
            self.x.ctype.value,
            self.y.num_distinct,
            self.y.num_tuples,
            self.y.unique_ratio,
            self.y.min_value,
            self.y.max_value,
            self.y.ctype.value,
            self.corr,
            self.chart.value,
        ]


FEATURE_NAMES = (
    "d(X)", "|X|", "r(X)", "min(X)", "max(X)", "T(X)",
    "d(Y)", "|Y|", "r(Y)", "min(Y)", "max(Y)", "T(Y)",
    "c(X,Y)", "chart",
)


def _column_correlation(x: Column, y: Column) -> float:
    """c(X, Y) over raw columns; undefined (0) when either is categorical."""
    if x.ctype is ColumnType.CATEGORICAL or y.ctype is ColumnType.CATEGORICAL:
        return 0.0
    return correlation(x.values, y.values).value


def extract_features(table: Table, query: VisQuery, data: ChartData) -> FeatureVector:
    """Measure the feature vector of one candidate visualization."""
    x_col = table.column(query.x)
    y_col = table.column(query.y)
    corr_transformed = correlation(data.x_values, data.y_values).value
    y_entropy, y_spread, trend_r2 = series_stats(data.y_values)
    return FeatureVector(
        x=ColumnFeatures.of(x_col),
        y=ColumnFeatures.of(y_col),
        corr=_column_correlation(x_col, y_col),
        chart=query.chart,
        transformed_rows=data.transformed_rows,
        distinct_tx=data.distinct_x,
        distinct_ty=data.distinct_y,
        corr_transformed=corr_transformed,
        y_min_transformed=data.y_min,
        y_entropy=y_entropy,
        y_spread=y_spread,
        trend_r2=trend_r2,
    )


_TYPE_ORDER = (ColumnType.CATEGORICAL, ColumnType.NUMERICAL, ColumnType.TEMPORAL)
_CHART_ORDER = (ChartType.BAR, ChartType.LINE, ChartType.PIE, ChartType.SCATTER)


def _encode_column(features: ColumnFeatures) -> List[float]:
    has_range = features.min_value is not None
    span = (
        features.max_value - features.min_value
        if has_range and features.max_value is not None
        else 0.0
    )
    encoded = [
        float(np.log1p(features.num_distinct)),
        float(np.log1p(features.num_tuples)),
        float(features.unique_ratio),
        1.0 if has_range else 0.0,
        float(np.log1p(abs(span))),
    ]
    encoded.extend(1.0 if features.ctype is t else 0.0 for t in _TYPE_ORDER)
    return encoded


def encode_features(
    vectors: Sequence[FeatureVector], extended: bool = True
) -> np.ndarray:
    """Encode feature vectors as a dense numeric matrix.

    Layout per row: 8 numbers for X (log d, log n, ratio, range flag,
    log span, 3 type one-hots), 8 for Y, the raw-column correlation, 4
    chart one-hots — the encoded form of the paper's 14 features.  With
    ``extended=True`` (default) the transformed-data statistics of
    Table II are appended, which measurably helps every model.
    """
    rows = []
    for fv in vectors:
        row = _encode_column(fv.x) + _encode_column(fv.y)
        row.append(float(fv.corr))
        row.extend(1.0 if fv.chart is c else 0.0 for c in _CHART_ORDER)
        if extended:
            row.extend(
                [
                    float(np.log1p(fv.transformed_rows)),
                    float(np.log1p(fv.distinct_tx)),
                    float(np.log1p(fv.distinct_ty)),
                    float(fv.corr_transformed),
                    1.0 if fv.y_min_transformed < 0 else 0.0,
                    (
                        fv.transformed_rows / fv.x.num_tuples
                        if fv.x.num_tuples
                        else 0.0
                    ),
                    float(fv.y_entropy),
                    float(fv.y_spread),
                    float(fv.trend_r2),
                ]
            )
        rows.append(row)
    if not rows:
        width = 21 + (9 if extended else 0)
        return np.zeros((0, width))
    return np.asarray(rows, dtype=np.float64)
