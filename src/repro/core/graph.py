"""Dominance-graph construction **G**(V, E) (Section IV-C).

Vertices are valid visualization nodes; a directed edge u -> v exists
when u *strictly* dominates v under Definition 2, weighted by Eq. 9.
(Strict dominance keeps **G** acyclic, which the score recursion S(v)
requires; nodes tied on all three factors are simply incomparable.)

Three construction strategies, fastest-practical last:

* ``naive``     — compare every ordered pair: O(n^2) comparisons.
* ``quicksort`` — the paper's partition pruning: comparing everything to
  a pivot splits the rest into better / worse / incomparable, and every
  (better, worse) pair is a dominance edge *by transitivity*, so those
  comparisons are skipped.
* ``range_tree``— sweep nodes in ascending (M, Q, W) order, maintaining
  a 2-D dominance index over (Q, W); each node's dominated set is one
  index query (Section IV-C's range-tree-based indexing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import SelectionError
from ..indexes.range_tree import FenwickDominanceIndex
from .partial_order import FactorScores, edge_weight, strictly_dominates

__all__ = ["DominanceGraph", "build_graph", "GRAPH_STRATEGIES"]


@dataclass
class DominanceGraph:
    """Adjacency-list dominance DAG over node indices 0..n-1.

    ``out_edges[u]`` lists ``(v, weight)`` pairs with u strictly better
    than v.  ``scores`` keeps each node's factor triple for reporting.
    """

    scores: List[FactorScores]
    out_edges: List[List[Tuple[int, float]]]

    @property
    def num_nodes(self) -> int:
        return len(self.scores)

    @property
    def num_edges(self) -> int:
        return sum(len(edges) for edges in self.out_edges)

    def in_degrees(self) -> List[int]:
        """In-degree per node (how many charts dominate it)."""
        degrees = [0] * self.num_nodes
        for edges in self.out_edges:
            for v, _ in edges:
                degrees[v] += 1
        return degrees

    def edge_set(self) -> set:
        """The set of (u, v) pairs — used by tests to compare strategies."""
        return {
            (u, v) for u, edges in enumerate(self.out_edges) for v, _ in edges
        }


def _add_edge(graph: DominanceGraph, u: int, v: int) -> None:
    graph.out_edges[u].append((v, edge_weight(graph.scores[u], graph.scores[v])))


# ----------------------------------------------------------------------
# Strategy 1: naive pairwise
# ----------------------------------------------------------------------
def _build_naive(scores: Sequence[FactorScores]) -> DominanceGraph:
    graph = DominanceGraph(list(scores), [[] for _ in scores])
    n = len(scores)
    for u in range(n):
        for v in range(n):
            if u != v and strictly_dominates(scores[u], scores[v]):
                _add_edge(graph, u, v)
    return graph


# ----------------------------------------------------------------------
# Strategy 2: quick-sort-style partition pruning
# ----------------------------------------------------------------------
def _build_quicksort(scores: Sequence[FactorScores]) -> DominanceGraph:
    graph = DominanceGraph(list(scores), [[] for _ in scores])

    def compare_pairwise(left: List[int], right: List[int]) -> None:
        """Resolve all cross pairs between two sets by direct comparison."""
        for u in left:
            for v in right:
                if strictly_dominates(scores[u], scores[v]):
                    _add_edge(graph, u, v)
                elif strictly_dominates(scores[v], scores[u]):
                    _add_edge(graph, v, u)

    # Explicit worklist instead of recursion: a chain input degrades the
    # partitioning to linear depth, which would overflow Python frames.
    worklist: List[List[int]] = [list(range(len(scores)))]
    while worklist:
        items = worklist.pop()
        if len(items) < 2:
            continue
        pivot, rest = items[0], items[1:]
        better: List[int] = []  # strictly dominate the pivot
        worse: List[int] = []  # strictly dominated by the pivot
        incomparable: List[int] = []
        for node in rest:
            if strictly_dominates(scores[node], scores[pivot]):
                better.append(node)
                _add_edge(graph, node, pivot)
            elif strictly_dominates(scores[pivot], scores[node]):
                worse.append(node)
                _add_edge(graph, pivot, node)
            else:
                incomparable.append(node)
        # Transitivity: every better-node dominates every worse-node —
        # the comparisons the paper's partitioning prunes away.
        for u in better:
            for v in worse:
                _add_edge(graph, u, v)
        worklist.extend((better, worse, incomparable))
        compare_pairwise(better, incomparable)
        compare_pairwise(incomparable, worse)
    return graph


# ----------------------------------------------------------------------
# Strategy 3: range-tree (Fenwick) sweep
# ----------------------------------------------------------------------
def _build_range_tree(scores: Sequence[FactorScores]) -> DominanceGraph:
    graph = DominanceGraph(list(scores), [[] for _ in scores])
    n = len(scores)
    if n == 0:
        return graph

    # Sort ascending by (M, Q, W).  If u strictly dominates v then v's
    # triple is lexicographically smaller, so v is already inserted when
    # u is processed.
    order = sorted(range(n), key=lambda i: scores[i].as_tuple())
    index = FenwickDominanceIndex([scores[i].q for i in range(n)])
    for u in order:
        su = scores[u]
        for v in index.report(su.q, su.w):
            # The index guarantees Q, W dominance among inserted (hence
            # M <= M(u)) nodes; reject full ties to keep strictness.
            if strictly_dominates(su, scores[v]):
                _add_edge(graph, u, v)
        index.insert(su.q, su.w, u)
    return graph


GRAPH_STRATEGIES: Dict[str, Callable[[Sequence[FactorScores]], DominanceGraph]] = {
    "naive": _build_naive,
    "quicksort": _build_quicksort,
    "range_tree": _build_range_tree,
}


def build_graph(
    scores: Sequence[FactorScores], strategy: str = "range_tree"
) -> DominanceGraph:
    """Build the dominance graph with the chosen strategy.

    All strategies produce the identical edge set (a property the test
    suite verifies); they differ only in comparison count and speed.
    """
    try:
        builder = GRAPH_STRATEGIES[strategy]
    except KeyError:
        raise SelectionError(
            f"unknown graph strategy {strategy!r}; "
            f"choose from {sorted(GRAPH_STRATEGIES)}"
        ) from None
    return builder(scores)
