"""HybridRank (Section IV-D): combine learning-to-rank and partial order.

Each visualization v gets the combined score ``l_v + alpha * p_v`` where
``l_v`` / ``p_v`` are v's 1-based rank positions under learning-to-rank
and the partial order respectively (smaller is better), and ``alpha`` is
a preference weight learned from labelled data by maximising NDCG over
validation groups.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ModelError
from ..ml.metrics import ndcg_at_k
from .ltr import LearningToRankRanker
from .nodes import VisualizationNode
from .selection import PartialOrderRanker

__all__ = ["HybridRanker", "DEFAULT_ALPHA_GRID"]

DEFAULT_ALPHA_GRID = (0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0)


def _positions(order: Sequence[int], n: int) -> np.ndarray:
    """1-based rank position per item index given a best-first order."""
    positions = np.empty(n, dtype=np.float64)
    for position, item in enumerate(order, start=1):
        positions[item] = position
    return positions


class HybridRanker:
    """Linear rank combination of LTR and the partial order."""

    def __init__(
        self,
        ltr: LearningToRankRanker,
        partial_order: Optional[PartialOrderRanker] = None,
        alpha: float = 1.0,
    ) -> None:
        self.ltr = ltr
        self.partial_order = partial_order or PartialOrderRanker()
        self.alpha = alpha

    def rank(self, nodes: Sequence[VisualizationNode]) -> List[int]:
        """Indices into ``nodes``, best first, by ``l_v + alpha * p_v``."""
        order, _ = self.rank_with_trace(nodes)
        return order

    def rank_with_trace(
        self, nodes: Sequence[VisualizationNode]
    ) -> Tuple[List[int], dict]:
        """The ranking plus the decision internals behind it.

        The trace dict carries everything provenance needs to explain a
        hybrid rank: per-node LTR scores and 1-based positions, the
        partial-order factor triples / S(v) values / positions, alpha,
        and the combined blend values.  The order is exactly what
        :meth:`rank` returns — tracing never changes the answer.
        """
        n = len(nodes)
        if n == 0:
            return [], {"alpha": self.alpha}
        ltr_scores = self.ltr.scores(nodes)
        ltr_order = sorted(range(n), key=lambda i: (-ltr_scores[i], i))
        po_order, factors, po_values = self.partial_order.rank_with_trace(
            nodes
        )
        ltr_positions = _positions(ltr_order, n)
        po_positions = _positions(po_order, n)
        combined = ltr_positions + self.alpha * po_positions
        order = sorted(range(n), key=lambda i: (combined[i], i))
        trace = {
            "alpha": self.alpha,
            "ltr_scores": [float(s) for s in ltr_scores],
            "ltr_positions": [int(p) for p in ltr_positions],
            "factors": factors,
            "po_scores": po_values,
            "po_positions": [int(p) for p in po_positions],
            "combined": [float(c) for c in combined],
        }
        return order, trace

    def fit_alpha(
        self,
        groups: Sequence[Tuple[Sequence[VisualizationNode], Sequence[float]]],
        grid: Sequence[float] = DEFAULT_ALPHA_GRID,
        k: Optional[int] = None,
    ) -> float:
        """Learn alpha by grid search: pick the value maximising the mean
        NDCG of the hybrid ranking over labelled validation groups.

        ``groups`` pairs node lists with graded relevance (higher =
        better chart).  Returns the chosen alpha (also stored).
        """
        if not groups:
            raise ModelError("need at least one validation group to fit alpha")
        cached = []
        for nodes, relevance in groups:
            n = len(nodes)
            if n == 0:
                continue
            if len(relevance) != n:
                raise ModelError("nodes and relevance must be aligned")
            cached.append(
                (
                    _positions(self.ltr.rank(nodes), n),
                    _positions(self.partial_order.rank(nodes), n),
                    np.asarray(relevance, dtype=np.float64),
                )
            )
        if not cached:
            raise ModelError("all validation groups are empty")

        best_alpha, best_score = self.alpha, -1.0
        for alpha in grid:
            scores = []
            for ltr_pos, po_pos, relevance in cached:
                combined = ltr_pos + alpha * po_pos
                order = np.argsort(combined, kind="stable")
                scores.append(ndcg_at_k(relevance[order], k=k))
            mean_score = float(np.mean(scores))
            if mean_score > best_score:
                best_alpha, best_score = float(alpha), mean_score
        self.alpha = best_alpha
        return best_alpha
