"""Learning-to-rank over visualization nodes (Section III).

Wraps the from-scratch :class:`~repro.ml.lambdamart.LambdaMART` behind a
node-level interface: training consumes per-table groups of (nodes,
graded relevance), prediction scores and ranks any node list.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ModelError, NotFittedError
from ..ml.lambdamart import LambdaMART, RankingDataset
from .features import encode_features
from .nodes import VisualizationNode

__all__ = ["LearningToRankRanker"]


class LearningToRankRanker:
    """LambdaMART ranker over node feature vectors.

    Training groups correspond to tables (all candidate charts of one
    dataset form one query group), exactly as the paper's crowdsourced
    per-table comparisons do.
    """

    def __init__(
        self,
        n_estimators: int = 80,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        extended_features: bool = False,
        random_state: Optional[int] = 0,
    ) -> None:
        # extended_features defaults to False: the paper's learning-to-
        # rank model sees exactly the 14-feature vector of Section III.
        # (Recognition uses the extended encoding; ranking preferences
        # additionally hinge on set-level context — column salience,
        # within-table normalisation — that no per-chart feature vector
        # expresses, which is precisely why the paper finds the expert
        # partial order outranking learning-to-rank.)
        self.extended_features = extended_features
        self._model = LambdaMART(
            n_estimators=n_estimators,
            learning_rate=learning_rate,
            max_depth=max_depth,
            random_state=random_state,
        )
        self._fitted = False

    def _encode(self, nodes: Sequence[VisualizationNode]) -> np.ndarray:
        return encode_features(
            [node.features for node in nodes], extended=self.extended_features
        )

    def fit(
        self,
        groups: Sequence[Tuple[Sequence[VisualizationNode], Sequence[float]]],
    ) -> "LearningToRankRanker":
        """Train from per-table groups of (nodes, graded relevance)."""
        if not groups:
            raise ModelError("need at least one training group")
        matrices = []
        relevances = []
        query_ids = []
        for group_id, (nodes, relevance) in enumerate(groups):
            if len(nodes) != len(relevance):
                raise ModelError(
                    f"group {group_id}: {len(nodes)} nodes vs "
                    f"{len(relevance)} relevance grades"
                )
            if not nodes:
                continue
            matrices.append(self._encode(nodes))
            relevances.append(np.asarray(relevance, dtype=np.float64))
            query_ids.append(np.full(len(nodes), group_id))
        if not matrices:
            raise ModelError("all training groups are empty")
        dataset = RankingDataset(
            X=np.vstack(matrices),
            relevance=np.concatenate(relevances),
            query_ids=np.concatenate(query_ids),
        )
        self._model.fit(dataset)
        self._fitted = True
        return self

    def scores(self, nodes: Sequence[VisualizationNode]) -> np.ndarray:
        """Model scores, higher is better."""
        if not self._fitted:
            raise NotFittedError(type(self).__name__)
        if not nodes:
            return np.zeros(0)
        return self._model.predict(self._encode(nodes))

    def rank(self, nodes: Sequence[VisualizationNode]) -> List[int]:
        """Indices into ``nodes``, best first."""
        scores = self.scores(nodes)
        return sorted(range(len(nodes)), key=lambda i: (-scores[i], i))
