"""Multi-column visualizations (Section II-B, "Extensions").

The paper sketches two multi-column cases beyond the two-column core:

* **Case (i) — multi-series:** one x-axis column X and several y-axis
  columns Y1..Yz, compared as series on the same chart (the search
  space term 44·m(i+2)·Σ 4^i·C(m,i)).
* **Case (ii) — group-then-bin:** three columns X, Y, Z: group the data
  by X, bin/group Y inside each group for the x-axis, and aggregate Z
  per (group, bucket) — the paper's Figure 1(b) stacked bars (monthly
  passengers by destination) and Figure 1(a) scatter colored by
  carrier.  Search space 704·m^3.

Both execute into :class:`MultiSeriesData`: shared x buckets and one
named y series per Y column / per X group, which the renderer can draw
as multi-line charts, stacked/grouped bars, or colored scatters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dataset.column import ColumnType
from ..dataset.table import Table
from ..errors import ValidationError
from ..language.aggregation import aggregate
from ..language.ast import AggregateOp, ChartType, Transform
from ..language.executor import apply_transform, as_float_tuple
from .rules import RuleConfig, transform_rules

__all__ = [
    "MultiSeriesData",
    "execute_multi_series",
    "execute_grouped",
    "enumerate_multi_series",
    "enumerate_grouped",
    "multi_series_quality",
]


@dataclass(frozen=True)
class MultiSeriesData:
    """Chart data with several named y series over shared x buckets.

    ``series`` maps a series label (a Y column name for case (i), an X
    group value for case (ii)) to its y values, one per x bucket.
    """

    chart: ChartType
    x_name: str
    x_labels: Tuple[str, ...]
    series: Dict[str, Tuple[float, ...]]
    aggregate_op: Optional[AggregateOp]
    transform: Optional[Transform]
    source_rows: int

    @property
    def num_series(self) -> int:
        return len(self.series)

    @property
    def num_points(self) -> int:
        return len(self.x_labels)

    def describe(self) -> str:
        """One-line human-readable summary."""
        names = ", ".join(sorted(self.series))
        op = f"{self.aggregate_op.value}" if self.aggregate_op else "raw"
        return (
            f"{self.chart.value}: x={self.x_name}, {self.num_series} series "
            f"[{names}] ({op}), {self.num_points} points"
        )


# ----------------------------------------------------------------------
# Case (i): one X, several Y columns
# ----------------------------------------------------------------------
def execute_multi_series(
    table: Table,
    x: str,
    ys: Sequence[str],
    transform: Transform,
    op: AggregateOp,
    chart: ChartType = ChartType.LINE,
) -> MultiSeriesData:
    """Compare aggregate series of several Y columns over transformed X."""
    if len(ys) < 2:
        raise ValidationError("multi-series queries need at least two Y columns")
    for y in ys:
        if table.column(y).ctype is not ColumnType.NUMERICAL and op is not AggregateOp.CNT:
            raise ValidationError(
                f"{op.value} requires numerical Y columns; {y!r} is "
                f"{table.column(y).ctype.value}"
            )
    result = apply_transform(transform, table)
    series: Dict[str, Tuple[float, ...]] = {}
    for y in ys:
        y_col = table.column(y) if op is not AggregateOp.CNT else None
        values = aggregate(op, result.assignment, result.num_buckets, y_col)
        series[y] = as_float_tuple(values)
    return MultiSeriesData(
        chart=chart,
        x_name=x,
        x_labels=result.labels,
        series=series,
        aggregate_op=op,
        transform=transform,
        source_rows=table.num_rows,
    )


# ----------------------------------------------------------------------
# Case (ii): group by X, transform Y, aggregate Z
# ----------------------------------------------------------------------
def execute_grouped(
    table: Table,
    group_by: str,
    x: str,
    z: str,
    transform: Transform,
    op: AggregateOp,
    chart: ChartType = ChartType.BAR,
    max_groups: int = 12,
) -> MultiSeriesData:
    """One series per distinct ``group_by`` value: Figure 1(b)'s stacked
    bars (x = month buckets of ``x``, series = destinations, values =
    aggregated ``z``).

    Groups beyond ``max_groups`` (by row count) are dropped — a chart
    with dozens of series is unreadable, matching the paper's "hard to
    put many categories in a single chart" principle.
    """
    group_col = table.column(group_by)
    if not group_col.ctype.is_groupable:
        raise ValidationError(
            f"cannot group by {group_by!r} ({group_col.ctype.value})"
        )
    result = apply_transform(transform, table)
    z_col = table.column(z) if op is not AggregateOp.CNT else None
    if z_col is not None and z_col.ctype is not ColumnType.NUMERICAL:
        raise ValidationError(f"{op.value} requires a numerical Z column")

    # Top groups by support.
    values, counts = np.unique(
        np.asarray([str(v) for v in group_col.values], dtype=object),
        return_counts=True,
    )
    keep = [str(v) for v in values[np.argsort(-counts)][:max_groups]]

    series: Dict[str, Tuple[float, ...]] = {}
    group_values = np.asarray([str(v) for v in group_col.values], dtype=object)
    for group in keep:
        mask = group_values == group
        sub_assignment = result.assignment[mask]
        if z_col is not None:
            sub_z = z_col.take(np.flatnonzero(mask))
        else:
            sub_z = None
        values_g = aggregate(op, sub_assignment, result.num_buckets, sub_z)
        series[group] = as_float_tuple(values_g)

    return MultiSeriesData(
        chart=chart,
        x_name=x,
        x_labels=result.labels,
        series=series,
        aggregate_op=op,
        transform=transform,
        source_rows=table.num_rows,
    )


# ----------------------------------------------------------------------
# Rule-guided enumeration of multi-column candidates
# ----------------------------------------------------------------------
def enumerate_multi_series(
    table: Table,
    max_ys: int = 3,
    config: RuleConfig = RuleConfig(),
) -> List[MultiSeriesData]:
    """Case (i) candidates: comparable numeric Y sets over each X.

    Y columns are only compared on one chart when their scales are
    commensurate (max magnitudes within ~20x), which prunes the
    exponential Σ C(m, i) blow-up to the humanly sensible subset.
    """
    import itertools

    numeric = table.columns_of_type(ColumnType.NUMERICAL)
    results: List[MultiSeriesData] = []
    for x_col in table.columns:
        transforms = transform_rules(x_col, config)
        y_pool = [c for c in numeric if c.name != x_col.name]
        for size in range(2, min(max_ys, len(y_pool)) + 1):
            for combo in itertools.combinations(y_pool, size):
                magnitudes = [max(abs(c.min() or 0), abs(c.max() or 0)) or 1.0 for c in combo]
                if max(magnitudes) / max(min(magnitudes), 1e-9) > 20:
                    continue  # incomparable scales
                for transform in transforms:
                    chart = (
                        ChartType.LINE
                        if x_col.ctype in (ColumnType.TEMPORAL, ColumnType.NUMERICAL)
                        else ChartType.BAR
                    )
                    try:
                        data = execute_multi_series(
                            table,
                            x_col.name,
                            [c.name for c in combo],
                            transform,
                            AggregateOp.AVG,
                            chart,
                        )
                    except ValidationError:
                        continue
                    if 2 <= data.num_points <= 60:
                        results.append(data)
    return results


def enumerate_grouped(
    table: Table,
    max_groups: int = 8,
    config: RuleConfig = RuleConfig(),
) -> List[MultiSeriesData]:
    """Case (ii) candidates: group x bin x aggregate triples.

    Only low-cardinality categorical grouping columns qualify (more
    series than ``max_groups`` stops being readable).
    """
    results: List[MultiSeriesData] = []
    group_candidates = [
        c
        for c in table.columns_of_type(ColumnType.CATEGORICAL)
        if 2 <= c.num_distinct <= max_groups
    ]
    numeric = table.columns_of_type(ColumnType.NUMERICAL)
    for group_col in group_candidates:
        for x_col in table.columns:
            if x_col.name == group_col.name or not x_col.ctype.is_binnable:
                continue
            for transform in transform_rules(x_col, config):
                for z_col in numeric:
                    if z_col.name in (group_col.name, x_col.name):
                        continue
                    chart = (
                        ChartType.LINE
                        if x_col.ctype is ColumnType.TEMPORAL
                        else ChartType.BAR
                    )
                    try:
                        data = execute_grouped(
                            table,
                            group_col.name,
                            x_col.name,
                            z_col.name,
                            transform,
                            AggregateOp.SUM,
                            chart,
                            max_groups=max_groups,
                        )
                    except ValidationError:
                        continue
                    if 2 <= data.num_points <= 60 and data.num_series >= 2:
                        results.append(data)
    return results


def multi_series_quality(data: MultiSeriesData) -> float:
    """A matching-quality heuristic for multi-series charts in [0, 1].

    Combines readability (few series, bounded points) with informative
    contrast between the series (they should not be identical lines).
    """
    if data.num_points < 2 or data.num_series < 2:
        return 0.0
    series = np.asarray(list(data.series.values()), dtype=np.float64)
    spread = series.std(axis=0).mean()
    scale = np.abs(series).mean() + 1e-9
    contrast = min(1.0, spread / scale)
    readability = 1.0 if data.num_series <= 6 else 6.0 / data.num_series
    points_penalty = 1.0 if data.num_points <= 40 else 40.0 / data.num_points
    return contrast * readability * points_penalty
