"""Visualization nodes (Definition 1, Section IV-A).

A *visualization node* packages everything DeepEye knows about one
candidate chart: the original columns X, Y, the transformed data X', Y'
(as executed :class:`~repro.language.executor.ChartData`), the feature
vector **F** and the visualization type **T**.  Nodes are the unit that
recognition classifies, ranking orders, and selection returns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..dataset.table import Table
from ..language.ast import ChartType, VisQuery
from ..language.executor import ChartData, execute
from .features import FeatureVector, extract_features

__all__ = ["VisualizationNode", "make_node"]


@dataclass
class VisualizationNode:
    """One candidate visualization of a table.

    Attributes
    ----------
    query:
        The visualization-language query that defines the chart.
    data:
        The executed chart data (the transformed X', Y' series).
    features:
        The measured feature vector **F**.
    table_name:
        Name of the source table (nodes never hold the table itself, so
        large tables are not pinned by candidate lists).
    """

    query: VisQuery
    data: ChartData
    features: FeatureVector
    table_name: str

    @property
    def chart(self) -> ChartType:
        return self.query.chart

    @property
    def x_name(self) -> str:
        return self.query.x

    @property
    def y_name(self) -> str:
        return self.query.y

    @property
    def columns(self) -> Tuple[str, ...]:
        """Distinct source column names used by this node."""
        return self.query.columns

    def key(self) -> Tuple:
        """A hashable identity for dedup: (chart, x, y, transform, agg, order)."""
        return (
            self.query.chart,
            self.query.x,
            self.query.y,
            self.query.transform,
            self.query.aggregate,
            self.query.order,
        )

    def describe(self) -> str:
        """One-line human-readable summary used in reports and examples."""
        transform = (
            self.query.transform.describe() if self.query.transform else "raw"
        )
        y_expr = (
            f"{self.query.aggregate.value}({self.y_name})"
            if self.query.aggregate
            else self.y_name
        )
        return (
            f"{self.chart.value}: x={self.x_name} [{transform}], y={y_expr}, "
            f"{self.data.transformed_rows} points"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"VisualizationNode({self.describe()})"


def make_node(table: Table, query: VisQuery) -> VisualizationNode:
    """Execute a query against a table and package the result as a node.

    Propagates :class:`~repro.errors.ValidationError` /
    :class:`~repro.errors.ExecutionError` from execution; callers that
    enumerate speculative candidates catch these to skip invalid combos.
    """
    data = execute(query, table)
    features = extract_features(table, query, data)
    return VisualizationNode(
        query=query, data=data, features=features, table_name=table.name
    )
