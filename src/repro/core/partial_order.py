"""Partial-order factors M(v), Q(v), W(v) and dominance (Section IV-B).

Three expert factors score every visualization node:

* **M(v)** — matching quality between the data and the chart type
  (Eqs. 1-5): pies need few, diverse, non-negative slices and no AVG;
  bars tolerate up to ~20 categories; scatters need correlation; lines
  need the y series to follow a distribution (Trend).  Scores are
  normalised per chart type by the maximum among same-chart nodes.
* **Q(v)** — quality of the transformation (Eq. 6): ``1 - |X'|/|X|`` —
  transformations that genuinely reduce cardinality are better.
* **W(v)** — importance of the node's columns (Eqs. 7-8): the fraction
  of valid charts that mention each column, summed and normalised.

Definition 2 then induces the partial order: u dominates v when u is at
least as good on all three factors (strictly better on at least one),
and Eq. 9 weighs each dominance edge by the mean factor difference.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..dataset.stats import entropy
from ..language.ast import AggregateOp, ChartType
from .nodes import VisualizationNode
from .trend import DEFAULT_R2_THRESHOLD, TREND_FAMILIES, fit_trend

__all__ = [
    "FactorScores",
    "PartialOrderScorer",
    "matching_quality_raw",
    "transformation_quality",
    "dominates",
    "strictly_dominates",
    "edge_weight",
]


@dataclass(frozen=True)
class FactorScores:
    """The (M, Q, W) triple of one node, after normalisation."""

    m: float
    q: float
    w: float

    def as_tuple(self) -> Tuple[float, float, float]:
        """(M, Q, W) as a plain tuple (sortable, hashable)."""
        return (self.m, self.q, self.w)


# ----------------------------------------------------------------------
# Factor 1: matching quality M(v)
# ----------------------------------------------------------------------
def _pie_quality(node: VisualizationNode) -> float:
    """Eq. (1).  AVG pies, singleton pies and negative slices score 0;
    otherwise the normalised slice entropy, damped by 10/d beyond 10
    slices."""
    if node.query.aggregate is AggregateOp.AVG:
        return 0.0
    d = node.data.distinct_x
    if d <= 1:
        return 0.0
    y = np.asarray(node.data.y_values, dtype=np.float64)
    if y.min() < 0 or y.sum() <= 0:
        return 0.0
    # Normalised entropy in [0, 1]: 1 means evenly informative slices.
    diversity = entropy(y) / math.log(len(y)) if len(y) > 1 else 0.0
    base = 1.0 if d <= 10 else 10.0 / d
    return base * diversity


def _bar_quality(node: VisualizationNode) -> float:
    """Eq. (2): 0 for one bar, 1 up to 20 bars, 20/d beyond."""
    d = node.data.distinct_x
    if d <= 1:
        return 0.0
    if d <= 20:
        return 1.0
    return 20.0 / d


def _scatter_quality(node: VisualizationNode) -> float:
    """Eq. (3): the correlation strength of the plotted pair."""
    return abs(node.features.corr_transformed)


def _line_quality(
    node: VisualizationNode,
    r2_threshold: float,
    trend_families: Sequence[str] = TREND_FAMILIES,
) -> float:
    """Eq. (4): Trend(Y) — 1 when the y series follows a distribution."""
    if node.data.distinct_x <= 1:
        return 0.0
    result = fit_trend(
        node.data.y_values, families=trend_families, r2_threshold=r2_threshold
    )
    return 1.0 if result.has_trend else 0.0


def matching_quality_raw(
    node: VisualizationNode,
    r2_threshold: float = DEFAULT_R2_THRESHOLD,
    trend_families: Sequence[str] = TREND_FAMILIES,
) -> float:
    """Un-normalised M(v) for one node.

    ``trend_families`` controls the line chart's Trend(Y) test; pass
    :data:`~repro.core.trend.EXTENDED_TREND_FAMILIES` to also accept
    smooth non-monotone series (seasonal curves like Figure 1(c)).
    """
    if node.chart is ChartType.PIE:
        return _pie_quality(node)
    if node.chart is ChartType.BAR:
        return _bar_quality(node)
    if node.chart is ChartType.SCATTER:
        return _scatter_quality(node)
    return _line_quality(node, r2_threshold, trend_families)


# ----------------------------------------------------------------------
# Factor 2: transformation quality Q(v)
# ----------------------------------------------------------------------
def transformation_quality(node: VisualizationNode) -> float:
    """Eq. (6): ``1 - |X'| / |X|`` — reward genuine summarisation."""
    source = node.data.source_rows
    if source <= 0:
        return 0.0
    ratio = node.data.transformed_rows / source
    return max(0.0, 1.0 - ratio)


# ----------------------------------------------------------------------
# Scorer: computes all three factors for a candidate set
# ----------------------------------------------------------------------
class PartialOrderScorer:
    """Score a set of valid nodes on (M, Q, W) per Section IV-B.

    Both M's per-chart normalisation (Eq. 5) and W's definition (the
    share of *valid charts* mentioning a column, Eq. 7) are properties
    of the whole candidate set, so scoring is batched.
    """

    def __init__(
        self,
        r2_threshold: float = DEFAULT_R2_THRESHOLD,
        trend_families: Sequence[str] = TREND_FAMILIES,
    ) -> None:
        self.r2_threshold = r2_threshold
        self.trend_families = tuple(trend_families)

    def column_importance(
        self, nodes: Sequence[VisualizationNode]
    ) -> Dict[str, float]:
        """W(X): fraction of valid charts whose query mentions column X."""
        if not nodes:
            return {}
        counts: Dict[str, int] = {}
        for node in nodes:
            for column in node.columns:
                counts[column] = counts.get(column, 0) + 1
        total = len(nodes)
        return {column: count / total for column, count in counts.items()}

    def score(
        self,
        nodes: Sequence[VisualizationNode],
        raw_m: Optional[Sequence[float]] = None,
    ) -> List[FactorScores]:
        """The normalised (M, Q, W) triple of every node, in input order.

        ``raw_m`` optionally supplies the un-normalised M(v) of each
        node (same order as ``nodes``), skipping the per-node
        :func:`matching_quality_raw` calls — the incremental engine
        caches raw M across appends for charts whose inputs did not
        move.  Normalisation still happens here: Eq. (5) depends on the
        whole candidate set, not on a single node.
        """
        if not nodes:
            return []

        if raw_m is None:
            raw_m = [
                matching_quality_raw(n, self.r2_threshold, self.trend_families)
                for n in nodes
            ]
        elif len(raw_m) != len(nodes):
            raise ValueError(
                f"raw_m has {len(raw_m)} entries for {len(nodes)} nodes"
            )
        # Eq. (5): normalise M per chart type by the same-chart maximum.
        max_per_chart: Dict[ChartType, float] = {}
        for node, value in zip(nodes, raw_m):
            max_per_chart[node.chart] = max(max_per_chart.get(node.chart, 0.0), value)
        norm_m = [
            value / max_per_chart[node.chart] if max_per_chart[node.chart] > 0 else 0.0
            for node, value in zip(nodes, raw_m)
        ]

        q = [transformation_quality(n) for n in nodes]

        importance = self.column_importance(nodes)
        raw_w = [sum(importance[c] for c in n.columns) for n in nodes]
        max_w = max(raw_w) if raw_w else 0.0
        norm_w = [value / max_w if max_w > 0 else 0.0 for value in raw_w]

        return [
            FactorScores(m=m, q=qv, w=w) for m, qv, w in zip(norm_m, q, norm_w)
        ]


# ----------------------------------------------------------------------
# Dominance (Definition 2) and edge weights (Eq. 9)
# ----------------------------------------------------------------------
def dominates(u: FactorScores, v: FactorScores) -> bool:
    """u >= v on every factor (possibly equal on all)."""
    return u.m >= v.m and u.q >= v.q and u.w >= v.w


def strictly_dominates(u: FactorScores, v: FactorScores) -> bool:
    """u >= v on every factor and > on at least one (Definition 2's >-)."""
    return dominates(u, v) and (u.m > v.m or u.q > v.q or u.w > v.w)


def edge_weight(u: FactorScores, v: FactorScores) -> float:
    """Eq. (9): the mean factor advantage of u over v."""
    return ((u.m - v.m) + (u.q - v.q) + (u.w - v.w)) / 3.0
