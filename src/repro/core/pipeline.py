"""The DeepEye facade (Figure 4): offline training + online selection.

Offline, the system learns from examples — good/bad chart labels train
the recognition classifier, graded per-table rankings train LambdaMART,
and a held-out slice tunes the hybrid preference weight alpha.  Online,
a table comes in and the trained components produce its top-k charts;
:meth:`DeepEye.top_k_batch` serves whole batches of tables through a
worker pool, and a per-engine multi-level cache reuses work across
calls (see :mod:`repro.engine.cache`).
"""

from __future__ import annotations

import dataclasses
import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Union

from ..dataset.table import Table
from ..engine.cache import MultiLevelCache
from ..errors import ModelError, SelectionError
from ..obs import MetricsRegistry, Tracer, global_registry
from ..obs.events import EventLog
from .enumeration import EnumerationConfig
from .hybrid import HybridRanker
from .ltr import LearningToRankRanker
from .nodes import VisualizationNode
from .recognition import VisualizationRecognizer
from .selection import PartialOrderRanker, SelectionResult, select_top_k

__all__ = ["TrainingExample", "DeepEye"]


@dataclass
class TrainingExample:
    """One labelled table: its candidates, good/bad labels, and grades.

    ``relevance[i]`` is the graded goodness of ``nodes[i]`` (higher is
    better; 0 for bad charts) — the merged crowdsourced total order of
    the paper's ground truth.
    """

    table_name: str
    nodes: List[VisualizationNode]
    labels: List[bool]
    relevance: List[float]

    def __post_init__(self) -> None:
        if not (len(self.nodes) == len(self.labels) == len(self.relevance)):
            raise ModelError(
                f"training example {self.table_name!r}: nodes, labels and "
                f"relevance must be aligned"
            )

    def good_nodes(self) -> List[VisualizationNode]:
        """The subset of candidates labelled good."""
        return [n for n, ok in zip(self.nodes, self.labels) if ok]


class DeepEye:
    """Automatic data visualization: train once, select top-k anywhere.

    Parameters
    ----------
    ranking:
        Online ranking engine: ``"partial_order"`` (no training data
        needed), ``"learning_to_rank"``, or ``"hybrid"`` (the paper's
        best configuration).
    recognizer_model:
        Classifier for recognition: ``"decision_tree"`` / ``"bayes"`` /
        ``"svm"``; ``None`` disables the recognition filter.
    enumeration:
        Candidate generation mode: ``"rules"`` (default) or
        ``"exhaustive"``.
    n_jobs:
        Worker count for the parallel serving engine (overrides
        ``config.n_jobs`` when given): 1 = serial, -1 = all cores.
        Results are identical to serial at any value.
    backend:
        Pool flavour for ``n_jobs > 1``: ``"process"`` or ``"thread"``
        (overrides ``config.backend`` when given).
    cache:
        The serving cache: ``True`` (default) builds a private
        :class:`~repro.engine.cache.MultiLevelCache`, ``False``/``None``
        disables caching, or pass an existing instance to share one
        cache between engines.  Cleared automatically on :meth:`train`.
    cache_dir:
        Optional directory for the persistent L4 tier: entries survive
        process restarts (see :mod:`repro.engine.persistent`).  Attaches
        a :class:`~repro.engine.persistent.DiskCacheTier` to the serving
        cache (building one if ``cache`` did not already supply an
        instance with a disk tier); call :meth:`prewarm` on startup to
        pull the hottest entries back into memory.  Ignored when caching
        is disabled.
    trace:
        Tracing: ``True`` builds a private :class:`~repro.obs.Tracer`,
        or pass an existing tracer to share one across engines;
        ``False``/``None`` (default) disables span recording.  Every
        :meth:`top_k` call then appends a nested ``select_top_k`` span
        tree to ``self.tracer`` — export with
        ``engine.tracer.to_chrome_trace()``.
    metrics:
        Metrics: ``True`` publishes into the process-global
        :func:`~repro.obs.global_registry`, or pass a private
        :class:`~repro.obs.MetricsRegistry`; ``False``/``None``
        (default) disables.  Batch serving additionally feeds
        per-worker task latency histograms and the
        :attr:`slow_tables` log (threshold ``slow_threshold`` seconds).
    events:
        Decision-event logging: pass an :class:`~repro.obs.EventLog`
        (or ``True`` for a fresh in-memory one) and every
        :meth:`top_k` / :meth:`top_k_batch` call appends its
        request / phase / prune / score / rank / cache events to it;
        ``None`` (default) disables.  Implies provenance capture.
    provenance:
        ``True`` attaches one :class:`~repro.obs.ChartProvenance`
        record per emitted chart to each result's ``provenance`` dict
        (implied whenever ``events`` is given).  The top-k is
        byte-identical with it on or off.
    slo:
        Health monitoring: ``True`` builds an
        :class:`~repro.obs.health.SLOMonitor` with the default
        latency/error/cache-hit objectives, or pass a configured
        monitor; ``False``/``None`` (default) disables.  Every
        :meth:`top_k` and :meth:`top_k_batch` table then records one
        outcome per objective — read :meth:`SLOMonitor.snapshot` for
        the burn rates and alert states.
    max_slow_tables:
        Bound on the :attr:`slow_tables` log (newest first; oldest
        entries drop beyond the cap).
    """

    def __init__(
        self,
        ranking: str = "hybrid",
        recognizer_model: Optional[str] = "decision_tree",
        enumeration: str = "rules",
        config: EnumerationConfig = EnumerationConfig(),
        graph_strategy: str = "range_tree",
        n_jobs: Optional[int] = None,
        backend: Optional[str] = None,
        cache: Union[bool, MultiLevelCache, None] = True,
        cache_dir=None,
        trace: Union[bool, Tracer, None] = False,
        metrics: Union[bool, MetricsRegistry, None] = False,
        slow_threshold: float = 1.0,
        events: Union[bool, EventLog, None] = None,
        provenance: bool = False,
        slo=None,
        max_slow_tables: int = 256,
    ) -> None:
        if ranking not in ("partial_order", "learning_to_rank", "hybrid"):
            raise SelectionError(f"unknown ranking mode {ranking!r}")
        self.ranking = ranking
        self.enumeration = enumeration
        overrides = {}
        if n_jobs is not None:
            overrides["n_jobs"] = n_jobs
        if backend is not None:
            overrides["backend"] = backend
        self.config = (
            dataclasses.replace(config, **overrides) if overrides else config
        )
        self.graph_strategy = graph_strategy
        if cache is True:
            self.cache: Optional[MultiLevelCache] = MultiLevelCache()
        elif cache:
            self.cache = cache
        else:
            self.cache = None
        if cache_dir is not None and self.cache is not None:
            if getattr(self.cache, "disk", None) is None:
                from ..engine.persistent import DiskCacheTier

                self.cache.disk = DiskCacheTier(cache_dir)
        if trace is True:
            self.tracer: Optional[Tracer] = Tracer()
        elif trace:
            self.tracer = trace
        else:
            self.tracer = None
        if metrics is True:
            self.metrics: Optional[MetricsRegistry] = global_registry()
        elif metrics:
            self.metrics = metrics
        else:
            self.metrics = None
        # Explicit identity checks: an empty EventLog is falsy (it has
        # __len__), so a plain truthiness test would drop one.
        if events is True:
            self.events: Optional[EventLog] = EventLog()
        elif events is False:
            self.events = None
        else:
            self.events = events
        self.provenance = bool(provenance)
        if slo is True:
            from ..obs.health import SLOMonitor

            self.slo = SLOMonitor.with_default_objectives()
        elif slo:
            self.slo = slo
        else:
            self.slo = None
        self.slow_threshold = slow_threshold
        self.max_slow_tables = int(max_slow_tables)
        # Imported here, not at module level: repro.engine.parallel
        # imports core enumeration modules (circular at init time).
        from ..engine.parallel import SlowTableLog

        #: Batch tables that exceeded ``slow_threshold`` seconds, newest
        #: first: ``{table, rows, columns, seconds, worker}`` dicts
        #: (populated by :meth:`top_k_batch`), bounded at
        #: ``max_slow_tables`` entries (oldest drop).
        self.slow_tables: "SlowTableLog" = SlowTableLog(self.max_slow_tables)
        self.recognizer: Optional[VisualizationRecognizer] = (
            VisualizationRecognizer(model=recognizer_model)
            if recognizer_model
            else None
        )
        self.ltr: Optional[LearningToRankRanker] = None
        self.hybrid: Optional[HybridRanker] = None
        self._trained = False

    def from_source(
        self,
        path,
        kind: Optional[str] = None,
        query: Optional[str] = None,
        table: Optional[str] = None,
        name: Optional[str] = None,
        materialize: Union[bool, str] = "auto",
        pushdown: bool = True,
        chunk_rows: Optional[int] = None,
        sample_rows: Optional[int] = None,
        max_materialize_rows: Optional[int] = None,
        seed: Optional[int] = None,
        types=None,
        delimiter: str = ",",
    ) -> Table:
        """Load a table from a data source with this engine's
        observability attached (ingest spans on :attr:`tracer`,
        ``ingest_*`` counters on :attr:`metrics`).

        ``kind`` is ``csv`` / ``jsonl`` / ``sqlite`` or ``None`` to
        infer from the file extension; ``table``/``query`` select the
        sqlite relation.  ``materialize`` is ``True``, ``False``, or
        ``"auto"`` (stream past ``max_materialize_rows``); see
        :func:`repro.dataset.sources.from_source` for the build modes
        and :class:`~repro.dataset.sources.SqlitePushdown` for when
        transforms run inside the database.
        """
        from ..dataset import sources as _sources

        source = _sources.resolve_source(
            path, kind, query=query, table=table, name=name,
            delimiter=delimiter,
        )
        kwargs = {}
        if chunk_rows is not None:
            kwargs["chunk_rows"] = chunk_rows
        if sample_rows is not None:
            kwargs["sample_rows"] = sample_rows
        if max_materialize_rows is not None:
            kwargs["max_materialize_rows"] = max_materialize_rows
        if seed is not None:
            kwargs["seed"] = seed
        return _sources.from_source(
            source,
            materialize=materialize,
            pushdown=pushdown,
            types=types,
            tracer=self.tracer,
            metrics=self.metrics,
            **kwargs,
        )

    def prewarm(self, per_level: Optional[int] = None) -> dict:
        """Load the hottest disk-tier entries into the in-memory cache
        levels (the restart workflow: construct with ``cache_dir``,
        ``prewarm()``, then serve).  Returns per-level loaded counts;
        ``{}`` when there is no cache or no disk tier."""
        if self.cache is None or getattr(self.cache, "disk", None) is None:
            return {}
        return self.cache.prewarm(per_level=per_level)

    # -- pickling (observability state stays in the parent) -------------
    def __getstate__(self) -> dict:
        # Tracer and MetricsRegistry hold locks/thread-locals, and the
        # EventLog may hold a file handle, none of which can cross
        # process boundaries; batch workers therefore run uninstrumented
        # (the batch driver captures their events into private per-task
        # logs) and the parent records their task latency from the
        # timings each worker ships back with its result.
        from ..engine.parallel import SlowTableLog

        state = dict(self.__dict__)
        state["tracer"] = None
        state["metrics"] = None
        state["events"] = None
        state["slo"] = None
        state["slow_tables"] = SlowTableLog(self.max_slow_tables)
        return state

    # ------------------------------------------------------------------
    def train(self, examples: Sequence[TrainingExample]) -> "DeepEye":
        """Fit recognition + ranking models from labelled examples.

        With ``ranking="partial_order"`` only the recognizer trains (the
        partial order is expert knowledge, not learned).
        """
        if not examples:
            raise ModelError("need at least one training example")

        if self.recognizer is not None:
            all_nodes: List[VisualizationNode] = []
            all_labels: List[bool] = []
            for example in examples:
                all_nodes.extend(example.nodes)
                all_labels.extend(example.labels)
            self.recognizer.fit(all_nodes, all_labels)

        if self.ranking in ("learning_to_rank", "hybrid"):
            groups = [
                (example.nodes, example.relevance)
                for example in examples
                if example.nodes
            ]
            self.ltr = LearningToRankRanker()
            self.ltr.fit(groups)

        if self.ranking == "hybrid":
            self.hybrid = HybridRanker(
                self.ltr, PartialOrderRanker(self.graph_strategy)
            )
            self.hybrid.fit_alpha(groups)

        if self.cache is not None:
            # New models make every cached feature-gated decision and
            # ranked result stale.
            self.cache.clear()
        self._trained = True
        return self

    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        """Persist the trained engine (models + settings) to a directory.

        Writes ``engine.json`` with the configuration plus per-model
        JSON files; :meth:`load` restores an equivalent engine.  Only
        trained engines can be saved.
        """
        if not self._trained:
            raise ModelError("train() the engine before save()")
        from ..persistence import save_ltr, save_recognizer

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "ranking": self.ranking,
            "enumeration": self.enumeration,
            "graph_strategy": self.graph_strategy,
            "hybrid_alpha": self.hybrid.alpha if self.hybrid else None,
            "has_recognizer": self.recognizer is not None,
            "has_ltr": self.ltr is not None,
        }
        (directory / "engine.json").write_text(json.dumps(manifest))
        if self.recognizer is not None:
            save_recognizer(self.recognizer, directory / "recognizer.json")
        if self.ltr is not None:
            save_ltr(self.ltr, directory / "ltr.json")

    @classmethod
    def load(cls, directory) -> "DeepEye":
        """Restore an engine saved by :meth:`save`."""
        from ..persistence import load_ltr, load_recognizer

        directory = Path(directory)
        manifest = json.loads((directory / "engine.json").read_text())
        engine = cls(
            ranking=manifest["ranking"],
            recognizer_model=None,
            enumeration=manifest["enumeration"],
            graph_strategy=manifest["graph_strategy"],
        )
        if manifest["has_recognizer"]:
            engine.recognizer = load_recognizer(directory / "recognizer.json")
        if manifest["has_ltr"]:
            engine.ltr = load_ltr(directory / "ltr.json")
        if engine.ranking == "hybrid":
            alpha = manifest["hybrid_alpha"]
            engine.hybrid = HybridRanker(
                engine.ltr,
                PartialOrderRanker(engine.graph_strategy),
                # alpha = 0.0 is a legitimate learned value (pure LTR).
                alpha=1.0 if alpha is None else float(alpha),
            )
        engine._trained = True
        return engine

    # ------------------------------------------------------------------
    def top_k(
        self,
        table: Table,
        k: int = 10,
        events: Optional[EventLog] = None,
        provenance: Optional[bool] = None,
        tracer: Optional[Tracer] = None,
        record_slo: bool = True,
    ) -> SelectionResult:
        """Select the top-k visualizations for a table.

        All three ranking modes run through the same
        :func:`~repro.core.selection.select_top_k` phases (enumerate ->
        recognize -> rank), so timings and fallback semantics cannot
        drift between them; they differ only in the ranker handed to
        the rank phase.

        ``events`` / ``provenance`` / ``tracer`` override the
        engine-level settings for this call (the batch driver uses the
        ``events`` and ``tracer`` overrides to capture per-table worker
        logs and span trees it merges in input order).  ``record_slo``
        lets the batch driver disable per-call SLO recording — it
        records one outcome per table itself, with queue effects and
        worker identity in hand.
        """
        if self.ranking == "partial_order":
            ranker: Union[str, object] = "partial_order"
            recognizer = self.recognizer if self._trained else None
        elif not self._trained:
            raise ModelError(
                f"ranking={self.ranking!r} requires train() before top_k()"
            )
        elif self.ranking == "learning_to_rank":
            ranker = "learning_to_rank"
            recognizer = self.recognizer
        else:  # hybrid: the paper's best configuration
            ranker = self.hybrid
            recognizer = self.recognizer
        start = time.perf_counter()
        try:
            result = select_top_k(
                table,
                k=k,
                enumeration=self.enumeration,
                ranker=ranker,
                recognizer=recognizer,
                ltr=self.ltr,
                config=self.config,
                graph_strategy=self.graph_strategy,
                cache=self.cache,
                tracer=self.tracer if tracer is None else tracer,
                metrics=self.metrics,
                events=self.events if events is None else events,
                provenance=self.provenance if provenance is None else provenance,
            )
        except Exception:
            if record_slo and self.slo is not None:
                self.slo.record_outcome("selection_errors", False)
            raise
        if record_slo and self.slo is not None:
            self.slo.record_latency(
                "selection_latency", time.perf_counter() - start
            )
            self.slo.record_outcome("selection_errors", True)
            self.slo.record_outcome(
                "cache_hit_rate", result.result_cache_hit
            )
        return result

    def top_k_batch(
        self,
        tables: Iterable[Table],
        k: int = 10,
        n_jobs: Optional[int] = None,
        backend: Optional[str] = None,
        dedup: Optional[bool] = None,
    ) -> Iterator[SelectionResult]:
        """Serve a batch of tables, streaming results in input order.

        The trained models are shared across the pool (pickled once per
        process worker); ``n_jobs``/``backend`` default to this engine's
        config.  Yields one :class:`SelectionResult` per table as soon
        as it — and every earlier table — is done.

        When the engine has metrics enabled, each table records a
        per-worker ``batch_task_seconds`` latency sample and tables
        slower than ``self.slow_threshold`` seconds are prepended to
        the bounded :attr:`slow_tables` log (newest first).  With an
        engine-level event log, each table's full event stream is
        captured worker-side and merged back in input order.

        ``dedup`` controls cross-table computation sharing within the
        batch: identical ``(column content, transform)`` pairs across
        tables compute once and seed the transform cache before fan-out
        (on by default when the engine has a cache; the top-k is
        byte-identical either way).
        """
        # Imported here, not at module level: repro.engine.parallel
        # imports core enumeration modules, so importing it while this
        # package is still initialising would be circular.
        from ..engine.parallel import batch_select

        return batch_select(
            self,
            tables,
            k=k,
            n_jobs=n_jobs,
            backend=backend,
            metrics=self.metrics,
            slow_log=self.slow_tables,
            slow_threshold=self.slow_threshold,
            events=self.events,
            dedup=dedup,
            tracer=self.tracer,
            slo=self.slo,
        )
