"""The DeepEye facade (Figure 4): offline training + online selection.

Offline, the system learns from examples — good/bad chart labels train
the recognition classifier, graded per-table rankings train LambdaMART,
and a held-out slice tunes the hybrid preference weight alpha.  Online,
a table comes in and the trained components produce its top-k charts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..dataset.table import Table
from ..errors import ModelError, SelectionError
from .enumeration import EnumerationConfig
from .hybrid import HybridRanker
from .ltr import LearningToRankRanker
from .nodes import VisualizationNode
from .recognition import VisualizationRecognizer
from .selection import PartialOrderRanker, SelectionResult, select_top_k

__all__ = ["TrainingExample", "DeepEye"]


@dataclass
class TrainingExample:
    """One labelled table: its candidates, good/bad labels, and grades.

    ``relevance[i]`` is the graded goodness of ``nodes[i]`` (higher is
    better; 0 for bad charts) — the merged crowdsourced total order of
    the paper's ground truth.
    """

    table_name: str
    nodes: List[VisualizationNode]
    labels: List[bool]
    relevance: List[float]

    def __post_init__(self) -> None:
        if not (len(self.nodes) == len(self.labels) == len(self.relevance)):
            raise ModelError(
                f"training example {self.table_name!r}: nodes, labels and "
                f"relevance must be aligned"
            )

    def good_nodes(self) -> List[VisualizationNode]:
        """The subset of candidates labelled good."""
        return [n for n, ok in zip(self.nodes, self.labels) if ok]


class DeepEye:
    """Automatic data visualization: train once, select top-k anywhere.

    Parameters
    ----------
    ranking:
        Online ranking engine: ``"partial_order"`` (no training data
        needed), ``"learning_to_rank"``, or ``"hybrid"`` (the paper's
        best configuration).
    recognizer_model:
        Classifier for recognition: ``"decision_tree"`` / ``"bayes"`` /
        ``"svm"``; ``None`` disables the recognition filter.
    enumeration:
        Candidate generation mode: ``"rules"`` (default) or
        ``"exhaustive"``.
    """

    def __init__(
        self,
        ranking: str = "hybrid",
        recognizer_model: Optional[str] = "decision_tree",
        enumeration: str = "rules",
        config: EnumerationConfig = EnumerationConfig(),
        graph_strategy: str = "range_tree",
    ) -> None:
        if ranking not in ("partial_order", "learning_to_rank", "hybrid"):
            raise SelectionError(f"unknown ranking mode {ranking!r}")
        self.ranking = ranking
        self.enumeration = enumeration
        self.config = config
        self.graph_strategy = graph_strategy
        self.recognizer: Optional[VisualizationRecognizer] = (
            VisualizationRecognizer(model=recognizer_model)
            if recognizer_model
            else None
        )
        self.ltr: Optional[LearningToRankRanker] = None
        self.hybrid: Optional[HybridRanker] = None
        self._trained = False

    # ------------------------------------------------------------------
    def train(self, examples: Sequence[TrainingExample]) -> "DeepEye":
        """Fit recognition + ranking models from labelled examples.

        With ``ranking="partial_order"`` only the recognizer trains (the
        partial order is expert knowledge, not learned).
        """
        if not examples:
            raise ModelError("need at least one training example")

        if self.recognizer is not None:
            all_nodes: List[VisualizationNode] = []
            all_labels: List[bool] = []
            for example in examples:
                all_nodes.extend(example.nodes)
                all_labels.extend(example.labels)
            self.recognizer.fit(all_nodes, all_labels)

        if self.ranking in ("learning_to_rank", "hybrid"):
            groups = [
                (example.nodes, example.relevance)
                for example in examples
                if example.nodes
            ]
            self.ltr = LearningToRankRanker()
            self.ltr.fit(groups)

        if self.ranking == "hybrid":
            self.hybrid = HybridRanker(
                self.ltr, PartialOrderRanker(self.graph_strategy)
            )
            self.hybrid.fit_alpha(groups)

        self._trained = True
        return self

    # ------------------------------------------------------------------
    def save(self, directory) -> None:
        """Persist the trained engine (models + settings) to a directory.

        Writes ``engine.json`` with the configuration plus per-model
        JSON files; :meth:`load` restores an equivalent engine.  Only
        trained engines can be saved.
        """
        import json
        from pathlib import Path

        if not self._trained:
            raise ModelError("train() the engine before save()")
        from ..persistence import save_ltr, save_recognizer

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {
            "ranking": self.ranking,
            "enumeration": self.enumeration,
            "graph_strategy": self.graph_strategy,
            "hybrid_alpha": self.hybrid.alpha if self.hybrid else None,
            "has_recognizer": self.recognizer is not None,
            "has_ltr": self.ltr is not None,
        }
        (directory / "engine.json").write_text(json.dumps(manifest))
        if self.recognizer is not None:
            save_recognizer(self.recognizer, directory / "recognizer.json")
        if self.ltr is not None:
            save_ltr(self.ltr, directory / "ltr.json")

    @classmethod
    def load(cls, directory) -> "DeepEye":
        """Restore an engine saved by :meth:`save`."""
        import json
        from pathlib import Path

        from ..persistence import load_ltr, load_recognizer

        directory = Path(directory)
        manifest = json.loads((directory / "engine.json").read_text())
        engine = cls(
            ranking=manifest["ranking"],
            recognizer_model=None,
            enumeration=manifest["enumeration"],
            graph_strategy=manifest["graph_strategy"],
        )
        if manifest["has_recognizer"]:
            engine.recognizer = load_recognizer(directory / "recognizer.json")
        if manifest["has_ltr"]:
            engine.ltr = load_ltr(directory / "ltr.json")
        if engine.ranking == "hybrid":
            alpha = manifest["hybrid_alpha"]
            engine.hybrid = HybridRanker(
                engine.ltr,
                PartialOrderRanker(engine.graph_strategy),
                # alpha = 0.0 is a legitimate learned value (pure LTR).
                alpha=1.0 if alpha is None else float(alpha),
            )
        engine._trained = True
        return engine

    # ------------------------------------------------------------------
    def top_k(self, table: Table, k: int = 10) -> SelectionResult:
        """Select the top-k visualizations for a table."""
        if self.ranking == "partial_order":
            return select_top_k(
                table,
                k=k,
                enumeration=self.enumeration,
                ranker="partial_order",
                recognizer=self.recognizer if self._trained else None,
                config=self.config,
                graph_strategy=self.graph_strategy,
            )
        if not self._trained:
            raise ModelError(
                f"ranking={self.ranking!r} requires train() before top_k()"
            )
        if self.ranking == "learning_to_rank":
            return select_top_k(
                table,
                k=k,
                enumeration=self.enumeration,
                ranker="learning_to_rank",
                recognizer=self.recognizer,
                ltr=self.ltr,
                config=self.config,
                graph_strategy=self.graph_strategy,
            )
        # Hybrid: reuse select_top_k's enumerate+recognize phases via the
        # partial-order path, then re-rank with the hybrid combiner.
        import time

        timings = {}
        start = time.perf_counter()
        from .enumeration import enumerate_candidates

        candidates = enumerate_candidates(table, self.enumeration, self.config)
        timings["enumerate"] = time.perf_counter() - start

        start = time.perf_counter()
        valid = (
            self.recognizer.filter_valid(candidates)
            if self.recognizer is not None
            else list(candidates)
        ) or list(candidates)
        timings["recognize"] = time.perf_counter() - start

        start = time.perf_counter()
        order = self.hybrid.rank(valid)
        timings["rank"] = time.perf_counter() - start

        return SelectionResult(
            nodes=[valid[i] for i in order[:k]],
            order=order,
            candidates=len(candidates),
            valid=len(valid),
            timings=timings,
        )
