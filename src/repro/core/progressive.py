"""The progressive top-k method (Section V-B).

Instead of materialising every candidate and ranking the full set, the
progressive method keeps one *leaf list* per x-axis column (grouped
under the per-type lists L_c, L_t, L_n) and runs a tournament: leaves
are opened lazily, each contributing its best remaining chart, and the
overall best is emitted repeatedly until k charts are out.

Unopened leaves participate through an *upper bound* on any chart they
could produce, computed from the schema alone — so a column is never
grouped/binned at all when k charts already beat its bound, which is the
paper's second optimization ("do not generate the groups of a column if
there are k charts better than any chart in this column").

Charts are compared by the composite factor score (M + Q + W_est) / 3,
with W estimated from rule counts over the schema (the exact W needs the
globally-filtered chart set, which progressive evaluation avoids
building).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataset.column import ColumnType
from ..dataset.table import Table
from ..obs import MetricsRegistry, Tracer, maybe_span
from .enumeration import (
    EnumerationConfig,
    EnumerationContext,
    rule_based_for_column,
)
from .nodes import VisualizationNode
from .partial_order import matching_quality_raw, transformation_quality
from .rules import aggregate_rules, transform_rules, visualization_rules

__all__ = ["ProgressiveResult", "estimate_column_importance", "progressive_top_k"]


def estimate_column_importance(
    table: Table, config: EnumerationConfig = EnumerationConfig()
) -> Dict[str, float]:
    """Schema-only estimate of W(X): each column's share of the charts
    the decision rules could generate, without executing anything."""
    rule_config = config.rule_config()
    counts: Dict[str, float] = {name: 0.0 for name in table.column_names}
    total = 0.0

    def chart_slots(x_col, y_col, one_column: bool) -> int:
        transforms = len(transform_rules(x_col, rule_config))
        aggregates = 1 if one_column else len(aggregate_rules(y_col))
        charts = len(visualization_rules(x_col.ctype, True, correlated=True))
        return transforms * aggregates * charts

    for x in table.columns:
        if config.include_one_column:
            slots = chart_slots(x, x, one_column=True)
            counts[x.name] += slots
            total += slots
        for y in table.columns:
            if y.name == x.name:
                continue
            slots = chart_slots(x, y, one_column=False)
            counts[x.name] += slots
            counts[y.name] += slots
            total += slots
    if total <= 0:
        return {name: 0.0 for name in counts}
    return {name: value / total for name, value in counts.items()}


def _composite(node: VisualizationNode, importance: Dict[str, float], max_w: float) -> float:
    """(M + Q + W_est) / 3 — the progressive comparison score."""
    w = sum(importance.get(c, 0.0) for c in node.columns)
    w_norm = w / max_w if max_w > 0 else 0.0
    return (matching_quality_raw(node) + transformation_quality(node) + w_norm) / 3.0


@dataclass
class ProgressiveResult:
    """Top-k nodes plus how much work the tournament avoided."""

    nodes: List[VisualizationNode]
    scores: List[float]
    columns_opened: int
    columns_total: int
    candidates_generated: int

    @property
    def columns_skipped(self) -> int:
        return self.columns_total - self.columns_opened


def progressive_top_k(
    table: Table,
    k: int = 10,
    config: EnumerationConfig = EnumerationConfig(),
    context: Optional[EnumerationContext] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ProgressiveResult:
    """Emit the top-k charts without materialising every candidate.

    The heap holds two kinds of entries: *bound* entries for unopened
    column leaves (their schema-level upper bound) and *chart* entries
    for generated candidates.  Popping a bound opens that leaf; popping
    a chart emits it.  Correctness: a chart is only emitted when its
    actual score beats every unopened leaf's upper bound.

    ``tracer`` records a ``progressive_top_k`` span with one child
    ``open_leaf`` span per materialised column; ``metrics`` accumulates
    emitted-vs-materialised counters, making the paper's second V-B
    optimisation ("never group a column k better charts dominate")
    observable.
    """
    with maybe_span(
        tracer, "progressive_top_k", table=table.name, k=k
    ) as root:
        result = _progressive_top_k(table, k, config, context, tracer, root)
    if metrics is not None:
        metrics.counter(
            "progressive_runs_total",
            help="progressive_top_k invocations",
        ).inc()
        metrics.counter(
            "progressive_columns_opened_total",
            help="Column leaves actually grouped/binned",
        ).inc(result.columns_opened)
        metrics.counter(
            "progressive_columns_skipped_total",
            help="Column leaves pruned by their schema upper bound",
        ).inc(result.columns_skipped)
        metrics.counter(
            "progressive_candidates_materialised_total",
            help="Candidate nodes generated by opened leaves",
        ).inc(result.candidates_generated)
        metrics.counter(
            "progressive_nodes_emitted_total",
            help="Charts emitted into the top-k",
        ).inc(len(result.nodes))
    return result


def _progressive_top_k(
    table: Table,
    k: int,
    config: EnumerationConfig,
    context: Optional[EnumerationContext],
    tracer: Optional[Tracer],
    root,
) -> ProgressiveResult:
    ctx = context or EnumerationContext(table, config)
    importance = estimate_column_importance(table, config)

    # max_w normalises the two-column importance sum into [0, 1].
    pair_sums = [
        importance[a] + importance[b]
        for a in table.column_names
        for b in table.column_names
    ]
    max_w = max(pair_sums) if pair_sums else 1.0

    # Upper bound of any chart with x = column: M <= 1, Q <= 1, and the
    # node importance at most importance[x] + best partner importance.
    best_partner = max(importance.values()) if importance else 0.0
    heap: List[Tuple[float, int, str, object]] = []
    for serial, name in enumerate(table.column_names):
        w_bound = min(importance[name] + best_partner, max_w)
        bound = (1.0 + 1.0 + (w_bound / max_w if max_w > 0 else 0.0)) / 3.0
        heapq.heappush(heap, (-bound, serial, "bound", name))

    serial = len(table.column_names)
    opened = 0
    generated = 0
    top_nodes: List[VisualizationNode] = []
    top_scores: List[float] = []

    while heap and len(top_nodes) < k:
        negative_score, _, kind, payload = heapq.heappop(heap)
        if kind == "bound":
            # Open the leaf: generate, score, and enqueue its charts.
            opened += 1
            with maybe_span(tracer, "open_leaf", column=payload) as leaf_span:
                leaf_nodes = rule_based_for_column(ctx, payload)
                if leaf_span is not None:
                    leaf_span.add("materialised", len(leaf_nodes))
            generated += len(leaf_nodes)
            for node in leaf_nodes:
                if matching_quality_raw(node) <= 0:
                    continue  # never a valid chart (zero matching quality)
                score = _composite(node, importance, max_w)
                serial += 1
                heapq.heappush(heap, (-score, serial, "chart", node))
        else:
            top_nodes.append(payload)
            top_scores.append(-negative_score)

    if root is not None:
        root.set("columns_opened", opened)
        root.set("columns_total", table.num_columns)
        root.set("candidates_materialised", generated)
        root.set("nodes_emitted", len(top_nodes))
    return ProgressiveResult(
        nodes=top_nodes,
        scores=top_scores,
        columns_opened=opened,
        columns_total=table.num_columns,
        candidates_generated=generated,
    )
