"""Ranking nodes over the dominance graph (Section IV-C, Algorithm 1).

Two rankers:

* **Topological** — the paper's straw-man: repeatedly take the node with
  the fewest remaining in-edges.  Ignores edge weights.
* **Weight-aware** — the paper's method: a node's score is

      S(v) = 0                                    if v has no out-edges
      S(v) = sum over (v, u) of [w(v, u) + S(u)]  otherwise

  i.e. how much, and how transitively, v beats other nodes.  Computed by
  memoised traversal in reverse-topological order (the graph is a DAG
  because dominance is strict).
"""

from __future__ import annotations

import heapq
from typing import List, Sequence, Tuple

from ..errors import SelectionError
from ..indexes.fenwick2d import Fenwick2D
from .graph import DominanceGraph
from .partial_order import FactorScores

__all__ = [
    "weight_aware_scores",
    "rank_weight_aware",
    "weight_aware_scores_from_factors",
    "rank_weight_aware_factors",
    "rank_weight_aware_factors_with_scores",
    "dominance_counts_from_factors",
    "rank_topological",
    "top_k",
]

#: Upper clamp for weight-aware scores (well below float overflow).
_SCORE_CLAMP = 1e120


def weight_aware_scores(graph: DominanceGraph) -> List[float]:
    """S(v) for every node, by iterative post-order DFS with memoisation."""
    n = graph.num_nodes
    scores = [0.0] * n
    state = [0] * n  # 0 = unvisited, 1 = on stack, 2 = done
    for root in range(n):
        if state[root] == 2:
            continue
        stack = [(root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                total = 0.0
                for child, weight in graph.out_edges[node]:
                    total += weight + scores[child]
                # Same clamp as the edge-free computation: S grows
                # exponentially along dominance chains.
                scores[node] = min(total, _SCORE_CLAMP)
                state[node] = 2
                continue
            if state[node] == 2:
                continue
            state[node] = 1
            stack.append((node, True))
            for child, _ in graph.out_edges[node]:
                if state[child] == 1:
                    raise SelectionError(
                        "dominance graph contains a cycle; strict dominance "
                        "should be acyclic"
                    )
                if state[child] == 0:
                    stack.append((child, False))
    return scores


def rank_weight_aware(graph: DominanceGraph) -> List[int]:
    """Node indices best-first by S(v); ties broken by node index."""
    scores = weight_aware_scores(graph)
    return sorted(range(graph.num_nodes), key=lambda i: (-scores[i], i))


def weight_aware_scores_from_factors(
    scores: Sequence[FactorScores],
) -> List[float]:
    """S(v) computed directly from factor triples, edge-free.

    Identical to :func:`weight_aware_scores` over the full dominance
    graph (a property the test suite verifies), but O(n log^2 n)
    instead of O(n^2): with t(v) = (M + Q + W) / 3, Eq. 9 gives every
    edge weight as t(v) - t(u), so

        S(v) = |D(v)| * t(v) - sum over dominated u of (t(u) - S(u)),

    and both aggregates are 2-D Fenwick dominance queries when nodes
    are processed in ascending (M, Q, W) order.  Nodes tied on all
    three factors are processed as one batch (they never dominate each
    other).
    """
    n = len(scores)
    result = [0.0] * n
    if n == 0:
        return result

    order = sorted(range(n), key=lambda i: scores[i].as_tuple())
    index = Fenwick2D(
        [scores[i].q for i in range(n)], [scores[i].w for i in range(n)]
    )

    position = 0
    while position < n:
        # Batch all nodes with an identical factor triple: equal triples
        # are incomparable under strict dominance, so they must not see
        # each other in the aggregates.
        batch = [order[position]]
        triple = scores[order[position]].as_tuple()
        position += 1
        while position < n and scores[order[position]].as_tuple() == triple:
            batch.append(order[position])
            position += 1

        for v in batch:
            sv = scores[v]
            t_v = (sv.m + sv.q + sv.w) / 3.0
            dominated_count, dominated_sum = index.query(sv.q, sv.w)
            # S(v) grows exponentially along dominance chains (every
            # node's score folds in the full scores of everything it
            # dominates — the paper's recursion taken literally), so
            # large candidate sets overflow float range.  Clamp: the
            # ordering above the clamp is resolved by the composite
            # tie-break in rank_weight_aware_factors.
            result[v] = min(dominated_count * t_v - dominated_sum, _SCORE_CLAMP)
        for v in batch:
            sv = scores[v]
            t_v = (sv.m + sv.q + sv.w) / 3.0
            index.add(sv.q, sv.w, 1.0, t_v - result[v])
    return result


def _dominated_counts_sweep(
    triples: Sequence[Tuple[float, float, float]]
) -> List[int]:
    """Per node, how many other nodes it strictly dominates.

    The same ascending-(M, Q, W) Fenwick sweep as
    :func:`weight_aware_scores_from_factors`, keeping only the dominance
    *count*: every node already swept with q' <= q and w' <= w is
    strictly dominated (equal triples are batched so they never count
    each other).  O(n log^2 n).
    """
    n = len(triples)
    result = [0] * n
    if n == 0:
        return result
    order = sorted(range(n), key=lambda i: triples[i])
    index = Fenwick2D(
        [triples[i][1] for i in range(n)], [triples[i][2] for i in range(n)]
    )
    position = 0
    while position < n:
        batch = [order[position]]
        triple = triples[order[position]]
        position += 1
        while position < n and triples[order[position]] == triple:
            batch.append(order[position])
            position += 1
        for v in batch:
            _, q, w = triples[v]
            count, _ = index.query(q, w)
            result[v] = int(count)
        for v in batch:
            _, q, w = triples[v]
            index.add(q, w, 1.0, 0.0)
    return result


def dominance_counts_from_factors(
    scores: Sequence[FactorScores],
) -> Tuple[List[int], List[int]]:
    """Per node ``(dominates, dominated_by)`` edge counts, edge-free.

    ``dominates[i]`` is node i's out-degree in the full dominance graph
    (how many charts it strictly beats) and ``dominated_by[i]`` its
    in-degree — the provenance layer's "better than X, beaten by Y"
    counts, identical to materialising the graph but O(n log^2 n): one
    ascending sweep for out-degrees and one over the negated factors
    (dominance reverses under negation) for in-degrees.
    """
    triples = [s.as_tuple() for s in scores]
    dominates = _dominated_counts_sweep(triples)
    negated = [(-m, -q, -w) for m, q, w in triples]
    dominated_by = _dominated_counts_sweep(negated)
    return dominates, dominated_by


def rank_weight_aware_factors_with_scores(
    scores: Sequence[FactorScores],
) -> Tuple[List[int], List[float]]:
    """The weight-aware ranking plus the S(v) values behind it.

    One code path for both the plain ranking and provenance capture —
    the order is exactly :func:`rank_weight_aware_factors`'s (which
    delegates here), so tracing can never change the answer.
    """
    values = weight_aware_scores_from_factors(scores)
    composite = [(s.m + s.q + s.w) / 3.0 for s in scores]
    order = sorted(
        range(len(scores)), key=lambda i: (-values[i], -composite[i], i)
    )
    return order, values


def rank_weight_aware_factors(scores: Sequence[FactorScores]) -> List[int]:
    """Node indices best-first by the edge-free S(v) computation.

    Ties (including clamped scores) break toward the higher composite
    factor score, then the node index, so the ranking stays total and
    deterministic.
    """
    order, _ = rank_weight_aware_factors_with_scores(scores)
    return order


def rank_topological(graph: DominanceGraph) -> List[int]:
    """The baseline: peel off the node with the fewest in-edges first.

    Uses a lazy-deletion heap over (current in-degree, index); when a
    node is taken, its out-neighbours' in-degrees drop.
    """
    degrees = graph.in_degrees()
    heap = [(degree, node) for node, degree in enumerate(degrees)]
    heapq.heapify(heap)
    taken = [False] * graph.num_nodes
    order: List[int] = []
    while heap:
        degree, node = heapq.heappop(heap)
        if taken[node] or degree != degrees[node]:
            continue  # stale entry
        taken[node] = True
        order.append(node)
        for child, _ in graph.out_edges[node]:
            if not taken[child]:
                degrees[child] -= 1
                heapq.heappush(heap, (degrees[child], child))
    return order


def top_k(graph: DominanceGraph, k: int, method: str = "weight_aware") -> List[int]:
    """The k best node indices under the chosen ranking method."""
    if k < 0:
        raise SelectionError(f"k must be non-negative, got {k}")
    if method == "weight_aware":
        return rank_weight_aware(graph)[:k]
    if method == "topological":
        return rank_topological(graph)[:k]
    raise SelectionError(
        f"unknown ranking method {method!r}; use 'weight_aware' or 'topological'"
    )
