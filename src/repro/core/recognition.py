"""Visualization recognition: good-or-bad binary classification (Section III).

A :class:`VisualizationRecognizer` wraps one of the three from-scratch
classifiers (decision tree, naive Bayes, linear SVM) behind a common
interface over :class:`~repro.core.nodes.VisualizationNode` inputs: it
encodes the feature vectors, standardises them where the model needs it,
and exposes fit / predict / evaluate / filter_valid.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ModelError, NotFittedError
from ..ml.bayes import GaussianNaiveBayes
from ..ml.metrics import precision_recall_f1
from ..ml.preprocessing import StandardScaler
from ..ml.svm import LinearSVM
from ..ml.tree import DecisionTreeClassifier
from .features import encode_features
from .nodes import VisualizationNode

__all__ = ["VisualizationRecognizer", "RECOGNIZER_MODELS"]

RECOGNIZER_MODELS = ("decision_tree", "bayes", "svm")


def _build_model(name: str, random_state: Optional[int]):
    if name in ("decision_tree", "dt"):
        return DecisionTreeClassifier(max_depth=12, min_samples_leaf=2)
    if name == "bayes":
        return GaussianNaiveBayes()
    if name == "svm":
        return LinearSVM(lam=1e-4, epochs=25, random_state=random_state)
    raise ModelError(
        f"unknown recognizer model {name!r}; choose from {RECOGNIZER_MODELS}"
    )


class VisualizationRecognizer:
    """Binary good/bad classifier over visualization nodes.

    Parameters
    ----------
    model:
        ``"decision_tree"`` (the paper's winner), ``"bayes"`` or ``"svm"``.
    extended_features:
        Include the transformed-data statistics of Table II in the
        encoding (defaults on; set False for the strict 14-feature set).
    balance_classes:
        Weight training samples inversely to class frequency.  The
        corpus is heavily skewed toward bad charts (2,520 good vs 30,892
        bad in the paper), which otherwise drowns the positive class for
        margin- and likelihood-based models.
    """

    def __init__(
        self,
        model: str = "decision_tree",
        extended_features: bool = True,
        balance_classes: bool = True,
        random_state: Optional[int] = 0,
    ) -> None:
        self.model_name = "decision_tree" if model == "dt" else model
        self.extended_features = extended_features
        self.balance_classes = balance_classes
        self.random_state = random_state
        self._model = _build_model(self.model_name, random_state)
        self._scaler: Optional[StandardScaler] = (
            StandardScaler() if self.model_name in ("svm", "bayes") else None
        )
        self._fitted = False

    # ------------------------------------------------------------------
    def _encode(self, nodes: Sequence[VisualizationNode]) -> np.ndarray:
        matrix = encode_features(
            [node.features for node in nodes], extended=self.extended_features
        )
        if self._scaler is not None and self._fitted:
            matrix = self._scaler.transform(matrix)
        return matrix

    def fit(
        self, nodes: Sequence[VisualizationNode], labels: Sequence[bool]
    ) -> "VisualizationRecognizer":
        """Train on labelled nodes; ``labels[i]`` is True for good charts."""
        if len(nodes) != len(labels):
            raise ModelError("nodes and labels must be aligned")
        if len(nodes) == 0:
            raise ModelError("cannot fit a recognizer on zero examples")
        y = np.asarray([bool(v) for v in labels])
        if len(np.unique(y)) < 2:
            raise ModelError("training labels must contain both classes")

        matrix = encode_features(
            [node.features for node in nodes], extended=self.extended_features
        )
        if self._scaler is not None:
            matrix = self._scaler.fit_transform(matrix)

        sample_weight = None
        if self.balance_classes:
            positive_rate = float(y.mean())
            weight_pos = 0.5 / max(positive_rate, 1e-9)
            weight_neg = 0.5 / max(1.0 - positive_rate, 1e-9)
            sample_weight = np.where(y, weight_pos, weight_neg)

        self._fitted = True
        self._model.fit(matrix, y, sample_weight=sample_weight)
        return self

    def predict(self, nodes: Sequence[VisualizationNode]) -> np.ndarray:
        """Boolean array: True where the recognizer deems the chart good."""
        if not self._fitted:
            raise NotFittedError(type(self).__name__)
        if len(nodes) == 0:
            return np.zeros(0, dtype=bool)
        return self._model.predict(self._encode(nodes)).astype(bool)

    def probabilities(
        self, nodes: Sequence[VisualizationNode]
    ) -> Optional[np.ndarray]:
        """P(good) per node, when the underlying model can express one.

        Decision trees and naive Bayes expose ``predict_proba``; the
        SVM's signed margin maps through a logistic squash.  Returns
        ``None`` if no probability-like quantity exists (future models),
        so provenance callers can degrade gracefully.
        """
        if not self._fitted:
            raise NotFittedError(type(self).__name__)
        if len(nodes) == 0:
            return np.zeros(0)
        matrix = self._encode(nodes)
        if hasattr(self._model, "predict_proba"):
            probabilities = self._model.predict_proba(matrix)
            # Both from-scratch classifiers return (n, 2) class columns
            # ordered [False, True]; be tolerant of a 1-D P(good) shape.
            if probabilities.ndim == 2:
                return probabilities[:, -1]
            return probabilities
        if hasattr(self._model, "decision_function"):
            margin = self._model.decision_function(matrix)
            return 1.0 / (1.0 + np.exp(-margin))
        return None

    def filter_valid(
        self, nodes: Sequence[VisualizationNode]
    ) -> List[VisualizationNode]:
        """The subset of nodes classified as good ("valid charts")."""
        keep = self.predict(nodes)
        return [node for node, good in zip(nodes, keep) if good]

    def evaluate(
        self, nodes: Sequence[VisualizationNode], labels: Sequence[bool]
    ) -> Dict[str, float]:
        """Precision / recall / F-measure of the good class on a test set."""
        predictions = self.predict(nodes)
        truth = np.asarray([bool(v) for v in labels])
        return precision_recall_f1(truth, predictions, positive=True)
