"""Decision rules for meaningful visualizations (Section V-A).

Three rule families prune the search space down to candidates a human
could plausibly want:

1. **Transformation rules** — which GROUP/BIN + aggregate combinations
   make sense for the column types (e.g. categorical X can only be
   grouped; non-numerical Y only admits CNT).
2. **Sorting rules** — numerical/temporal X' may be sorted; numerical Y'
   may be sorted; categorical X' may not.
3. **Visualization rules** — which chart types fit the (T(X), T(Y))
   combination (e.g. Cat/Num -> bar or pie; Num/Num -> line/bar, plus
   scatter when correlated; Tem/Num -> line).

Section V-C argues these rules are *complete*: they enumerate every
(type, operation) combination that can yield a meaningful chart.  The
test suite checks that completeness claim mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..dataset.column import Column, ColumnType
from ..dataset.table import Table
from ..language.ast import (
    AggregateOp,
    BinByGranularity,
    BinByUDF,
    BinGranularity,
    BinIntoBuckets,
    ChartType,
    GroupBy,
    OrderBy,
    OrderTarget,
    Transform,
    VisQuery,
)
from ..language.binning import DEFAULT_NUM_BUCKETS

__all__ = [
    "RuleConfig",
    "PruningCounters",
    "CORRELATION_RULE_THRESHOLD",
    "transform_rules",
    "aggregate_rules",
    "sorting_rules",
    "visualization_rules",
    "canonical_order",
    "complies",
]

#: |c(X, Y)| above which the Num/Num scatter rule fires.
CORRELATION_RULE_THRESHOLD = 0.5


@dataclass
class PruningCounters:
    """Per-rule accounting of what enumeration considered vs. kept.

    Every candidate variant enumeration examines either *emits* a node
    or is *pruned* by exactly one named decision rule, so the invariant

        ``considered == emitted + sum(pruned.values())``

    holds by construction — which makes the paper's Section V-A pruning
    claims measurable: ``pruned`` says how many candidates each rule
    family eliminated, per rule name (e.g. ``scatter_low_correlation``,
    ``variant_min_buckets``, ``ordering_canonicalised``).

    Instances are cheap dict counters; :class:`EnumerationContext`
    always carries one, and the parallel executor merges per-column
    counters back into the caller's accumulator.
    """

    considered: int = 0
    emitted: int = 0
    pruned: Dict[str, int] = field(default_factory=dict)

    def emit(self, n: int = 1) -> None:
        """Count ``n`` variants that became actual candidate nodes."""
        self.considered += n
        self.emitted += n

    def prune(self, rule: str, n: int = 1) -> None:
        """Count ``n`` variants eliminated by decision rule ``rule``."""
        self.considered += n
        self.pruned[rule] = self.pruned.get(rule, 0) + n

    @property
    def total_pruned(self) -> int:
        return sum(self.pruned.values())

    def merge(self, other: "PruningCounters") -> None:
        """Fold another accumulator (e.g. a worker's) into this one."""
        self.considered += other.considered
        self.emitted += other.emitted
        for rule, count in other.pruned.items():
            self.pruned[rule] = self.pruned.get(rule, 0) + count

    def as_dict(self) -> Dict[str, int]:
        """Flat summary: considered/emitted/pruned totals + per rule."""
        flat = {
            "considered": self.considered,
            "emitted": self.emitted,
            "pruned_total": self.total_pruned,
        }
        for rule, count in sorted(self.pruned.items()):
            flat[f"pruned_{rule}"] = count
        return flat


@dataclass(frozen=True)
class RuleConfig:
    """Tunable knobs of the rule system.

    ``granularities`` limits which temporal BIN granularities rules
    propose; ``numeric_bins`` the bucket counts for BIN INTO; ``udfs``
    registers user-defined bucketing functions as (name, callable)
    pairs — the paper's ``BIN X BY UDF(X)`` case (e.g. splitting a
    delay column at 0 into early/late).
    """

    granularities: Tuple[BinGranularity, ...] = tuple(BinGranularity)
    numeric_bins: Tuple[int, ...] = (DEFAULT_NUM_BUCKETS,)
    correlation_threshold: float = CORRELATION_RULE_THRESHOLD
    udfs: Tuple[Tuple[str, Callable[[float], object]], ...] = ()


def transform_rules(x: Column, config: RuleConfig = RuleConfig()) -> List[Transform]:
    """Transforms the rules permit for x-axis column X.

    * Cat X -> GROUP(X) only.
    * Num X -> BIN(X) only (equal-width buckets).
    * Tem X -> GROUP(X) or BIN(X) at every granularity.
    """
    if x.ctype is ColumnType.CATEGORICAL:
        return [GroupBy(x.name)]
    if x.ctype is ColumnType.NUMERICAL:
        transforms: List[Transform] = [
            BinIntoBuckets(x.name, n) for n in config.numeric_bins
        ]
        transforms.extend(
            BinByUDF(x.name, name, udf) for name, udf in config.udfs
        )
        return transforms
    transforms = [GroupBy(x.name)]
    transforms.extend(
        BinByGranularity(x.name, g) for g in config.granularities
    )
    return transforms


def aggregate_rules(y: Column) -> List[AggregateOp]:
    """Aggregates the rules permit for Y: AGG for Num, CNT otherwise."""
    if y.ctype is ColumnType.NUMERICAL:
        return [AggregateOp.AVG, AggregateOp.SUM, AggregateOp.CNT]
    return [AggregateOp.CNT]


def sorting_rules(
    x_type: ColumnType, y_is_numeric: bool
) -> List[Optional[OrderBy]]:
    """Order-by options the sorting rules permit (``None`` = unsorted).

    Numerical/temporal X may be sorted; numerical Y may be sorted; both
    at once is impossible by construction of the language.
    """
    options: List[Optional[OrderBy]] = [None]
    if x_type.is_sortable_on_x:
        options.append(OrderBy(OrderTarget.X))
    if y_is_numeric:
        options.append(OrderBy(OrderTarget.Y, descending=True))
    return options


def visualization_rules(
    x_type: ColumnType,
    y_is_numeric: bool,
    correlated: bool = False,
) -> List[ChartType]:
    """Chart types the visualization rules permit for (T(X), numeric Y).

    ``y_is_numeric`` refers to the *plotted* y values; after aggregation
    every y is numeric, so this is False only for raw non-numeric Y —
    which no rule permits.
    """
    if not y_is_numeric:
        return []
    if x_type is ColumnType.CATEGORICAL:
        return [ChartType.BAR, ChartType.PIE]
    if x_type is ColumnType.NUMERICAL:
        charts = [ChartType.LINE, ChartType.BAR]
        if correlated:
            charts.append(ChartType.SCATTER)
        return charts
    return [ChartType.LINE]


def canonical_order(chart: ChartType, x_type: ColumnType) -> Optional[OrderBy]:
    """The single ordering a designer would pick for a chart.

    Line and scatter charts need a sorted scale axis; bar charts over
    categories read best sorted by value (descending); pie slices
    likewise.  Used by rule-based enumeration to avoid tripling the
    candidate count over order variants.
    """
    if chart in (ChartType.LINE, ChartType.SCATTER):
        if x_type.is_sortable_on_x:
            return OrderBy(OrderTarget.X)
        return OrderBy(OrderTarget.Y, descending=True)
    if x_type is ColumnType.CATEGORICAL:
        return OrderBy(OrderTarget.Y, descending=True)
    if x_type.is_sortable_on_x:
        return OrderBy(OrderTarget.X)
    return None


def complies(
    query: VisQuery,
    table: Table,
    correlated: bool = False,
    config: RuleConfig = RuleConfig(),
) -> bool:
    """Whether a query satisfies every applicable decision rule.

    Used to label enumerated candidates as rule-compliant (and by tests
    of rule completeness).  ``correlated`` supplies the |c(X, Y)| >=
    threshold fact for the Num/Num scatter rule.
    """
    x = table.column(query.x)
    y = table.column(query.y)

    # Transformation rules.
    if query.transform is not None:
        if isinstance(query.transform, GroupBy) and not x.ctype.is_groupable:
            return False
        if (
            isinstance(query.transform, (BinIntoBuckets, BinByGranularity, BinByUDF))
            and not x.ctype.is_binnable
        ):
            return False
        if isinstance(query.transform, BinByGranularity) and x.ctype is not ColumnType.TEMPORAL:
            return False
        if isinstance(query.transform, BinIntoBuckets) and x.ctype is not ColumnType.NUMERICAL:
            return False
        if query.aggregate is not AggregateOp.CNT and y.ctype is not ColumnType.NUMERICAL:
            return False
    else:
        # Raw plots need a numerical Y; only scatter/line read raw pairs.
        if y.ctype is not ColumnType.NUMERICAL:
            return False
        if query.chart not in (ChartType.SCATTER, ChartType.LINE):
            return False
        if query.chart is ChartType.SCATTER and not (
            x.ctype in (ColumnType.NUMERICAL, ColumnType.TEMPORAL) and correlated
        ):
            return False
        if query.chart is ChartType.LINE and x.ctype is ColumnType.CATEGORICAL:
            return False

    # Sorting rules.
    if query.order is not None:
        if query.order.target is OrderTarget.X and not (
            x.ctype.is_sortable_on_x or query.transform is not None
        ):
            return False
        # Y' is always numeric after aggregation; raw Y must be numeric
        # (checked above), so ORDER BY Y is always legal here.

    # Visualization rules (on the x type; aggregated y is always numeric).
    if query.transform is not None:
        permitted = visualization_rules(x.ctype, True, correlated)
        if query.chart not in permitted:
            return False
    return True
