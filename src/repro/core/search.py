"""Keyword-driven visualization search (the paper's stated future work).

Section VIII: "One major future work is to support keyword queries such
that users specify their intent in a natural way" — realised in the
DeepEye demo papers [25, 26].  This module implements that interface on
top of the selection pipeline: keywords are matched against each
candidate's column names, chart type, aggregate, and binning
granularity, and the match score is blended with the expert
partial-order composite so that, among matching charts, the *good* ones
surface first.

Example::

    results = keyword_search(table, "average delay by hour", k=3)
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dataset.table import Table
from ..language.ast import (
    AggregateOp,
    BinByGranularity,
    ChartType,
    GroupBy,
    Transform,
)
from .enumeration import EnumerationConfig, enumerate_rule_based
from .nodes import VisualizationNode
from .partial_order import matching_quality_raw, transformation_quality

__all__ = ["SearchHit", "keyword_search", "score_keywords"]

#: Synonyms mapping query words onto chart types.
_CHART_WORDS = {
    "bar": ChartType.BAR, "bars": ChartType.BAR, "histogram": ChartType.BAR,
    "line": ChartType.LINE, "trend": ChartType.LINE, "series": ChartType.LINE,
    "over": ChartType.LINE,
    "pie": ChartType.PIE, "share": ChartType.PIE, "proportion": ChartType.PIE,
    "breakdown": ChartType.PIE,
    "scatter": ChartType.SCATTER, "correlation": ChartType.SCATTER,
    "versus": ChartType.SCATTER, "vs": ChartType.SCATTER,
}

#: Synonyms mapping query words onto aggregates.
_AGG_WORDS = {
    "average": AggregateOp.AVG, "avg": AggregateOp.AVG, "mean": AggregateOp.AVG,
    "total": AggregateOp.SUM, "sum": AggregateOp.SUM,
    "count": AggregateOp.CNT, "number": AggregateOp.CNT, "frequency": AggregateOp.CNT,
}

#: Words mapping onto temporal binning granularities.
_GRANULARITY_WORDS = {
    "minute": "MINUTE", "hour": "HOUR", "hourly": "HOUR", "day": "DAY",
    "daily": "DAY", "week": "WEEK", "weekly": "WEEK", "month": "MONTH",
    "monthly": "MONTH", "quarter": "QUARTER", "quarterly": "QUARTER",
    "year": "YEAR", "yearly": "YEAR", "annual": "YEAR",
}


#: Query words that carry no chart intent.
_STOP_WORDS = frozenset(
    ("by", "per", "of", "the", "a", "an", "in", "for", "each", "and", "show", "me")
)


def _tokens(text: str) -> List[str]:
    return [t for t in re.split(r"[^a-z0-9]+", text.lower()) if t]


def _column_tokens(name: str) -> set:
    return set(_tokens(name))


@dataclass(frozen=True)
class SearchHit:
    """One search result: the node, its match score, and why it matched."""

    node: VisualizationNode
    score: float
    keyword_score: float
    quality_score: float
    matched: Tuple[str, ...]


def score_keywords(node: VisualizationNode, keywords: Sequence[str]) -> Tuple[float, List[str]]:
    """Fraction of query keywords the candidate satisfies, plus the
    matched keyword list.  Column-name tokens, chart-type synonyms,
    aggregate synonyms, and granularity words all count."""
    if not keywords:
        return 0.0, []
    column_words = _column_tokens(node.x_name) | _column_tokens(node.y_name)
    matched: List[str] = []
    for word in keywords:
        if word in _STOP_WORDS:
            continue  # stop words neither match nor hurt
        hit = False
        if word in column_words:
            hit = True
        elif word in _CHART_WORDS and _CHART_WORDS[word] is node.chart:
            hit = True
        elif word in _AGG_WORDS and _AGG_WORDS[word] is node.query.aggregate:
            hit = True
        elif (
            word in _GRANULARITY_WORDS
            and isinstance(node.query.transform, BinByGranularity)
            and _GRANULARITY_WORDS[word] == node.query.transform.granularity.value
        ):
            hit = True
        if hit:
            matched.append(word)
    content_words = [w for w in keywords if w not in _STOP_WORDS]
    if not content_words:
        return 0.0, matched
    return len(matched) / len(content_words), matched


def keyword_search(
    table: Table,
    query: str,
    k: int = 5,
    config: EnumerationConfig = EnumerationConfig(),
    candidates: Optional[Sequence[VisualizationNode]] = None,
    keyword_weight: float = 0.7,
) -> List[SearchHit]:
    """Find the top-k charts matching a natural keyword query.

    The final score blends keyword match (weight ``keyword_weight``)
    with chart quality (the expert M and Q factors), so "delay by hour"
    returns the *good* hourly delay chart rather than an arbitrary one.
    Candidates default to rule-based enumeration of the table.
    """
    words = _tokens(query)
    nodes = (
        list(candidates)
        if candidates is not None
        else enumerate_rule_based(table, config)
    )
    hits: List[SearchHit] = []
    for node in nodes:
        keyword_score, matched = score_keywords(node, words)
        if keyword_score <= 0:
            continue
        quality = 0.5 * matching_quality_raw(node) + 0.5 * transformation_quality(node)
        score = keyword_weight * keyword_score + (1 - keyword_weight) * quality
        hits.append(
            SearchHit(
                node=node,
                score=score,
                keyword_score=keyword_score,
                quality_score=quality,
                matched=tuple(matched),
            )
        )
    hits.sort(key=lambda h: (-h.score, -h.quality_score, h.node.describe()))
    return hits[:k]
