"""End-to-end visualization selection (Sections IV-C, V-B, VI-D).

:func:`select_top_k` composes the pipeline the paper benchmarks:

1. *enumerate* candidates — exhaustive (**E**) or rule-based (**R**);
2. optionally *recognise* — keep only charts a trained classifier deems
   good (skipped when no recognizer is supplied; rules already filter a
   lot in R mode);
3. *rank* — partial order (**P**: factor scoring, dominance graph,
   weight-aware S(v)) or learning-to-rank (**L**: LambdaMART scores);
4. return the top-*k* with per-phase wall-clock timings, the raw
   material of Figure 12.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..dataset.table import Table
from ..errors import SelectionError
from .enumeration import EnumerationConfig, enumerate_candidates
from .graph import DominanceGraph, build_graph
from .ltr import LearningToRankRanker
from .nodes import VisualizationNode
from .partial_order import FactorScores, PartialOrderScorer, matching_quality_raw
from .ranking import rank_weight_aware, rank_weight_aware_factors
from .recognition import VisualizationRecognizer

__all__ = ["SelectionResult", "PartialOrderRanker", "select_top_k"]


class PartialOrderRanker:
    """Rank nodes by the expert partial order (factors -> graph -> S(v))."""

    def __init__(
        self,
        graph_strategy: str = "range_tree",
        scorer: Optional[PartialOrderScorer] = None,
    ) -> None:
        self.graph_strategy = graph_strategy
        self.scorer = scorer or PartialOrderScorer()

    def score(self, nodes: Sequence[VisualizationNode]) -> List[FactorScores]:
        """The normalised (M, Q, W) factor triples of the nodes."""
        return self.scorer.score(nodes)

    def graph(self, nodes: Sequence[VisualizationNode]) -> DominanceGraph:
        """The explicit dominance graph (Hasse diagram with weights)."""
        return build_graph(self.score(nodes), self.graph_strategy)

    def rank(self, nodes: Sequence[VisualizationNode]) -> List[int]:
        """Indices into ``nodes``, best first, by weight-aware S(v).

        Uses the edge-free O(n log^2 n) computation (see
        :func:`repro.core.ranking.weight_aware_scores_from_factors`),
        which produces exactly the same scores as materialising the
        dominance graph; ``self.graph(...)`` remains available when the
        explicit Hasse diagram itself is wanted.
        """
        if not nodes:
            return []
        return rank_weight_aware_factors(self.score(nodes))


@dataclass
class SelectionResult:
    """Top-k nodes plus the diagnostics Figure 12 reports."""

    nodes: List[VisualizationNode]
    order: List[int]
    candidates: int
    valid: int
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())

    def phase_fraction(self, phase: str) -> float:
        """Share of end-to-end time spent in one phase (the % annotations
        on the paper's Figure 12 bars)."""
        total = self.total_seconds
        return self.timings.get(phase, 0.0) / total if total > 0 else 0.0


def select_top_k(
    table: Table,
    k: int = 10,
    enumeration: str = "rules",
    ranker: str = "partial_order",
    recognizer: Optional[VisualizationRecognizer] = None,
    ltr: Optional[LearningToRankRanker] = None,
    config: EnumerationConfig = EnumerationConfig(),
    graph_strategy: str = "range_tree",
) -> SelectionResult:
    """Compute the top-k visualizations of a table.

    Parameters mirror the four Figure 12 configurations: ``enumeration``
    in {"exhaustive"/"E", "rules"/"R"} x ``ranker`` in
    {"partial_order"/"P", "learning_to_rank"/"L"}.  A ``ltr`` ranker is
    required for L mode; a ``recognizer`` is optional in both.
    """
    if k < 0:
        raise SelectionError(f"k must be non-negative, got {k}")

    timings: Dict[str, float] = {}
    start = time.perf_counter()
    candidates = enumerate_candidates(table, enumeration, config)
    timings["enumerate"] = time.perf_counter() - start

    start = time.perf_counter()
    if recognizer is not None and candidates:
        valid_nodes = recognizer.filter_valid(candidates)
    else:
        # No trained recognizer: apply the expert validity criterion —
        # a chart whose matching quality M(v) is zero (AVG pies,
        # trendless lines, uncorrelated scatters, singleton bars) is
        # never a valid chart.
        valid_nodes = [
            node for node in candidates if matching_quality_raw(node) > 0
        ]
    if not valid_nodes:
        # A filter that rejects everything would return nothing; fall
        # back to the unfiltered candidates so selection still surfaces
        # the least-bad charts.
        valid_nodes = list(candidates)
    timings["recognize"] = time.perf_counter() - start

    start = time.perf_counter()
    if ranker in ("partial_order", "P"):
        order = PartialOrderRanker(graph_strategy).rank(valid_nodes)
    elif ranker in ("learning_to_rank", "L"):
        if ltr is None:
            raise SelectionError(
                "ranker='learning_to_rank' requires a fitted "
                "LearningToRankRanker via the ltr parameter"
            )
        order = ltr.rank(valid_nodes)
    else:
        raise SelectionError(
            f"unknown ranker {ranker!r}; use 'partial_order' or "
            f"'learning_to_rank'"
        )
    timings["rank"] = time.perf_counter() - start

    top = [valid_nodes[i] for i in order[:k]]
    return SelectionResult(
        nodes=top,
        order=order,
        candidates=len(candidates),
        valid=len(valid_nodes),
        timings=timings,
    )
