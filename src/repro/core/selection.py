"""End-to-end visualization selection (Sections IV-C, V-B, VI-D).

:func:`select_top_k` composes the pipeline the paper benchmarks:

1. *enumerate* candidates — exhaustive (**E**) or rule-based (**R**);
2. optionally *recognise* — keep only charts a trained classifier deems
   good (skipped when no recognizer is supplied; rules already filter a
   lot in R mode);
3. *rank* — partial order (**P**: factor scoring, dominance graph,
   weight-aware S(v)) or learning-to-rank (**L**: LambdaMART scores);
4. return the top-*k* with per-phase wall-clock timings, the raw
   material of Figure 12.

Serving extensions on top of the paper's pipeline: ``config.n_jobs``
fans phases 1–2 out over a worker pool with results identical to
serial, and a multi-level ``cache`` reuses transforms, feature vectors
and whole results across calls (see :mod:`repro.engine.cache`).
"""

from __future__ import annotations

import dataclasses
import functools
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..dataset.table import Table
from ..errors import NotFittedError, SelectionError
from ..obs import MetricsRegistry, Tracer, maybe_span
from ..obs.context import current_request_id, request_scope
from ..obs.drift import node_id
from ..obs.events import EventLog
from ..obs.kernels import KERNEL_STATS
from ..obs.provenance import ChartProvenance
from .enumeration import (
    EnumerationConfig,
    EnumerationContext,
    context_for,
    enumerate_candidates,
    search_space_size,
)
from .graph import DominanceGraph, build_graph
from .ltr import LearningToRankRanker
from .nodes import VisualizationNode
from .partial_order import FactorScores, PartialOrderScorer, matching_quality_raw
from .ranking import (
    dominance_counts_from_factors,
    rank_weight_aware,
    rank_weight_aware_factors,
    rank_weight_aware_factors_with_scores,
)
from .recognition import VisualizationRecognizer
from .rules import PruningCounters

__all__ = ["SelectionResult", "PartialOrderRanker", "select_top_k", "PHASE_ORDER"]

#: Pipeline phases in execution order (the Figure 12 x-axis).
PHASE_ORDER: Tuple[str, ...] = ("enumerate", "recognize", "rank")


class PartialOrderRanker:
    """Rank nodes by the expert partial order (factors -> graph -> S(v))."""

    def __init__(
        self,
        graph_strategy: str = "range_tree",
        scorer: Optional[PartialOrderScorer] = None,
    ) -> None:
        self.graph_strategy = graph_strategy
        self.scorer = scorer or PartialOrderScorer()

    def score(self, nodes: Sequence[VisualizationNode]) -> List[FactorScores]:
        """The normalised (M, Q, W) factor triples of the nodes."""
        return self.scorer.score(nodes)

    def graph(self, nodes: Sequence[VisualizationNode]) -> DominanceGraph:
        """The explicit dominance graph (Hasse diagram with weights)."""
        return build_graph(self.score(nodes), self.graph_strategy)

    def rank(self, nodes: Sequence[VisualizationNode]) -> List[int]:
        """Indices into ``nodes``, best first, by weight-aware S(v).

        Uses the edge-free O(n log^2 n) computation (see
        :func:`repro.core.ranking.weight_aware_scores_from_factors`),
        which produces exactly the same scores as materialising the
        dominance graph; ``self.graph(...)`` remains available when the
        explicit Hasse diagram itself is wanted.
        """
        order, _, _ = self.rank_with_trace(nodes)
        return order

    def rank_with_trace(
        self, nodes: Sequence[VisualizationNode]
    ) -> Tuple[List[int], List[FactorScores], List[float]]:
        """The ranking plus the factor triples and S(v) values behind it.

        Returns ``(order, factors, scores)`` where ``order`` is exactly
        what :meth:`rank` returns (which delegates here — capturing
        provenance can never change the answer), ``factors`` the
        normalised (M, Q, W) triples, and ``scores`` the weight-aware
        S(v) values the order was sorted by.
        """
        if not nodes:
            return [], [], []
        factors = self.score(nodes)
        order, values = rank_weight_aware_factors_with_scores(factors)
        return order, factors, values


@dataclass
class SelectionResult:
    """Top-k nodes plus the diagnostics Figure 12 reports.

    ``timings`` maps phase name to seconds; when selection ran under a
    :class:`~repro.obs.Tracer` it is a *derived view* of the phase
    spans (each value is that span's duration), kept as a plain dict
    for backward compatibility — the span tree on the tracer is the
    richer primary record.

    ``cache_stats`` carries the serving cache's hit/miss/eviction
    counters (flattened per level) when selection ran with a
    :class:`~repro.engine.cache.MultiLevelCache`; empty otherwise.

    ``provenance`` maps each emitted chart's stable id (see
    :func:`repro.obs.drift.node_id`) to its
    :class:`~repro.obs.provenance.ChartProvenance` decision record when
    selection ran with ``provenance=True`` (or an event log); empty
    otherwise — provenance capture is opt-in so the fast path stays
    uninstrumented.

    ``source`` is the ingest record of a source-backed table (kind,
    content id, query fingerprint, mode, pushdown flag — see
    :mod:`repro.dataset.sources`); ``None`` for plain in-memory tables.
    """

    nodes: List[VisualizationNode]
    order: List[int]
    candidates: int
    valid: int
    timings: Dict[str, float] = field(default_factory=dict)
    cache_stats: Dict[str, int] = field(default_factory=dict)
    provenance: Dict[str, ChartProvenance] = field(default_factory=dict)
    source: Optional[Dict[str, object]] = None
    #: True when this call was answered from the result-level cache
    #: (timings then describe the original computing run) — the
    #: cache-hit signal the SLO monitor's ``cache_hit_rate`` objective
    #: consumes.
    result_cache_hit: bool = False

    @property
    def total_seconds(self) -> float:
        return sum(self.timings.values())

    def phase_fraction(self, phase: str) -> float:
        """Share of end-to-end time spent in one phase (the % annotations
        on the paper's Figure 12 bars).

        When ``total_seconds`` is zero — an empty ``timings`` dict (e.g.
        a result-cache hit before timings were re-derived) or phases too
        fast for the clock's resolution — every fraction is defined as
        0.0 rather than raising ``ZeroDivisionError``; callers can test
        ``total_seconds > 0`` to distinguish "no time recorded" from a
        genuinely instant phase.
        """
        total = self.total_seconds
        return self.timings.get(phase, 0.0) / total if total > 0 else 0.0

    def phases(self) -> List[Tuple[str, float, float]]:
        """Ordered ``(name, seconds, fraction)`` per recorded phase.

        Phases appear in pipeline order (:data:`PHASE_ORDER`) first,
        then any extra recorded timings in insertion order; fractions
        follow the :meth:`phase_fraction` zero-total convention.  This
        is the view the CLI pretty-printer renders.
        """
        ordered = [name for name in PHASE_ORDER if name in self.timings]
        ordered += [name for name in self.timings if name not in PHASE_ORDER]
        return [
            (name, self.timings[name], self.phase_fraction(name))
            for name in ordered
        ]


# ----------------------------------------------------------------------
# Shared pipeline phases (used by select_top_k and the DeepEye facade)
# ----------------------------------------------------------------------
def _enumerate_phase(
    table: Table,
    enumeration: str,
    config: EnumerationConfig,
    recognizer: Optional[VisualizationRecognizer],
    cache,
    n_jobs: int,
    metrics: Optional[MetricsRegistry] = None,
    events: Optional[EventLog] = None,
) -> Tuple[List[VisualizationNode], Optional[List[bool]], PruningCounters]:
    """Candidates, (for the parallel path) their validity mask, and the
    per-rule pruning accounting of the run."""
    source_backed = (
        getattr(table, "pushdown_provider", None) is not None
        or getattr(table, "stream_profile", None) is not None
    )
    if n_jobs > 1 and source_backed:
        # Pushdown providers hold a sqlite connection and stream
        # profiles back per-column features; both live outside the
        # table bytes workers would rebuild contexts from.  Run serial
        # — the database is doing the heavy lifting anyway.
        n_jobs = 1
    if n_jobs > 1:
        # Imported here, not at module level: repro.engine.parallel
        # imports this package's enumeration module, so a top-level
        # import in either direction would be circular.
        from ..engine.parallel import parallel_enumerate

        pruning = PruningCounters()
        nodes, mask = parallel_enumerate(
            table,
            enumeration,
            config,
            n_jobs=n_jobs,
            recognizer=recognizer,
            cache=cache,
            pruning=pruning,
            metrics=metrics,
            events=events,
        )
        return nodes, mask, pruning
    context = context_for(table, config, cache=cache)
    nodes = enumerate_candidates(table, enumeration, config, context)
    return nodes, None, context.pruning


def _recognize_phase(
    candidates: List[VisualizationNode],
    valid_mask: Optional[List[bool]],
    recognizer: Optional[VisualizationRecognizer],
) -> List[VisualizationNode]:
    """Filter candidates to the valid charts, with the shared fallback.

    A filter that rejects everything would return nothing; fall back to
    the unfiltered candidates so selection still surfaces the least-bad
    charts.
    """
    if valid_mask is not None:
        valid_nodes = [n for n, ok in zip(candidates, valid_mask) if ok]
    elif recognizer is not None and candidates:
        valid_nodes = recognizer.filter_valid(candidates)
    else:
        # No trained recognizer: apply the expert validity criterion —
        # a chart whose matching quality M(v) is zero (AVG pies,
        # trendless lines, uncorrelated scatters, singleton bars) is
        # never a valid chart.
        valid_nodes = [
            node for node in candidates if matching_quality_raw(node) > 0
        ]
    return valid_nodes or list(candidates)


def _rank_phase(
    valid_nodes: List[VisualizationNode],
    ranker: Union[str, object],
    ltr: Optional[LearningToRankRanker],
    graph_strategy: str,
    want_trace: bool = False,
) -> Tuple[List[int], Optional[dict]]:
    """Resolve the ranker (name or object with ``.rank``) and apply it.

    Returns ``(order, trace)``; ``trace`` is ``None`` unless
    ``want_trace`` asked for the ranker's decision internals (factor
    triples, S(v) values, LTR scores, hybrid blend) for provenance.
    Each ranker's traced and plain paths share one code path, so the
    order is byte-identical either way.
    """
    if not isinstance(ranker, str):
        if want_trace and hasattr(ranker, "rank_with_trace"):
            order, trace = ranker.rank_with_trace(valid_nodes)
            return order, dict(trace)
        if not hasattr(ranker, "rank"):
            raise SelectionError(
                f"ranker object {ranker!r} has no rank() method"
            )
        return ranker.rank(valid_nodes), None
    if ranker in ("partial_order", "P"):
        po_ranker = PartialOrderRanker(graph_strategy)
        if want_trace:
            order, factors, values = po_ranker.rank_with_trace(valid_nodes)
            return order, {"factors": factors, "po_scores": values}
        return po_ranker.rank(valid_nodes), None
    if ranker in ("learning_to_rank", "L"):
        if ltr is None:
            raise SelectionError(
                "ranker='learning_to_rank' requires a fitted "
                "LearningToRankRanker via the ltr parameter"
            )
        if want_trace:
            scores = ltr.scores(valid_nodes)
            # Exactly LearningToRankRanker.rank's ordering, reusing the
            # scores instead of recomputing them.
            order = sorted(
                range(len(valid_nodes)), key=lambda i: (-scores[i], i)
            )
            return order, {"ltr_scores": [float(s) for s in scores]}
        return ltr.rank(valid_nodes), None
    raise SelectionError(
        f"unknown ranker {ranker!r}; use 'partial_order' or "
        f"'learning_to_rank'"
    )


def _build_provenance(
    valid_nodes: List[VisualizationNode],
    order: List[int],
    k: int,
    trace: Optional[dict],
    recognizer: Optional[VisualizationRecognizer],
    pruning: PruningCounters,
) -> Dict[str, ChartProvenance]:
    """One :class:`ChartProvenance` record per emitted (top-k) chart.

    Built strictly from facts the run already computed where possible:
    the rank trace supplies factor triples / S(v) / LTR scores / hybrid
    positions; dominance edge counts come from the edge-free sweep over
    the same factors; the recognizer re-predicts only the k emitted
    nodes (read-only).  When the ranker traced no factors (a custom
    ranker object) the expert factors are derived for description —
    they did not decide the rank, so ``score`` stays ``None``.
    """
    trace = trace or {}
    records: Dict[str, ChartProvenance] = {}
    top = list(order[:k])
    if not top:
        return records

    factors = trace.get("factors")
    if factors is None:
        factors = PartialOrderScorer().score(valid_nodes)
    po_scores = trace.get("po_scores")
    ltr_scores = trace.get("ltr_scores")
    dominates, dominated_by = dominance_counts_from_factors(factors)

    verdicts = probabilities = None
    if recognizer is not None:
        top_nodes = [valid_nodes[i] for i in top]
        try:
            verdicts = recognizer.predict(top_nodes)
            probabilities = recognizer.probabilities(top_nodes)
        except NotFittedError:
            verdicts = probabilities = None

    for position, index in enumerate(top, start=1):
        chart = valid_nodes[index]
        chart_id = node_id(chart)
        hybrid = None
        if "combined" in trace:
            hybrid = {
                "alpha": float(trace["alpha"]),
                "ltr_position": float(trace["ltr_positions"][index]),
                "po_position": float(trace["po_positions"][index]),
                "combined": float(trace["combined"][index]),
            }
        verdict_info = None
        if verdicts is not None:
            verdict_info = {
                "model": getattr(
                    recognizer, "model_name", type(recognizer).__name__
                ),
                "verdict": bool(verdicts[position - 1]),
            }
            if probabilities is not None:
                verdict_info["probability"] = float(
                    probabilities[position - 1]
                )
        factor = factors[index]
        records[chart_id] = ChartProvenance(
            node_id=chart_id,
            rank=position,
            description=chart.describe(),
            m=float(factor.m),
            q=float(factor.q),
            w=float(factor.w),
            score=(
                float(po_scores[index]) if po_scores is not None else None
            ),
            ltr_score=(
                float(ltr_scores[index]) if ltr_scores is not None else None
            ),
            hybrid=hybrid,
            recognizer=verdict_info,
            dominates=int(dominates[index]),
            dominated_by=int(dominated_by[index]),
            siblings_pruned=dict(pruning.pruned),
            considered=pruning.considered,
            emitted=pruning.emitted,
            request_id=current_request_id(),
        )
    return records


def _flat_cache_stats(cache) -> Dict[str, int]:
    """The flat ``{level_counter: value}`` view results have always
    carried in ``cache_stats``, built from
    :meth:`~repro.engine.cache.MultiLevelCache.stats_by_level` (its
    ``aggregate`` rollup skipped)."""
    return {
        f"{level}_{counter}": value
        for level, counters in cache.stats_by_level().items()
        if level != "aggregate"
        for counter, value in counters.items()
    }


def _result_cache_key(
    table: Table,
    k: int,
    enumeration: str,
    ranker: Union[str, object],
    recognizer: Optional[VisualizationRecognizer],
    ltr: Optional[LearningToRankRanker],
    config: EnumerationConfig,
    graph_strategy: str,
    want_provenance: bool,
) -> tuple:
    """Identity of one selection call, for the result-level cache.

    Keys on the table's *content* fingerprint plus every knob that can
    change the answer.  Execution knobs (``n_jobs``, ``backend``) are
    deliberately excluded — parallel results are identical to serial, so
    they share entries.  Model objects key by identity: a retrained or
    reloaded model is a different object and misses, which is the safe
    direction.  ``want_provenance`` is part of the key even though it
    never changes the ranking: a result cached without provenance
    records must not answer a call that asked for them.
    """
    ranker_token = ranker if isinstance(ranker, str) else ("obj", id(ranker))
    return (
        # cache_fingerprint, not fingerprint: source-backed tables
        # (sqlite pushdown, stream samples) scope their entries away
        # from byte-identical pure in-memory tables.
        table.cache_fingerprint(),
        k,
        enumeration,
        ranker_token,
        None if recognizer is None else id(recognizer),
        None if ltr is None else id(ltr),
        graph_strategy,
        want_provenance,
        config.include_one_column,
        config.orderings,
        config.numeric_bins,
        config.granularities,
        config.correlation_threshold,
        tuple(name for name, _ in config.udfs),
    )


@contextmanager
def _timed_phase(
    tracer: Optional[Tracer], timings: Dict[str, float], name: str
) -> Iterator[Optional[object]]:
    """Run one pipeline phase under a span (when tracing) and record its
    wall-clock into ``timings``.

    With a tracer the timing *is* the span's duration — the ``timings``
    dict is a derived view of the trace, not a second clock; without
    one, a bare ``perf_counter`` pair keeps the fast path free of span
    bookkeeping.
    """
    if tracer is not None:
        with tracer.span(name) as span:
            yield span
        timings[name] = span.duration
    else:
        start = time.perf_counter()
        yield None
        timings[name] = time.perf_counter() - start


def _record_selection_metrics(
    metrics: MetricsRegistry,
    enumeration: str,
    timings: Dict[str, float],
    candidates: int,
    valid: int,
    pruning: PruningCounters,
    cache,
) -> None:
    """Publish one run's accounting into the metrics registry."""
    mode = {"E": "exhaustive", "R": "rules"}.get(enumeration, enumeration)
    metrics.counter(
        "selection_runs_total",
        labels={"enumeration": mode},
        help="select_top_k calls that executed the pipeline",
    ).inc()
    for phase, seconds in timings.items():
        metrics.histogram(
            "selection_phase_seconds",
            labels={"phase": phase},
            help="Wall-clock per pipeline phase",
        ).observe(seconds)
    metrics.histogram(
        "selection_total_seconds",
        help="End-to-end select_top_k wall-clock",
    ).observe(sum(timings.values()))
    metrics.counter(
        "enumeration_candidates_total",
        labels={"mode": mode},
        help="Candidate nodes materialised by enumeration",
    ).inc(candidates)
    metrics.counter(
        "selection_valid_total",
        help="Candidates surviving the recognition phase",
    ).inc(valid)
    metrics.counter(
        "enumeration_considered_total",
        help="Candidate variants examined by enumeration "
        "(emitted + pruned)",
    ).inc(pruning.considered)
    for rule, count in pruning.pruned.items():
        metrics.counter(
            "enumeration_pruned_total",
            labels={"rule": rule},
            help="Candidates eliminated, per decision rule",
        ).inc(count)
    KERNEL_STATS.record_metrics(metrics)
    if cache is not None:
        cache.record_metrics(metrics)


def _request_scoped(fn):
    """Run ``fn`` inside a :func:`~repro.obs.context.request_scope`.

    An enclosing scope (a batch worker's table-level id, a CLI
    invocation's id) is reused; otherwise a fresh id is minted — so
    every selection's spans, events, provenance records, and metric
    exemplars share one ``request_id`` without the call sites having to
    thread it."""

    @functools.wraps(fn)
    def wrapper(*args, **kwargs):
        with request_scope():
            return fn(*args, **kwargs)

    return wrapper


@_request_scoped
def select_top_k(
    table: Table,
    k: int = 10,
    enumeration: str = "rules",
    ranker: Union[str, object] = "partial_order",
    recognizer: Optional[VisualizationRecognizer] = None,
    ltr: Optional[LearningToRankRanker] = None,
    config: EnumerationConfig = EnumerationConfig(),
    graph_strategy: str = "range_tree",
    cache=None,
    n_jobs: Optional[int] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
    events: Optional[EventLog] = None,
    provenance: bool = False,
) -> SelectionResult:
    """Compute the top-k visualizations of a table.

    Parameters mirror the four Figure 12 configurations: ``enumeration``
    in {"exhaustive"/"E", "rules"/"R"} x ``ranker`` in
    {"partial_order"/"P", "learning_to_rank"/"L"}.  A ``ltr`` ranker is
    required for L mode; a ``recognizer`` is optional in both.
    ``ranker`` may also be any object with a ``rank(nodes) -> order``
    method (e.g. a fitted :class:`~repro.core.hybrid.HybridRanker`).

    ``cache`` is an optional :class:`~repro.engine.cache.MultiLevelCache`
    reused across calls; ``n_jobs`` overrides ``config.n_jobs`` for this
    call (1 = serial, -1 = all cores).

    ``tracer`` (an :class:`~repro.obs.Tracer`) records a nested
    ``select_top_k`` > ``enumerate`` / ``recognize`` / ``rank`` span
    tree — ``SelectionResult.timings`` is then derived from those spans;
    ``metrics`` (a :class:`~repro.obs.MetricsRegistry`) accumulates
    phase latency histograms, per-rule pruning counters, and per-level
    cache counters.  Both default to ``None`` = uninstrumented.

    ``events`` (an :class:`~repro.obs.EventLog`) appends the run's
    decision record — request / phase / prune / score / rank / cache
    events — and ``provenance=True`` attaches a per-emitted-chart
    :class:`~repro.obs.ChartProvenance` record to the result (implied
    whenever ``events`` is given, since score events are built from the
    records).  Both are read-only observers: the top-k is byte-identical
    with them on or off.
    """
    if k < 0:
        raise SelectionError(f"k must be non-negative, got {k}")
    jobs = config.n_jobs if n_jobs is None else n_jobs
    if jobs != 1:
        from ..engine.parallel import resolve_n_jobs

        jobs = resolve_n_jobs(jobs)
    want_provenance = provenance or events is not None
    source_info = getattr(table, "source_info", None)

    if events is not None:
        request_fields = dict(
            table=table.name,
            fingerprint=table.fingerprint(),
            k=k,
            enumeration=enumeration,
            ranker=(
                ranker if isinstance(ranker, str) else type(ranker).__name__
            ),
            n_jobs=jobs,
        )
        if source_info is not None:
            # Schema v3: where the table came from (see obs/events.py).
            request_fields["source_kind"] = source_info.get("kind")
            request_fields["source_id"] = source_info.get("id")
            request_fields["source_query"] = source_info.get(
                "query_fingerprint"
            )
            request_fields["source_mode"] = source_info.get("mode")
        events.begin_request(**request_fields)

    # Result entries may persist to the disk tier only when every key
    # component is stable across processes: model objects key by id(),
    # which is meaningless in the next process, so model-bearing calls
    # stay memory-only (transform/feature levels persist regardless —
    # their keys are pure content fingerprints + AST fragments).
    disk_stable = (
        isinstance(ranker, str) and recognizer is None and ltr is None
    )
    if cache is not None:
        key = _result_cache_key(
            table, k, enumeration, ranker, recognizer, ltr, config,
            graph_strategy, want_provenance,
        )
        if disk_stable and hasattr(cache, "fetch"):
            hit = cache.fetch("results", key)
        else:
            hit = cache.results.get(key)
        if hit is not None:
            with maybe_span(
                tracer, "select_top_k", table=table.name, k=k,
                result_cache_hit=True,
            ):
                pass
            if metrics is not None:
                metrics.counter(
                    "selection_result_cache_hits_total",
                    help="select_top_k calls answered from the result cache",
                ).inc()
                cache.record_metrics(metrics)
            if events is not None:
                events.emit(
                    "cache", table=table.name, result_cache_hit=True,
                )
                events.emit(
                    "rank", table=table.name, k=k,
                    chart_ids=[node_id(n) for n in hit.nodes],
                    result_cache_hit=True,
                )
            return dataclasses.replace(
                hit,
                timings=dict(hit.timings),
                cache_stats=_flat_cache_stats(cache),
                provenance=dict(hit.provenance),
                result_cache_hit=True,
            )

    timings: Dict[str, float] = {}
    if metrics is not None:
        # Stream per-call kernel_seconds histogram samples into the
        # caller's registry for the duration of this run.
        KERNEL_STATS.attach(metrics)
    try:
        with maybe_span(
            tracer,
            "select_top_k",
            table=table.name,
            k=k,
            enumeration=enumeration,
            n_jobs=jobs,
            search_space=search_space_size(
                table.num_columns, config.include_one_column
            ),
        ) as root:
            kernels_before = (
                KERNEL_STATS.snapshot() if tracer is not None else None
            )
            with _timed_phase(tracer, timings, "enumerate") as span:
                candidates, valid_mask, pruning = _enumerate_phase(
                    table, enumeration, config, recognizer, cache, jobs,
                    metrics, events,
                )
                if span is not None:
                    span.add("candidates", len(candidates))
                    span.add("considered", pruning.considered)
                    for rule, count in pruning.pruned.items():
                        span.add(f"pruned.{rule}", count)
                    # Split the phase wall-clock into kernel vs. the
                    # rest (aggregation dispatch, feature extraction,
                    # node assembly): one attribute pair per kernel
                    # that did work during this phase.
                    kernel_delta = KERNEL_STATS.delta_since(kernels_before)
                    for name, delta in sorted(kernel_delta.items()):
                        span.set(f"kernel.{name}.calls", int(delta["calls"]))
                        span.set(f"kernel.{name}.seconds", delta["seconds"])
            if events is not None:
                events.emit(
                    "phase", phase="enumerate", table=table.name,
                    seconds=timings["enumerate"],
                    candidates=len(candidates),
                    considered=pruning.considered,
                    emitted=pruning.emitted,
                )
                for rule, count in sorted(pruning.pruned.items()):
                    events.emit(
                        "prune", table=table.name, rule=rule, count=count,
                    )

            with _timed_phase(tracer, timings, "recognize") as span:
                valid_nodes = _recognize_phase(
                    candidates, valid_mask, recognizer
                )
                if span is not None:
                    span.add("valid", len(valid_nodes))
            if events is not None:
                events.emit(
                    "phase", phase="recognize", table=table.name,
                    seconds=timings["recognize"], valid=len(valid_nodes),
                )

            with _timed_phase(tracer, timings, "rank") as span:
                order, rank_trace = _rank_phase(
                    valid_nodes, ranker, ltr, graph_strategy,
                    want_trace=want_provenance,
                )
                if span is not None:
                    span.add("ranked", len(order))
            if events is not None:
                events.emit(
                    "phase", phase="rank", table=table.name,
                    seconds=timings["rank"], ranked=len(order),
                )

            if root is not None:
                root.set("candidates", len(candidates))
                root.set("valid", len(valid_nodes))
    except Exception as exc:
        if events is not None:
            events.emit(
                "error", table=table.name,
                error=f"{type(exc).__name__}: {exc}",
            )
        raise
    finally:
        if metrics is not None:
            KERNEL_STATS.detach(metrics)

    if metrics is not None:
        _record_selection_metrics(
            metrics, enumeration, timings, len(candidates),
            len(valid_nodes), pruning, cache,
        )
        provider = getattr(table, "pushdown_provider", None)
        if provider is not None:
            provider.record_metrics(metrics)

    top = [valid_nodes[i] for i in order[:k]]
    provenance_records = (
        _build_provenance(
            valid_nodes, order, k, rank_trace, recognizer, pruning
        )
        if want_provenance
        else {}
    )
    result = SelectionResult(
        nodes=top,
        order=order,
        candidates=len(candidates),
        valid=len(valid_nodes),
        timings=timings,
        cache_stats=_flat_cache_stats(cache) if cache is not None else {},
        provenance=provenance_records,
        source=dict(source_info) if source_info is not None else None,
    )
    if events is not None:
        for record in sorted(
            provenance_records.values(), key=lambda r: r.rank
        ):
            fields = {"node_id": record.node_id, "rank": record.rank}
            for name in ("m", "q", "w", "score", "ltr_score"):
                value = getattr(record, name)
                if value is not None:
                    fields[name] = value
            events.emit("score", table=table.name, **fields)
        events.emit(
            "rank", table=table.name, k=k,
            chart_ids=[node_id(n) for n in top],
        )
        if cache is not None:
            cache.emit_events(events, table=table.name)
    if cache is not None:
        if hasattr(cache, "store"):
            cache.store("results", key, result, disk=disk_stable)
        else:
            cache.results.put(key, result)
    return result
