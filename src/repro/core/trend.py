"""Trend detection Trend(Y) — Eq. (4) of Section IV-B.

A line chart is worth drawing when the y series "follows a distribution,
e.g., linear distribution, power law distribution, log distribution or
exponential distribution"; otherwise the chart shows noise (the paper's
Figure 1(d)).  We fit each family against the point index (the x order
of the chart), measure goodness of fit by R², and declare a trend when
the best family's R² clears a threshold.

Fits are all reduced to ordinary least squares on transformed axes:

* linear:        y   ~ a * t + b
* logarithmic:   y   ~ a * ln(t) + b           (t >= 1)
* exponential:   ln y ~ a * t + b              (y > 0)
* power law:     ln y ~ a * ln(t) + b          (y > 0, t >= 1)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

__all__ = [
    "TrendResult",
    "fit_trend",
    "trend",
    "smoothness",
    "TREND_FAMILIES",
    "EXTENDED_TREND_FAMILIES",
    "DEFAULT_R2_THRESHOLD",
]

TREND_FAMILIES = ("linear", "log", "exponential", "power")

#: TREND_FAMILIES plus "smooth": structured-but-non-monotone series
#: (the paper's Figure 1(c) hourly seasonality) score on lag-1
#: autocorrelation instead of a monotone fit.  Opt-in because the
#: paper's Eq. 4 names only the four monotone families.
EXTENDED_TREND_FAMILIES = TREND_FAMILIES + ("smooth",)

#: Minimum R² of the best family to declare "follows a distribution".
DEFAULT_R2_THRESHOLD = 0.75


@dataclass(frozen=True)
class TrendResult:
    """Best-fitting trend family for a series and its R² per family."""

    has_trend: bool
    family: Optional[str]
    r_squared: float
    per_family: Dict[str, float]


def _r_squared_linear(t: np.ndarray, y: np.ndarray) -> float:
    """R² of the OLS line ``y ~ a t + b``; 0 when y is constant."""
    if len(t) < 3:
        return 0.0
    y_var = np.var(y)
    if y_var <= 1e-12:
        # A constant series trivially follows a (flat) linear trend.
        return 1.0
    t_var = np.var(t)
    if t_var <= 1e-12:
        return 0.0
    slope = np.cov(t, y, bias=True)[0, 1] / t_var
    intercept = y.mean() - slope * t.mean()
    residual = y - (slope * t + intercept)
    return float(max(0.0, 1.0 - np.var(residual) / y_var))


def smoothness(y: Sequence[float]) -> float:
    """Lag-1 autocorrelation clipped to [0, 1].

    A smooth curve (seasonal delays by hour, Figure 1(c)) has strongly
    positive lag-1 autocorrelation; white noise (delays by date, Figure
    1(d)) sits near zero.  This is the "smooth" trend family's score.
    """
    y = np.asarray(y, dtype=np.float64)
    y = y[np.isfinite(y)]
    if len(y) < 4:
        return 0.0
    centred = y - y.mean()
    denominator = float((centred**2).sum())
    if denominator <= 1e-12:
        return 1.0  # constant series: perfectly smooth
    lag1 = float((centred[:-1] * centred[1:]).sum()) / denominator
    return max(0.0, min(1.0, lag1))


def fit_trend(
    y: Sequence[float],
    families: Sequence[str] = TREND_FAMILIES,
    r2_threshold: float = DEFAULT_R2_THRESHOLD,
) -> TrendResult:
    """Fit each trend family to the series and pick the best.

    The independent variable is the 1-based point index, matching a line
    chart whose x-axis is already ordered.
    """
    y = np.asarray(y, dtype=np.float64)
    y = y[np.isfinite(y)]
    if len(y) < 3:
        return TrendResult(False, None, 0.0, {})
    t = np.arange(1, len(y) + 1, dtype=np.float64)

    scores: Dict[str, float] = {}
    if "linear" in families:
        scores["linear"] = _r_squared_linear(t, y)
    if "log" in families:
        scores["log"] = _r_squared_linear(np.log(t), y)
    if (y > 0).all():
        log_y = np.log(y)
        if "exponential" in families:
            scores["exponential"] = _r_squared_linear(t, log_y)
        if "power" in families:
            scores["power"] = _r_squared_linear(np.log(t), log_y)
    if "smooth" in families:
        scores["smooth"] = smoothness(y)

    if not scores:
        return TrendResult(False, None, 0.0, {})
    best = max(scores, key=scores.get)
    best_r2 = scores[best]
    return TrendResult(best_r2 >= r2_threshold, best, best_r2, scores)


def trend(y: Sequence[float], r2_threshold: float = DEFAULT_R2_THRESHOLD) -> float:
    """Trend(Y) per Eq. (4): 1.0 when Y follows a distribution, else 0.0."""
    return 1.0 if fit_trend(y, r2_threshold=r2_threshold).has_trend else 0.0
