"""Synthetic corpus: dataset generators, perception oracle, use cases."""

from .aggregation import (
    aggregate_comparisons,
    borda_scores,
    bradley_terry_scores,
    copeland_scores,
    grades_from_scores,
)
from .crowd_topk import crowd_top_k, majority_vote, noisy_max, oracle_comparator
from .workers import Judgement, WorkerPool, estimate_worker_quality, weighted_merge
from .benchmark import (
    AnnotatedTable,
    CorpusConfig,
    annotate_table,
    build_corpus,
    build_training_examples,
    corpus_statistics,
)
from .generators import (
    TESTING_SPECS,
    TRAINING_SPECS,
    corpus_tables,
    make_table,
    testing_tables,
    training_tables,
)
from .labeling import PerceptionOracle, TableAnnotation
from .usecases import USECASE_SPECS, UseCase, chart_key, coverage_k, use_cases

__all__ = [
    "aggregate_comparisons",
    "borda_scores",
    "bradley_terry_scores",
    "copeland_scores",
    "grades_from_scores",
    "crowd_top_k",
    "majority_vote",
    "noisy_max",
    "oracle_comparator",
    "Judgement",
    "WorkerPool",
    "estimate_worker_quality",
    "weighted_merge",
    "AnnotatedTable",
    "CorpusConfig",
    "annotate_table",
    "build_corpus",
    "build_training_examples",
    "corpus_statistics",
    "TESTING_SPECS",
    "TRAINING_SPECS",
    "corpus_tables",
    "make_table",
    "testing_tables",
    "training_tables",
    "PerceptionOracle",
    "TableAnnotation",
    "USECASE_SPECS",
    "UseCase",
    "chart_key",
    "coverage_k",
    "use_cases",
]
