"""Crowd rank aggregation: merging pairwise comparisons into an order.

The paper's ground truth merges 285,236 pairwise judgements into a
per-table total order, citing crowdsourced top-k computation [16, 17].
This module implements three standard aggregators over "i beat j"
tuples so the corpus can derive graded relevance the same way:

* **Borda** — each win scores a point; rank by win share.
* **Copeland** — rank by (majority wins − majority losses) over pairs.
* **Bradley-Terry** — fit latent strengths theta maximising the
  likelihood P(i beats j) = theta_i / (theta_i + theta_j) via the
  classic MM iteration; the closest to how a rating-based merge works.

All three return scores (higher = better) over item indices 0..n-1.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import ReproError

__all__ = [
    "borda_scores",
    "copeland_scores",
    "bradley_terry_scores",
    "aggregate_comparisons",
    "grades_from_scores",
]

Comparison = Tuple[int, int]  # (winner, loser)


def _validate(comparisons: Sequence[Comparison], n_items: int) -> None:
    for winner, loser in comparisons:
        if not (0 <= winner < n_items and 0 <= loser < n_items):
            raise ReproError(
                f"comparison ({winner}, {loser}) out of range for "
                f"{n_items} items"
            )
        if winner == loser:
            raise ReproError(f"self-comparison ({winner}, {winner})")


def borda_scores(comparisons: Sequence[Comparison], n_items: int) -> np.ndarray:
    """Win share per item (wins / appearances); 0 for unseen items."""
    _validate(comparisons, n_items)
    wins = np.zeros(n_items)
    seen = np.zeros(n_items)
    for winner, loser in comparisons:
        wins[winner] += 1
        seen[winner] += 1
        seen[loser] += 1
    with np.errstate(invalid="ignore"):
        shares = np.where(seen > 0, wins / np.maximum(seen, 1), 0.0)
    return shares


def copeland_scores(comparisons: Sequence[Comparison], n_items: int) -> np.ndarray:
    """Majority-rule pairwise wins minus losses, normalised to [0, 1]."""
    _validate(comparisons, n_items)
    margin: Counter = Counter()
    for winner, loser in comparisons:
        margin[(winner, loser)] += 1
    pairs = {(min(i, j), max(i, j)) for i, j in margin}
    score = np.zeros(n_items)
    for i, j in pairs:
        forward = margin.get((i, j), 0)
        backward = margin.get((j, i), 0)
        if forward > backward:
            score[i] += 1
            score[j] -= 1
        elif backward > forward:
            score[j] += 1
            score[i] -= 1
    if n_items > 1:
        score = (score + (n_items - 1)) / (2 * (n_items - 1))
    return score


def bradley_terry_scores(
    comparisons: Sequence[Comparison],
    n_items: int,
    iterations: int = 100,
    tolerance: float = 1e-8,
    prior: float = 0.1,
) -> np.ndarray:
    """MM-fitted Bradley-Terry strengths, normalised to mean 1.

    ``prior`` adds a small symmetric pseudo-count per ordered pair that
    was actually compared, which regularises items that never lose (or
    never win) so the iteration converges.
    """
    _validate(comparisons, n_items)
    wins: Counter = Counter()
    for winner, loser in comparisons:
        wins[(winner, loser)] += 1
    if prior > 0:
        for i, j in list(wins):
            wins[(j, i)] += prior

    # w[i] = total wins of i; pair_totals[(i, j)] = games between i, j.
    total_wins = np.zeros(n_items)
    opponents: Dict[int, List[Tuple[int, float]]] = {i: [] for i in range(n_items)}
    pair_games: Counter = Counter()
    for (i, j), count in wins.items():
        total_wins[i] += count
        pair_games[(min(i, j), max(i, j))] += count
    for (i, j), games in pair_games.items():
        opponents[i].append((j, games))
        opponents[j].append((i, games))

    theta = np.ones(n_items)
    for _ in range(iterations):
        updated = np.empty(n_items)
        for i in range(n_items):
            if not opponents[i] or total_wins[i] <= 0:
                updated[i] = theta[i] * 0.5  # decays toward the bottom
                continue
            denominator = sum(
                games / (theta[i] + theta[j]) for j, games in opponents[i]
            )
            updated[i] = total_wins[i] / denominator if denominator > 0 else theta[i]
        updated *= n_items / updated.sum()
        if np.max(np.abs(updated - theta)) < tolerance:
            theta = updated
            break
        theta = updated
    return theta


_AGGREGATORS = {
    "borda": borda_scores,
    "copeland": copeland_scores,
    "bradley_terry": bradley_terry_scores,
}


def aggregate_comparisons(
    comparisons: Sequence[Comparison], n_items: int, method: str = "bradley_terry"
) -> np.ndarray:
    """Merge comparisons into per-item scores with the chosen method."""
    try:
        aggregator = _AGGREGATORS[method]
    except KeyError:
        raise ReproError(
            f"unknown aggregation method {method!r}; "
            f"choose from {sorted(_AGGREGATORS)}"
        ) from None
    return aggregator(comparisons, n_items)


def grades_from_scores(
    scores: Sequence[float], participants: Sequence[int], max_grade: int = 4
) -> List[float]:
    """Quantise aggregated scores into 1..max_grade for participants
    (items that appeared in comparisons); everything else grades 0.

    Matches how the corpus turns a merged total order into LambdaMART
    relevance grades: the best quantile of compared items gets the top
    grade.
    """
    grades = [0.0] * len(scores)
    participants = list(participants)
    if not participants:
        return grades
    order = sorted(participants, key=lambda i: -scores[i])
    bucket = max(1, int(np.ceil(len(order) / max_grade)))
    for position, item in enumerate(order):
        grades[item] = float(max_grade - min(max_grade - 1, position // bucket))
    return grades
