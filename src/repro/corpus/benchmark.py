"""Corpus assembly: enumerate, annotate, and package training data.

Glues the synthetic tables (:mod:`repro.corpus.generators`) to the
perception oracle (:mod:`repro.corpus.labeling`) and produces the
:class:`~repro.core.pipeline.TrainingExample` lists the experiments
consume, plus the Table III-style corpus statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.enumeration import EnumerationConfig, enumerate_candidates
from ..language.ast import AggregateOp
from ..core.nodes import VisualizationNode
from ..core.pipeline import TrainingExample
from ..dataset.stats import table_stats
from ..dataset.table import Table
from .generators import testing_tables, training_tables
from .labeling import PerceptionOracle, TableAnnotation

__all__ = [
    "CorpusConfig",
    "AnnotatedTable",
    "annotate_table",
    "build_corpus",
    "build_training_examples",
    "corpus_statistics",
]


@dataclass(frozen=True)
class CorpusConfig:
    """Knobs for corpus construction.

    ``scale`` shrinks every table's row count (tests use small scales);
    ``enumeration_mode`` is "exhaustive" for labelling — the paper
    enumerated *all* candidates for annotation — with ``orderings=
    "none"`` since good/bad judgements don't depend on sort order;
    ``max_nodes_per_table`` caps the labelled candidates per table
    (keeping every good chart, subsampling bad ones) so model training
    stays tractable.
    """

    scale: float = 1.0
    seed: int = 0
    enumeration_mode: str = "exhaustive"
    orderings: str = "none"
    include_one_column: bool = True
    max_nodes_per_table: Optional[int] = 400
    #: Drop two-column CNT candidates before labelling: CNT(Y) counts
    #: rows per bucket regardless of Y, so those charts are exact
    #: duplicates of the one-column histogram and would be labelled (and
    #: counted) many times over.
    dedupe_cnt: bool = True

    def enumeration_config(self) -> EnumerationConfig:
        """The enumeration view of this corpus configuration."""
        return EnumerationConfig(
            include_one_column=self.include_one_column,
            orderings=self.orderings,
        )


@dataclass
class AnnotatedTable:
    """One table with its (possibly subsampled) labelled candidates."""

    table: Table
    nodes: List[VisualizationNode]
    annotation: TableAnnotation

    @property
    def name(self) -> str:
        return self.table.name

    def to_training_example(self) -> TrainingExample:
        """Repackage as a pipeline-consumable training example."""
        return TrainingExample(
            table_name=self.table.name,
            nodes=list(self.nodes),
            labels=list(self.annotation.labels),
            relevance=list(self.annotation.relevance),
        )


def _subsample(
    nodes: List[VisualizationNode],
    annotation: TableAnnotation,
    cap: int,
    seed: int,
) -> List[int]:
    """Indices to keep: all good charts plus bad ones up to the cap."""
    good = [i for i, ok in enumerate(annotation.labels) if ok]
    bad = [i for i, ok in enumerate(annotation.labels) if not ok]
    budget_bad = max(0, cap - len(good))
    if len(bad) > budget_bad:
        rng = np.random.default_rng(seed)
        bad = list(rng.choice(bad, size=budget_bad, replace=False))
    keep = sorted(good + bad)
    return keep


def annotate_table(
    table: Table,
    oracle: PerceptionOracle,
    config: CorpusConfig = CorpusConfig(),
) -> AnnotatedTable:
    """Enumerate a table's candidates and label them with the oracle."""
    nodes = enumerate_candidates(
        table, config.enumeration_mode, config.enumeration_config()
    )
    if config.dedupe_cnt:
        nodes = [
            node
            for node in nodes
            if not (
                node.query.aggregate is AggregateOp.CNT
                and node.query.x != node.query.y
            )
        ]
    annotation = oracle.annotate(nodes)
    if config.max_nodes_per_table is not None and len(nodes) > config.max_nodes_per_table:
        keep = _subsample(
            nodes, annotation, config.max_nodes_per_table, config.seed
        )
        nodes = [nodes[i] for i in keep]
        annotation = TableAnnotation(
            labels=[annotation.labels[i] for i in keep],
            relevance=[annotation.relevance[i] for i in keep],
            scores=[annotation.scores[i] for i in keep],
        )
    return AnnotatedTable(table=table, nodes=nodes, annotation=annotation)


def build_corpus(
    tables: Sequence[Table],
    oracle: Optional[PerceptionOracle] = None,
    config: CorpusConfig = CorpusConfig(),
) -> List[AnnotatedTable]:
    """Annotate a list of tables (defaults to a fresh oracle)."""
    oracle = oracle or PerceptionOracle(seed=config.seed)
    return [annotate_table(table, oracle, config) for table in tables]


def build_training_examples(
    annotated: Sequence[AnnotatedTable],
) -> List[TrainingExample]:
    """Convert annotated tables into pipeline training examples."""
    return [item.to_training_example() for item in annotated]


def corpus_statistics(annotated: Sequence[AnnotatedTable]) -> Dict[str, object]:
    """Aggregate statistics in the shape of the paper's Tables III/IV."""
    per_table = []
    total_good = total_bad = total_pairs = 0
    for item in annotated:
        stats = table_stats(item.table)
        good = item.annotation.num_good
        bad = item.annotation.num_bad
        total_good += good
        total_bad += bad
        # k good charts yield k(k-1)/2 rankings per table (Section VI).
        total_pairs += good * (good - 1) // 2
        row = stats.as_row()
        row["#-charts"] = good
        per_table.append(row)
    tuples = [row["#-tuples"] for row in per_table]
    return {
        "tables": per_table,
        "num_datasets": len(per_table),
        "tuples_min": min(tuples) if tuples else 0,
        "tuples_max": max(tuples) if tuples else 0,
        "tuples_avg": float(np.mean(tuples)) if tuples else 0.0,
        "columns_min": min(r["#-columns"] for r in per_table) if per_table else 0,
        "columns_max": max(r["#-columns"] for r in per_table) if per_table else 0,
        "good_charts": total_good,
        "bad_charts": total_bad,
        "comparisons": total_pairs,
    }
