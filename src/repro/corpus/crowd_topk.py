"""Crowdsourced top-k computation under noisy comparisons.

The paper's ground-truth pipeline cites crowdsourced top-k algorithms
[16, 17]: given items that can only be compared by asking (unreliable)
workers "which is better?", find the k best while controlling the
number of questions.  Two classic strategies live here:

* :func:`noisy_max` — a single-elimination tournament where each match
  is decided by the majority of ``rounds`` repeated worker judgements;
  O(n · rounds) questions per maximum.
* :func:`crowd_top_k` — k successive tournaments with the winner
  removed, the standard reduction from top-k to max-finding.

The comparator abstraction lets the corpus plug in the perception
oracle's noisy pairwise judgements, so experiments can study label
budget vs. top-k accuracy.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError

__all__ = ["majority_vote", "noisy_max", "crowd_top_k", "oracle_comparator"]

#: A comparator answers "is item i better than item j?" — noisily.
Comparator = Callable[[int, int], bool]


def majority_vote(
    comparator: Comparator, i: int, j: int, rounds: int
) -> Tuple[bool, int]:
    """Decide a match by majority over ``rounds`` judgements.

    Returns ``(i wins, questions asked)``.  Stops early once the
    majority is mathematically decided (a 3-0 lead in 5 rounds ends it).
    """
    if rounds < 1:
        raise ReproError(f"rounds must be >= 1, got {rounds}")
    wins_i = wins_j = asked = 0
    needed = rounds // 2 + 1
    while wins_i < needed and wins_j < needed:
        asked += 1
        if comparator(i, j):
            wins_i += 1
        else:
            wins_j += 1
    return wins_i >= needed, asked


def noisy_max(
    items: Sequence[int],
    comparator: Comparator,
    rounds: int = 5,
) -> Tuple[int, int]:
    """Single-elimination tournament; returns (winner, questions asked).

    With per-question accuracy p > 1/2, majority-of-``rounds`` matches
    boost per-match accuracy toward 1, so the true maximum survives the
    log2(n) rounds with high probability.
    """
    if not items:
        raise ReproError("noisy_max needs at least one item")
    survivors = list(items)
    questions = 0
    while len(survivors) > 1:
        next_round: List[int] = []
        for position in range(0, len(survivors) - 1, 2):
            i, j = survivors[position], survivors[position + 1]
            i_wins, asked = majority_vote(comparator, i, j, rounds)
            questions += asked
            next_round.append(i if i_wins else j)
        if len(survivors) % 2 == 1:
            next_round.append(survivors[-1])  # bye
        survivors = next_round
    return survivors[0], questions


def crowd_top_k(
    items: Sequence[int],
    comparator: Comparator,
    k: int,
    rounds: int = 5,
) -> Tuple[List[int], int]:
    """The k best items, best first, via k winner-removed tournaments.

    Returns ``(top_k, total questions)``.  Question complexity is
    O(k · n · rounds) — the baseline the smarter heap-based schemes in
    [16] improve on, and the right reference point for budget studies.
    """
    if k < 0:
        raise ReproError(f"k must be non-negative, got {k}")
    pool = list(items)
    result: List[int] = []
    total_questions = 0
    while pool and len(result) < k:
        winner, asked = noisy_max(pool, comparator, rounds)
        total_questions += asked
        result.append(winner)
        pool.remove(winner)
    return result, total_questions


def oracle_comparator(
    scores: Sequence[float],
    accuracy_scale: float = 0.05,
    seed: int = 0,
) -> Comparator:
    """A Bradley-Terry-style worker over latent item scores.

    P(i judged better than j) = sigmoid((score_i - score_j) / scale):
    close items get noisy answers, clear gaps get reliable ones —
    matching how the perception oracle samples student judgements.
    """
    scores = np.asarray(scores, dtype=np.float64)
    rng = np.random.default_rng(seed)

    def compare(i: int, j: int) -> bool:
        delta = (scores[i] - scores[j]) / max(accuracy_scale, 1e-9)
        probability = 1.0 / (1.0 + np.exp(-np.clip(delta, -60, 60)))
        return bool(rng.random() < probability)

    return compare
