"""Synthetic reconstructions of the paper's 42-dataset corpus.

Table IV's ten testing datasets (X1-X10) are rebuilt by name with the
published row/column counts; 32 training datasets across the same
domains (real estate, social study, transportation, ...) mirror Table
III's statistics.  Each generator is a pure function of a seeded RNG, so
the whole corpus is reproducible byte-for-byte.

Every generator deliberately plants the structures the paper's system
is supposed to find: grouped part-to-whole splits for pie charts,
bounded category sets for bars, seasonal/trending series for lines, and
correlated numeric pairs for scatters — alongside plenty of noise
columns that should *not* chart well.
"""

from __future__ import annotations

import datetime as _dt
import zlib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..dataset.column import ColumnType
from ..dataset.table import Table
from . import samplers as S

__all__ = [
    "DatasetSpec",
    "TESTING_SPECS",
    "TRAINING_SPECS",
    "make_table",
    "testing_tables",
    "training_tables",
    "corpus_tables",
]


@dataclass(frozen=True)
class DatasetSpec:
    """A named dataset generator with its canonical row count."""

    name: str
    builder: Callable[[np.random.Generator, int], Table]
    rows: int
    domain: str


def _scaled(rows: int, scale: float) -> int:
    return max(20, int(round(rows * scale)))


# ----------------------------------------------------------------------
# The ten testing datasets (Table IV)
# ----------------------------------------------------------------------
def build_hollywood(rng: np.random.Generator, n: int) -> Table:
    """X1: films with budgets, grosses and scores (75 x 8)."""
    genres = ["Comedy", "Drama", "Action", "Romance", "Animation", "Horror"]
    studios = ["Fox", "Universal", "Warner", "Disney", "Paramount", "Sony", "Independent"]
    budget = S.lognormal(rng, 3.3, 0.8, n)
    gross = S.correlated_with(rng, budget, slope=2.4, noise=budget.std())
    data = {
        "film": S.names_like(rng, n),
        "genre": S.weighted_categories(rng, genres, [30, 25, 20, 12, 8, 5], n),
        "studio": S.categories(rng, studios, n),
        "year": S.years(rng, 2007, 2011, n),
        "budget_musd": np.round(budget, 1),
        "worldwide_gross_musd": np.round(np.clip(gross, 0.5, None), 1),
        "audience_score": S.integers(rng, 30, 96, n),
        "profitability": np.round(np.clip(gross, 0.5, None) / np.maximum(budget, 1.0), 2),
    }
    return Table.from_dict("Hollywood's Stories", data)


def build_visitor_arrivals(rng: np.random.Generator, n: int) -> Table:
    """X2: monthly foreign visitor arrivals by nationality (172 x 4)."""
    nationalities = ["Japan", "Korea", "USA", "Russia", "Germany", "France", "UK", "Others"]
    months = S.dates(rng, _dt.date(2009, 1, 1), 365 * 4, n)
    arrivals = S.seasonal(rng, n, period=12.0, amplitude=12000, baseline=45000, noise=4000)
    data = {
        "month": months,
        "nationality": S.weighted_categories(
            rng, nationalities, [28, 22, 14, 10, 8, 7, 6, 5], n
        ),
        "arrivals": np.round(np.clip(arrivals, 500, None)),
        "growth_pct": np.round(rng.normal(4.0, 9.0, n), 1),
    }
    return Table.from_dict("Foreign Visitor Arrivals", data)


def build_menu(rng: np.random.Generator, n: int) -> Table:
    """X3: fast-food menu nutrition (263 x 23, heavily correlated)."""
    cats = ["Breakfast", "Beef & Pork", "Chicken & Fish", "Salads",
            "Snacks & Sides", "Desserts", "Beverages", "Coffee & Tea", "Smoothies"]
    fat = np.clip(S.gaussian(rng, 13, 9, n), 0, None)
    carbs = np.clip(S.gaussian(rng, 47, 25, n), 0, None)
    protein = np.clip(S.gaussian(rng, 14, 10, n), 0, None)
    calories = np.round(9 * fat + 4 * carbs + 4 * protein + rng.normal(0, 20, n))
    sodium = np.clip(S.correlated_with(rng, fat, 55, 120, 160), 0, None)
    sat_fat = np.clip(S.correlated_with(rng, fat, 0.35, 0, 1.5), 0, None)
    sugar = np.clip(S.correlated_with(rng, carbs, 0.45, -5, 8), 0, None)
    data = {
        "item": S.names_like(rng, n, prefix="Mc"),
        "category": S.categories(rng, cats, n),
        "serving_size_g": np.round(np.clip(S.gaussian(rng, 220, 90, n), 30, None)),
        "calories": np.clip(calories, 0, None),
        "calories_from_fat": np.round(9 * fat),
        "total_fat_g": np.round(fat, 1),
        "saturated_fat_g": np.round(sat_fat, 1),
        "trans_fat_g": np.round(np.clip(S.gaussian(rng, 0.2, 0.4, n), 0, None), 1),
        "cholesterol_mg": np.round(np.clip(S.correlated_with(rng, protein, 3.2, 5, 25), 0, None)),
        "sodium_mg": np.round(sodium),
        "carbohydrates_g": np.round(carbs, 1),
        "dietary_fiber_g": np.round(np.clip(S.gaussian(rng, 2.5, 2.0, n), 0, None), 1),
        "sugars_g": np.round(sugar, 1),
        "protein_g": np.round(protein, 1),
        "vitamin_a_dv": S.integers(rng, 0, 100, n),
        "vitamin_c_dv": S.integers(rng, 0, 100, n),
        "calcium_dv": S.integers(rng, 0, 50, n),
        "iron_dv": S.integers(rng, 0, 40, n),
        "caffeine_mg": np.round(np.clip(S.gaussian(rng, 40, 60, n), 0, None)),
        "price_usd": np.round(np.clip(S.correlated_with(rng, calories, 0.004, 1.2, 0.8), 0.5, None), 2),
        "popularity_rank": S.integers(rng, 1, n, n),
        "is_limited": S.weighted_categories(rng, ["yes", "no"], [1, 6], n),
        "added_year": S.years(rng, 1990, 2015, n),
    }
    return Table.from_dict("McDonald's Menu", data)


def build_happiness(rng: np.random.Generator, n: int) -> Table:
    """X4: world happiness report (316 x 12)."""
    regions = ["Western Europe", "North America", "Latin America", "East Asia",
               "Southeast Asia", "Middle East", "Sub-Saharan Africa", "CEE"]
    gdp = np.clip(S.gaussian(rng, 0.9, 0.4, n), 0.01, 1.9)
    family = np.clip(S.correlated_with(rng, gdp, 0.5, 0.4, 0.18), 0, 1.4)
    health = np.clip(S.correlated_with(rng, gdp, 0.45, 0.15, 0.12), 0, 1.1)
    score = np.clip(2.0 + 1.8 * gdp + 0.9 * family + 1.1 * health
                    + rng.normal(0, 0.35, n), 2.0, 8.0)
    rank = (np.argsort(np.argsort(-score)) + 1).astype(np.float64)
    data = {
        "country": S.names_like(rng, n),
        "region": S.categories(rng, regions, n),
        "year": S.years(rng, 2015, 2017, n),
        "happiness_rank": rank,
        "happiness_score": np.round(score, 3),
        "gdp_per_capita": np.round(gdp, 3),
        "family": np.round(family, 3),
        "life_expectancy": np.round(health, 3),
        "freedom": np.round(np.clip(S.gaussian(rng, 0.4, 0.15, n), 0, 0.7), 3),
        "trust_gov": np.round(np.clip(S.gaussian(rng, 0.14, 0.1, n), 0, 0.55), 3),
        "generosity": np.round(np.clip(S.gaussian(rng, 0.24, 0.12, n), 0, 0.8), 3),
        "dystopia_residual": np.round(np.clip(S.gaussian(rng, 2.1, 0.55, n), 0.3, 3.8), 3),
    }
    return Table.from_dict("Happiness Rank", data)


def build_zhvi(rng: np.random.Generator, n: int) -> Table:
    """X5: home-value index summary (1,749 x 13)."""
    states = ["CA", "TX", "NY", "FL", "WA", "IL", "MA", "CO", "GA", "AZ", "OR", "NC"]
    zhvi = S.lognormal(rng, 12.2, 0.5, n)
    # Region names repeat across rows (metro areas recur by month).
    region_pool = S.names_like(rng, max(25, n // 12))
    data = {
        "region": S.categories(rng, region_pool, n),
        "state": S.categories(rng, states, n),
        "size_rank": S.integers(rng, 1, max(30, n // 10), n),
        "month": S.dates(rng, _dt.date(2010, 1, 1), 365 * 7, n),
        "zhvi_usd": np.round(zhvi),
        "mom_pct": np.round(rng.normal(0.4, 0.5, n), 2),
        "qoq_pct": np.round(rng.normal(1.2, 1.2, n), 2),
        "yoy_pct": np.round(rng.normal(5.0, 3.5, n), 2),
        "peak_zhvi_usd": np.round(S.correlated_with(rng, zhvi, 1.12, 0, zhvi.std() * 0.1)),
        "pct_from_peak": np.round(np.clip(rng.normal(-6, 5, n), -35, 0), 1),
        "median_rent_usd": np.round(np.clip(S.correlated_with(rng, zhvi, 0.004, 350, 120), 400, None)),
        "price_to_rent": np.round(np.clip(S.gaussian(rng, 14, 4, n), 5, 35), 1),
        "forecast_pct": np.round(rng.normal(3.2, 2.0, n), 1),
    }
    return Table.from_dict("ZHVI Summary", data)


def build_nfl(rng: np.random.Generator, n: int) -> Table:
    """X6: NFL player statistics (4,626 x 25)."""
    teams = S.names_like(rng, 32, prefix="")
    positions = ["QB", "RB", "WR", "TE", "OL", "DL", "LB", "CB", "S", "K"]
    games = S.integers(rng, 1, 16, n)
    attempts = np.round(np.clip(S.correlated_with(rng, games, 12, 0, 25), 0, None))
    yards = np.round(np.clip(S.correlated_with(rng, attempts, 7.1, 0, 90), 0, None))
    touchdowns = np.round(np.clip(S.correlated_with(rng, yards, 0.008, 0, 1.6), 0, None))
    data = {
        "player": S.names_like(rng, n),
        "team": S.categories(rng, teams, n),
        "position": S.weighted_categories(
            rng, positions, [6, 10, 14, 8, 18, 14, 12, 10, 6, 2], n
        ),
        "age": S.integers(rng, 21, 38, n),
        "seasons": S.integers(rng, 1, 15, n),
        "games_played": games,
        "games_started": np.round(np.clip(S.correlated_with(rng, games, 0.7, -1, 2.2), 0, 16)),
        "attempts": attempts,
        "completions": np.round(np.clip(S.correlated_with(rng, attempts, 0.62, 0, 22), 0, None)),
        "yards": yards,
        "yards_per_game": np.round(
            yards / np.maximum(games, 1) + rng.normal(0, 12, n), 1
        ),
        "touchdowns": touchdowns,
        "interceptions": np.round(np.clip(S.gaussian(rng, 1.1, 1.6, n), 0, None)),
        "fumbles": np.round(np.clip(S.gaussian(rng, 0.8, 1.1, n), 0, None)),
        "first_downs": np.round(np.clip(S.correlated_with(rng, yards, 0.05, 0, 18), 0, None)),
        "longest_play": np.round(np.clip(S.gaussian(rng, 28, 16, n), 0, 99)),
        "tackles": np.round(np.clip(S.gaussian(rng, 25, 28, n), 0, None)),
        "sacks": np.round(np.clip(S.gaussian(rng, 1.5, 2.4, n), 0, None), 1),
        "forced_fumbles": np.round(np.clip(S.gaussian(rng, 0.5, 0.9, n), 0, None)),
        "passes_defended": np.round(np.clip(S.gaussian(rng, 2.2, 3.4, n), 0, None)),
        "penalties": np.round(np.clip(S.gaussian(rng, 3.2, 2.8, n), 0, None)),
        "salary_musd": np.round(S.lognormal(rng, 0.4, 0.8, n), 2),
        "draft_year": S.years(rng, 2000, 2015, n),
        "pro_bowls": np.round(np.clip(S.gaussian(rng, 0.5, 1.1, n), 0, 10)),
        "weight_kg": np.round(np.clip(S.gaussian(rng, 107, 17, n), 72, 160)),
    }
    return Table.from_dict("NFL Player Statistics", data)


def build_airbnb(rng: np.random.Generator, n: int) -> Table:
    """X7: listings summary (6,001 x 9)."""
    hoods = S.names_like(rng, 24)
    room_types = ["Entire home/apt", "Private room", "Shared room"]
    reviews = np.round(S.lognormal(rng, 2.2, 1.1, n))
    price = np.clip(S.lognormal(rng, 4.4, 0.6, n), 15, 1200)
    data = {
        "neighbourhood": S.categories(rng, hoods, n),
        "room_type": S.weighted_categories(rng, room_types, [55, 40, 5], n),
        "price_usd": np.round(price),
        "minimum_nights": np.round(np.clip(S.lognormal(rng, 0.8, 0.9, n), 1, 60)),
        "number_of_reviews": reviews,
        "reviews_per_month": np.round(np.clip(S.correlated_with(rng, reviews, 0.02, 0.2, 0.6), 0.01, 20), 2),
        "rating": np.round(np.clip(S.gaussian(rng, 4.6, 0.35, n), 1, 5), 1),
        "availability_365": S.integers(rng, 0, 365, n),
        "host_since": S.dates(rng, _dt.date(2009, 1, 1), 365 * 8, n, sort=False),
    }
    return Table.from_dict("Airbnb Summary", data)


def build_baby_names(rng: np.random.Generator, n: int) -> Table:
    """X8: top baby names in the US (22,037 x 6)."""
    name_pool = S.names_like(rng, max(50, min(800, n // 25)))
    counts = S.power_law_counts(rng, n, exponent=1.1, scale=6000)
    rng.shuffle(counts)
    data = {
        "year": S.years(rng, 1960, 2015, n),
        "gender": S.categories(rng, ["F", "M"], n),
        "name": S.categories(rng, name_pool, n),
        "state": S.categories(
            rng, ["CA", "TX", "NY", "FL", "IL", "PA", "OH", "GA", "NC", "MI"], n
        ),
        "count": np.clip(counts, 5, None),
        "rank": S.integers(rng, 1, 100, n),
    }
    return Table.from_dict("Top Baby Names in US", data)


def build_adult(rng: np.random.Generator, n: int) -> Table:
    """X9: the census-income table (32,561 x 14)."""
    workclass = ["Private", "Self-emp", "Federal-gov", "Local-gov", "State-gov", "Without-pay"]
    education = ["HS-grad", "Some-college", "Bachelors", "Masters", "Assoc", "11th", "Doctorate"]
    marital = ["Married", "Never-married", "Divorced", "Separated", "Widowed"]
    occupation = ["Craft-repair", "Prof-specialty", "Exec-managerial", "Adm-clerical",
                  "Sales", "Other-service", "Machine-op", "Transport"]
    age = np.round(np.clip(S.gaussian(rng, 38.6, 13.6, n), 17, 90))
    edu_num = np.round(np.clip(S.gaussian(rng, 10, 2.6, n), 1, 16))
    hours = np.round(np.clip(S.correlated_with(rng, edu_num, 1.2, 28, 9), 1, 99))
    data = {
        "age": age,
        "workclass": S.weighted_categories(rng, workclass, [70, 11, 4, 7, 5, 3], n),
        "fnlwgt": np.round(S.lognormal(rng, 12.0, 0.45, n)),
        "education": S.weighted_categories(rng, education, [32, 22, 16, 6, 10, 8, 6], n),
        "education_num": edu_num,
        "marital_status": S.weighted_categories(rng, marital, [46, 33, 14, 3, 4], n),
        "occupation": S.categories(rng, occupation, n),
        "relationship": S.categories(rng, ["Husband", "Not-in-family", "Own-child", "Unmarried", "Wife"], n),
        "race": S.weighted_categories(rng, ["White", "Black", "Asian", "Other"], [85, 10, 3, 2], n),
        "sex": S.weighted_categories(rng, ["Male", "Female"], [2, 1], n),
        "capital_gain": np.round(np.where(rng.random(n) < 0.08, S.lognormal(rng, 8.4, 1.1, n), 0.0)),
        "capital_loss": np.round(np.where(rng.random(n) < 0.05, S.lognormal(rng, 7.4, 0.5, n), 0.0)),
        "hours_per_week": hours,
        "birth_year": S.years(rng, 1930, 1998, n, sort=False),
    }
    return Table.from_dict("Adult", data)


def build_flydelay(rng: np.random.Generator, n: int) -> Table:
    """X10: the running example — O'Hare flight-delay statistics
    (99,527 x 6), with the hour-of-day delay seasonality and the
    departure/arrival delay correlation the paper's Figure 1 shows."""
    carriers = ["UA", "AA", "MQ", "OO", "DL"]
    dests = ["New York", "Los Angeles", "San Francisco", "Atlanta", "Boston",
             "Seattle", "Denver", "Dallas", "Miami", "Phoenix"]
    scheduled = S.timestamps(
        rng, _dt.datetime(2015, 1, 1), _dt.datetime(2016, 1, 1), n
    )
    hours = np.asarray([t.hour for t in scheduled], dtype=np.float64)
    # Delays peak in the late afternoon (the paper's ~19:00 peak).
    hourly_shape = 6.0 + 10.0 * np.exp(-((hours - 19.0) ** 2) / 18.0) \
        + 5.0 * np.exp(-((hours - 11.0) ** 2) / 10.0)
    carrier = S.weighted_categories(rng, carriers, [30, 25, 18, 15, 12], n)
    carrier_bias = {"UA": -2.0, "AA": -1.0, "MQ": 2.0, "OO": 6.0, "DL": 0.0}
    dep_delay = hourly_shape + np.asarray([carrier_bias[c] for c in carrier]) \
        + rng.normal(0, 9, n)
    arr_delay = S.correlated_with(rng, dep_delay, slope=0.9, intercept=-2.0, noise=5.0)
    data = {
        "scheduled": scheduled,
        "carrier": carrier,
        "destination": S.weighted_categories(
            rng, dests, [18, 15, 13, 12, 9, 8, 8, 7, 5, 5], n
        ),
        "departure_delay": np.round(dep_delay),
        "arrival_delay": np.round(arr_delay),
        "passengers": S.integers(rng, 60, 320, n),
    }
    return Table.from_dict("FlyDelay", data)


# ----------------------------------------------------------------------
# Training-domain generators (the 32 training tables draw from these)
# ----------------------------------------------------------------------
def build_monthly_sales(rng: np.random.Generator, n: int) -> Table:
    products = ["Laptop", "Phone", "Tablet", "Monitor", "Headset", "Camera"]
    regions = ["North", "South", "East", "West"]
    units = np.round(np.clip(S.seasonal(rng, n, 12, 140, 420, 60), 10, None))
    data = {
        "month": S.dates(rng, _dt.date(2012, 1, 1), 365 * 4, n),
        "product": S.categories(rng, products, n),
        "region": S.categories(rng, regions, n),
        "units_sold": units,
        "revenue_usd": np.round(np.clip(S.correlated_with(rng, units, 210, 500, 4000), 100, None)),
        "discount_pct": np.round(np.clip(S.gaussian(rng, 8, 6, n), 0, 45), 1),
    }
    return Table.from_dict("Monthly Sales", data)


def build_weather(rng: np.random.Generator, n: int) -> Table:
    temp = S.seasonal(rng, n, 365, 12.0, 11.0, noise=3.0)
    data = {
        "date": S.dates(rng, _dt.date(2014, 1, 1), max(n, 365), n),
        "city": S.categories(rng, ["Beijing", "Shanghai", "Shenzhen", "Chengdu", "Xian"], n),
        "temperature_c": np.round(temp, 1),
        "humidity_pct": np.round(np.clip(S.correlated_with(rng, temp, -1.1, 75, 8), 10, 100)),
        "rainfall_mm": np.round(np.clip(S.lognormal(rng, 0.4, 1.2, n) - 1.0, 0, None), 1),
        "aqi": np.round(np.clip(S.gaussian(rng, 95, 55, n), 10, 450)),
    }
    return Table.from_dict("City Weather", data)


def build_web_traffic(rng: np.random.Generator, n: int) -> Table:
    visits = np.round(np.clip(S.trending(rng, n, 1500, 4.0, noise=220), 100, None))
    data = {
        "day": S.dates(rng, _dt.date(2016, 1, 1), max(n, 200), n),
        "channel": S.weighted_categories(
            rng, ["organic", "paid", "social", "referral", "email"], [45, 25, 15, 10, 5], n
        ),
        "visits": visits,
        "bounce_rate_pct": np.round(np.clip(S.gaussian(rng, 48, 12, n), 5, 95), 1),
        "conversions": np.round(np.clip(S.correlated_with(rng, visits, 0.021, 3, 9), 0, None)),
        "avg_session_s": np.round(np.clip(S.lognormal(rng, 4.8, 0.5, n), 10, None)),
    }
    return Table.from_dict("Website Traffic", data)


def build_stock_prices(rng: np.random.Generator, n: int) -> Table:
    close = np.clip(S.trending(rng, n, 80, 0.12, noise=3.5), 5, None)
    data = {
        "date": S.dates(rng, _dt.date(2013, 1, 2), max(n, 260), n),
        "ticker": S.categories(rng, ["ACME", "GLOBEX", "INITECH", "UMBRELLA"], n),
        "close_usd": np.round(close, 2),
        "volume": np.round(S.lognormal(rng, 13.2, 0.6, n)),
        "volatility_pct": np.round(np.clip(S.gaussian(rng, 1.8, 0.9, n), 0.1, 9), 2),
    }
    return Table.from_dict("Stock Prices", data)


def build_city_population(rng: np.random.Generator, n: int) -> Table:
    population = S.power_law_counts(rng, n, exponent=1.05, scale=9_000_000)
    data = {
        "city": S.names_like(rng, n),
        "province": S.categories(rng, S.names_like(rng, 12), n),
        "population": np.clip(population, 20_000, None),
        "area_km2": np.round(np.clip(S.correlated_with(rng, population, 0.0006, 120, 900), 30, None)),
        "gdp_busd": np.round(np.clip(S.correlated_with(rng, population, 4.1e-5, 2, 40), 0.5, None), 1),
        "founded_year": S.years(rng, 800, 1950, n, sort=False),
    }
    return Table.from_dict("City Population", data)


def build_exam_scores(rng: np.random.Generator, n: int) -> Table:
    study = np.clip(S.gaussian(rng, 5.5, 2.5, n), 0, 14)
    score = np.clip(S.correlated_with(rng, study, 6.5, 38, 9), 0, 100)
    data = {
        "student": S.names_like(rng, n),
        "class": S.categories(rng, ["A", "B", "C", "D"], n),
        "gender": S.categories(rng, ["F", "M"], n),
        "study_hours": np.round(study, 1),
        "score": np.round(score),
        "absences": np.round(np.clip(S.gaussian(rng, 3, 3, n), 0, 30)),
    }
    return Table.from_dict("Exam Scores", data)


def build_energy(rng: np.random.Generator, n: int) -> Table:
    usage = S.seasonal(rng, n, 24, 120, 340, noise=25)
    data = {
        "timestamp": S.timestamps(
            rng, _dt.datetime(2016, 6, 1), _dt.datetime(2016, 9, 1), n
        ),
        "sector": S.weighted_categories(
            rng, ["residential", "industrial", "commercial"], [5, 3, 2], n
        ),
        "usage_mwh": np.round(np.clip(usage, 30, None), 1),
        "price_per_mwh": np.round(np.clip(S.correlated_with(rng, usage, 0.11, 18, 5), 8, None), 2),
        "renewable_pct": np.round(np.clip(S.gaussian(rng, 22, 9, n), 0, 70), 1),
    }
    return Table.from_dict("Energy Consumption", data)


def build_taxi(rng: np.random.Generator, n: int) -> Table:
    distance = np.clip(S.lognormal(rng, 1.1, 0.7, n), 0.3, 60)
    data = {
        "pickup_time": S.timestamps(
            rng, _dt.datetime(2015, 3, 1), _dt.datetime(2015, 3, 31), n
        ),
        "zone": S.categories(rng, S.names_like(rng, 15), n),
        "payment": S.weighted_categories(rng, ["card", "cash", "app"], [5, 3, 2], n),
        "distance_km": np.round(distance, 2),
        "fare_usd": np.round(np.clip(S.correlated_with(rng, distance, 2.6, 3.1, 1.8), 3, None), 2),
        "tip_usd": np.round(np.clip(S.correlated_with(rng, distance, 0.35, 0.4, 0.9), 0, None), 2),
        "passengers": S.integers(rng, 1, 6, n),
    }
    return Table.from_dict("Taxi Trips", data)


def build_movie_ratings(rng: np.random.Generator, n: int) -> Table:
    votes = np.round(S.lognormal(rng, 8.2, 1.4, n))
    data = {
        "title": S.names_like(rng, n),
        "genre": S.categories(rng, ["Drama", "Comedy", "Thriller", "SciFi", "Documentary"], n),
        "release_year": S.years(rng, 1980, 2017, n, sort=False),
        "rating": np.round(np.clip(S.gaussian(rng, 6.5, 1.1, n), 1, 10), 1),
        "votes": votes,
        "runtime_min": np.round(np.clip(S.gaussian(rng, 107, 19, n), 60, 240)),
    }
    return Table.from_dict("Movie Ratings", data)


def build_healthcare(rng: np.random.Generator, n: int) -> Table:
    age = np.round(np.clip(S.gaussian(rng, 52, 19, n), 0, 99))
    data = {
        "admission_date": S.dates(rng, _dt.date(2015, 1, 1), 365 * 2, n, sort=False),
        "department": S.weighted_categories(
            rng, ["cardiology", "oncology", "orthopedics", "pediatrics", "ER"], [4, 3, 3, 2, 6], n
        ),
        "age": age,
        "stay_days": np.round(np.clip(S.correlated_with(rng, age, 0.06, 1.5, 2.5), 0, 60)),
        "cost_usd": np.round(np.clip(S.lognormal(rng, 8.6, 0.8, n), 200, None)),
        "readmitted": S.weighted_categories(rng, ["no", "yes"], [5, 1], n),
    }
    return Table.from_dict("Hospital Admissions", data)


def build_retail_inventory(rng: np.random.Generator, n: int) -> Table:
    stock = np.round(np.clip(S.gaussian(rng, 180, 120, n), 0, None))
    data = {
        "sku": S.names_like(rng, n, prefix="SKU"),
        "department": S.categories(rng, ["grocery", "apparel", "electronics", "home", "toys"], n),
        "supplier": S.categories(rng, S.names_like(rng, 9), n),
        "stock_units": stock,
        "unit_cost_usd": np.round(np.clip(S.lognormal(rng, 2.4, 0.8, n), 0.5, None), 2),
        "weekly_sales": np.round(np.clip(S.correlated_with(rng, stock, 0.22, 4, 14), 0, None)),
        "last_restock": S.dates(rng, _dt.date(2016, 1, 1), 365, n, sort=False),
    }
    return Table.from_dict("Retail Inventory", data)


def build_marathon(rng: np.random.Generator, n: int) -> Table:
    age = np.round(np.clip(S.gaussian(rng, 38, 11, n), 18, 80))
    data = {
        "runner": S.names_like(rng, n),
        "country": S.categories(rng, S.names_like(rng, 20), n),
        "age": age,
        "finish_min": np.round(np.clip(S.correlated_with(rng, age, 1.1, 170, 28), 125, 420)),
        "division": S.categories(rng, ["elite", "open", "masters"], n),
        "bib_year": S.years(rng, 2010, 2017, n, sort=False),
    }
    return Table.from_dict("Marathon Results", data)


TESTING_SPECS: List[DatasetSpec] = [
    DatasetSpec("Hollywood's Stories", build_hollywood, 75, "entertainment"),
    DatasetSpec("Foreign Visitor Arrivals", build_visitor_arrivals, 172, "tourism"),
    DatasetSpec("McDonald's Menu", build_menu, 263, "food"),
    DatasetSpec("Happiness Rank", build_happiness, 316, "social study"),
    DatasetSpec("ZHVI Summary", build_zhvi, 1749, "real estate"),
    DatasetSpec("NFL Player Statistics", build_nfl, 4626, "sports"),
    DatasetSpec("Airbnb Summary", build_airbnb, 6001, "real estate"),
    DatasetSpec("Top Baby Names in US", build_baby_names, 22037, "social study"),
    DatasetSpec("Adult", build_adult, 32561, "social study"),
    DatasetSpec("FlyDelay", build_flydelay, 99527, "transportation"),
]

_TRAINING_DOMAINS: List[DatasetSpec] = [
    DatasetSpec("Monthly Sales", build_monthly_sales, 480, "retail"),
    DatasetSpec("City Weather", build_weather, 1460, "weather"),
    DatasetSpec("Website Traffic", build_web_traffic, 730, "web"),
    DatasetSpec("Stock Prices", build_stock_prices, 1040, "finance"),
    DatasetSpec("City Population", build_city_population, 290, "social study"),
    DatasetSpec("Exam Scores", build_exam_scores, 620, "education"),
    DatasetSpec("Energy Consumption", build_energy, 2200, "energy"),
    DatasetSpec("Taxi Trips", build_taxi, 5200, "transportation"),
    DatasetSpec("Movie Ratings", build_movie_ratings, 980, "entertainment"),
    DatasetSpec("Hospital Admissions", build_healthcare, 1700, "health"),
    DatasetSpec("Retail Inventory", build_retail_inventory, 830, "retail"),
    DatasetSpec("Marathon Results", build_marathon, 2600, "sports"),
]

#: 32 training datasets: the 12 domains instantiated with varied sizes
#: and seeds (suffixes distinguish the variants).
TRAINING_SPECS: List[DatasetSpec] = []
_SIZE_FACTORS = (1.0, 0.45, 1.7)
for _round, _factor in enumerate(_SIZE_FACTORS):
    for _spec in _TRAINING_DOMAINS:
        if len(TRAINING_SPECS) >= 32:
            break
        _suffix = "" if _round == 0 else f" #{_round + 1}"
        TRAINING_SPECS.append(
            DatasetSpec(
                _spec.name + _suffix,
                _spec.builder,
                max(30, int(_spec.rows * _factor)),
                _spec.domain,
            )
        )

_ALL_SPECS: Dict[str, DatasetSpec] = {
    spec.name: spec for spec in TESTING_SPECS + TRAINING_SPECS
}


def make_table(name: str, scale: float = 1.0, seed: int = 0) -> Table:
    """Instantiate one corpus dataset by name.

    ``scale`` multiplies the canonical row count (use < 1 for fast test
    runs); ``seed`` controls the RNG, with the dataset name mixed in so
    same-domain training variants differ.
    """
    spec = _ALL_SPECS.get(name)
    if spec is None:
        raise KeyError(
            f"unknown corpus dataset {name!r}; available: {sorted(_ALL_SPECS)}"
        )
    # zlib.crc32 gives a process-stable name hash (builtin hash() is
    # randomised per interpreter run, which would break reproducibility).
    mixed_seed = (seed * 1_000_003 + zlib.crc32(name.encode("utf-8"))) % (2**32)
    rng = np.random.default_rng(mixed_seed)
    table = spec.builder(rng, _scaled(spec.rows, scale))
    table.name = spec.name
    return table


def testing_tables(scale: float = 1.0, seed: int = 0) -> List[Table]:
    """The ten Table IV testing datasets X1-X10 (in order)."""
    return [make_table(spec.name, scale, seed) for spec in TESTING_SPECS]


def training_tables(scale: float = 1.0, seed: int = 0) -> List[Table]:
    """The 32 training datasets."""
    return [make_table(spec.name, scale, seed) for spec in TRAINING_SPECS]


def corpus_tables(scale: float = 1.0, seed: int = 0) -> List[Table]:
    """All 42 datasets: training followed by testing."""
    return training_tables(scale, seed) + testing_tables(scale, seed)
