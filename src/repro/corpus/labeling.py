"""The perception oracle: simulated crowdsourced ground truth.

The paper's ground truth came from 100 students labelling every
candidate chart of 42 tables as good/bad and pairwise-comparing the good
ones (2,520 good / 30,892 bad labels; 285,236 comparisons), merged into
a per-table total order.  Those labels are unavailable, so this module
substitutes a *perception oracle*: a hidden scoring model that is

* richer than — but correlated with — the expert factors M/Q/W, adding
  continuous trend strength, cardinality sweet spots, and chart-type
  popularity priors [Grammel et al. 2010];
* strongly rule-consistent, because the paper's own explanation for the
  decision tree's win is that "visualization recognition should follow
  the rules ... and decision tree could capture these rules well";
* sampled through N noisy simulated annotators whose majority vote
  yields labels and whose merged scores yield graded relevance — so the
  labels carry realistic disagreement noise near the threshold.

Everything is deterministic given (seed, table name, candidate set).
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..dataset.column import ColumnType
from ..language.ast import AggregateOp, ChartType
from ..core.nodes import VisualizationNode
from ..core.rules import visualization_rules
from ..core.trend import fit_trend

__all__ = ["TableAnnotation", "PerceptionOracle"]

#: Chart-type popularity priors from the survey the paper cites
#: (bar 34%, line 23%, pie 13%; scatter gets the "other" remainder share).
_POPULARITY = {
    ChartType.BAR: 0.34,
    ChartType.LINE: 0.23,
    ChartType.PIE: 0.13,
    ChartType.SCATTER: 0.08,
}


@dataclass
class TableAnnotation:
    """Merged annotation of one table's candidate set.

    ``labels[i]`` — majority-vote good/bad; ``relevance[i]`` — graded
    relevance (0 bad, 1-4 for good, best quartile = 4); ``scores[i]`` —
    the hidden consensus score in [0, 1] (available to experiments that
    need the unquantised order, e.g. NDCG gain).
    """

    labels: List[bool]
    relevance: List[float]
    scores: List[float]

    @property
    def num_good(self) -> int:
        return sum(self.labels)

    @property
    def num_bad(self) -> int:
        return len(self.labels) - self.num_good


def _sweet_spot(value: float, low: float, high: float, decay: float) -> float:
    """1.0 inside [low, high], exponential decay outside."""
    if value < low:
        return math.exp(-(low - value) / max(decay, 1e-9))
    if value > high:
        return math.exp(-(value - high) / (decay * 4.0))
    return 1.0


class PerceptionOracle:
    """Hidden "human perception" scorer + simulated annotator pool."""

    def __init__(
        self,
        seed: int = 0,
        annotators: int = 100,
        annotator_noise: float = 0.06,
        good_threshold: float = 0.82,
    ) -> None:
        self.seed = seed
        self.annotators = annotators
        self.annotator_noise = annotator_noise
        self.good_threshold = good_threshold

    # ------------------------------------------------------------------
    # The hidden perception model
    # ------------------------------------------------------------------
    def _shape_quality(self, node: VisualizationNode) -> float:
        """Chart-vs-data fit, continuous (richer than the expert M)."""
        d = node.data.distinct_x
        y = np.asarray(node.data.y_values, dtype=np.float64)
        chart = node.chart

        if chart is ChartType.PIE:
            if node.query.aggregate is AggregateOp.AVG:
                return 0.02
            if d < 2 or len(y) == 0 or y.min() < 0 or y.sum() <= 0:
                return 0.0
            p = y[y > 0] / y.sum()
            diversity = float(-(p * np.log(p)).sum() / math.log(max(len(y), 2)))
            return _sweet_spot(d, 2, 10, 3.0) * (0.8 + 0.2 * diversity)

        if chart is ChartType.BAR:
            if d < 2:
                return 0.0
            spread = float(y.std() / (abs(y).mean() + 1e-9)) if len(y) else 0.0
            return _sweet_spot(d, 2, 20, 6.0) * (0.48 + 0.52 * min(spread, 1.0))

        if chart is ChartType.SCATTER:
            # Super-linear strength: humans only rate clearly correlated
            # scatters as good; mild correlations read as noise clouds.
            strength = abs(node.features.corr_transformed) ** 1.5
            points = node.data.transformed_rows
            volume = min(1.0, points / 25.0)
            return min(1.0, strength * (0.85 + 0.3 * volume))

        # Line: continuous trend strength + a readable number of points.
        if d < 3:
            return 0.0
        trend_fit = fit_trend(node.data.y_values, r2_threshold=0.0)
        readability = _sweet_spot(node.data.transformed_rows, 5, 60, 12.0)
        return trend_fit.r_squared * (0.4 + 0.6 * readability)

    def _transformation_sense(self, node: VisualizationNode) -> float:
        """Do the grouping/binning and aggregate make sense together?"""
        source = max(node.data.source_rows, 1)
        points = node.data.transformed_rows
        if node.query.transform is None:
            # Raw plots summarise nothing (the paper's Factor 2 scores
            # them zero); annotators still accept a readable raw scatter
            # but clearly below a well-transformed chart.
            return 0.7 if points <= 2000 else 0.45
        reduction = 1.0 - points / source
        return 0.25 + 0.75 * max(0.0, reduction)

    def _rule_compliance(self, node: VisualizationNode) -> float:
        """Humans almost never accept charts the type rules forbid."""
        x_type = node.features.x.ctype
        correlated = abs(node.features.corr_transformed) >= 0.5 or abs(
            node.features.corr
        ) >= 0.5
        permitted = visualization_rules(x_type, True, correlated)
        if node.query.transform is None:
            # Raw numeric pairs: scatter when correlated, line for
            # temporal series; everything else reads poorly.
            if node.chart is ChartType.SCATTER:
                return 1.0 if correlated else 0.25
            if node.chart is ChartType.LINE and x_type in (
                ColumnType.TEMPORAL,
                ColumnType.NUMERICAL,
            ):
                return 0.8
            return 0.08
        return 1.0 if node.chart in permitted else 0.08

    def column_interest(
        self, nodes: Sequence[VisualizationNode]
    ) -> Dict[str, float]:
        """Within-table column salience: how often a column shows up in
        rule-plausible charts — the context humans judge in.  This is a
        *set-level* signal no per-node feature vector exposes, which is
        one reason expert partial orders outrank learning-to-rank."""
        counts: Dict[str, float] = {}
        for node in nodes:
            weight = self._rule_compliance(node)
            for column in node.columns:
                counts[column] = counts.get(column, 0.0) + weight
        top = max(counts.values()) if counts else 1.0
        return {c: v / top for c, v in counts.items()} if top > 0 else counts

    def consensus_score(
        self,
        node: VisualizationNode,
        interest: Optional[Dict[str, float]] = None,
    ) -> float:
        """The hidden true goodness of one chart, in [0, 1]."""
        shape = self._shape_quality(node)
        sense = self._transformation_sense(node)
        compliance = self._rule_compliance(node)
        popularity = _POPULARITY.get(node.chart, 0.1)
        salience = 1.0
        if interest:
            salience = sum(interest.get(c, 0.0) for c in node.columns) / max(
                len(node.columns), 1
            )
        # Salience gets a deliberately small weight *here* (good/bad is
        # mostly a property of the chart itself); it re-enters with a
        # large weight in the good-vs-good ranking merge inside
        # annotate(), which is where set-level context matters.
        raw = compliance * (
            0.58 * shape + 0.20 * sense + 0.12 * salience + 0.10 * popularity / 0.34
        )
        return float(min(1.0, max(0.0, raw)))

    # ------------------------------------------------------------------
    # Simulated annotation
    # ------------------------------------------------------------------
    def _rng_for(self, nodes: Sequence[VisualizationNode]) -> np.random.Generator:
        table_name = nodes[0].table_name if nodes else ""
        mixed = (
            self.seed * 2_654_435_761
            + zlib.crc32(table_name.encode("utf-8"))
            + len(nodes)
        ) % (2**32)
        return np.random.default_rng(mixed)

    def annotate(self, nodes: Sequence[VisualizationNode]) -> TableAnnotation:
        """Label a table's candidate set through the annotator pool."""
        if not nodes:
            return TableAnnotation([], [], [])
        rng = self._rng_for(nodes)
        interest = self.column_interest(nodes)
        scores = np.asarray(
            [self.consensus_score(node, interest) for node in nodes]
        )

        # Majority vote of `annotators` noisy threshold judgements is a
        # binomial; sampling the vote count keeps near-threshold charts
        # genuinely uncertain.
        margins = (scores - self.good_threshold) / self.annotator_noise
        p_good = 1.0 / (1.0 + np.exp(-1.702 * margins))  # probit approx
        votes = rng.binomial(self.annotators, p_good)
        labels = votes > self.annotators / 2

        # Merged graded relevance: bad -> 0; good -> quartile grades 1-4
        # over the noisy merged scores.  The paper merges sparse pairwise
        # crowd comparisons into a total order [16, 17]; that merge
        # carries per-item noise far above the sqrt(N) annotator average
        # (each pair is judged by only a handful of students), modelled
        # here as half an annotator standard deviation.
        # Good-vs-good preference is dominated by *which columns* the
        # chart shows (the paper's Factor 3 rationale: "a user is more
        # interested in visualizing an important column") — a set-level
        # judgement that per-chart feature vectors cannot express.
        salience = np.asarray(
            [
                sum(interest.get(c, 0.0) for c in node.columns)
                / max(len(node.columns), 1)
                for node in nodes
            ]
        )
        merged = (
            0.6 * scores
            + 0.4 * salience
            + rng.normal(0.0, self.annotator_noise * 0.5, size=len(nodes))
        )
        relevance = np.zeros(len(nodes))
        good_idx = np.flatnonzero(labels)
        if len(good_idx) > 0:
            order = good_idx[np.argsort(-merged[good_idx])]
            quartile = max(1, math.ceil(len(order) / 4))
            for position, idx in enumerate(order):
                relevance[idx] = float(4 - min(3, position // quartile))
        return TableAnnotation(
            labels=[bool(v) for v in labels],
            relevance=[float(v) for v in relevance],
            scores=[float(v) for v in merged],
        )

    def annotate_via_comparisons(
        self,
        nodes: Sequence[VisualizationNode],
        method: str = "bradley_terry",
        max_pairs: Optional[int] = None,
    ) -> TableAnnotation:
        """Annotate with relevance grades derived the paper's way: merge
        sampled pairwise crowd comparisons into a total order [16, 17]
        and quantise it, instead of grading the latent scores directly.

        Labels are identical to :meth:`annotate`; only the grading path
        differs, so experiments can compare the two merge strategies.
        """
        from .aggregation import aggregate_comparisons, grades_from_scores

        base = self.annotate(nodes)
        good = [i for i, ok in enumerate(base.labels) if ok]
        if len(good) < 2:
            return base
        pairs = self.pairwise_comparisons(nodes, max_pairs=max_pairs)
        merged = aggregate_comparisons(pairs, len(nodes), method)
        relevance = grades_from_scores(merged, good)
        return TableAnnotation(
            labels=base.labels, relevance=relevance, scores=base.scores
        )

    def pairwise_comparisons(
        self, nodes: Sequence[VisualizationNode], max_pairs: Optional[int] = None
    ) -> List[Tuple[int, int]]:
        """Sampled "i is better than j" judgements over the good charts.

        Mirrors the paper's 285,236 crowd comparisons; mainly used by
        corpus statistics and tests (LambdaMART trains on the merged
        grades instead, as graded LTR data)."""
        annotation = self.annotate(nodes)
        good = [i for i, ok in enumerate(annotation.labels) if ok]
        pairs: List[Tuple[int, int]] = []
        rng = self._rng_for(nodes)
        for a_pos in range(len(good)):
            for b_pos in range(a_pos + 1, len(good)):
                i, j = good[a_pos], good[b_pos]
                delta = annotation.scores[i] - annotation.scores[j]
                p_i_wins = 1.0 / (1.0 + math.exp(-delta / 0.05))
                winner = (i, j) if rng.random() < p_i_wins else (j, i)
                pairs.append(winner)
                if max_pairs is not None and len(pairs) >= max_pairs:
                    return pairs
        return pairs
