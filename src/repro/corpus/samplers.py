"""Seeded column samplers used by the synthetic dataset generators.

The paper's 42 real-world tables are proprietary web scrapes; the
reproduction replaces them with synthetic tables whose *feature-level*
shape matches (cardinalities, type mixes, correlations, trends,
part-to-whole structures — everything the 14-feature vector and the
partial-order factors can see).  These samplers are the vocabulary the
generators compose: every one is deterministic given the numpy
Generator passed in.
"""

from __future__ import annotations

import datetime as _dt
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "categories",
    "weighted_categories",
    "gaussian",
    "lognormal",
    "uniform",
    "integers",
    "correlated_with",
    "seasonal",
    "trending",
    "power_law_counts",
    "timestamps",
    "dates",
    "years",
    "names_like",
]


def categories(
    rng: np.random.Generator, values: Sequence[str], n: int
) -> List[str]:
    """Uniformly sampled categorical values."""
    return [values[i] for i in rng.integers(0, len(values), size=n)]


def weighted_categories(
    rng: np.random.Generator,
    values: Sequence[str],
    weights: Sequence[float],
    n: int,
) -> List[str]:
    """Categorical values with a skewed distribution (realistic shares)."""
    weights = np.asarray(weights, dtype=np.float64)
    weights = weights / weights.sum()
    indices = rng.choice(len(values), size=n, p=weights)
    return [values[i] for i in indices]


def gaussian(
    rng: np.random.Generator, mean: float, std: float, n: int,
    low: Optional[float] = None, high: Optional[float] = None,
) -> np.ndarray:
    """Normal values, optionally clipped to a plausible range."""
    values = rng.normal(mean, std, size=n)
    if low is not None or high is not None:
        values = np.clip(values, low, high)
    return values


def lognormal(rng: np.random.Generator, mean: float, sigma: float, n: int) -> np.ndarray:
    """Log-normal values — prices, incomes, view counts."""
    return rng.lognormal(mean, sigma, size=n)


def uniform(rng: np.random.Generator, low: float, high: float, n: int) -> np.ndarray:
    return rng.uniform(low, high, size=n)


def integers(rng: np.random.Generator, low: int, high: int, n: int) -> np.ndarray:
    """Uniform integers in [low, high]."""
    return rng.integers(low, high + 1, size=n).astype(np.float64)


def correlated_with(
    rng: np.random.Generator,
    base: np.ndarray,
    slope: float = 1.0,
    intercept: float = 0.0,
    noise: float = 1.0,
) -> np.ndarray:
    """A column linearly correlated with ``base`` plus Gaussian noise —
    gives the scatter-chart rule something real to find."""
    base = np.asarray(base, dtype=np.float64)
    return slope * base + intercept + rng.normal(0.0, noise, size=len(base))


def seasonal(
    rng: np.random.Generator,
    n: int,
    period: float,
    amplitude: float,
    baseline: float,
    noise: float = 0.0,
) -> np.ndarray:
    """A periodic series — hourly delays, monthly passengers."""
    t = np.arange(n, dtype=np.float64)
    values = baseline + amplitude * np.sin(2.0 * np.pi * t / period)
    if noise > 0:
        values = values + rng.normal(0.0, noise, size=n)
    return values


def trending(
    rng: np.random.Generator,
    n: int,
    start: float,
    slope: float,
    noise: float = 0.0,
    curvature: float = 0.0,
) -> np.ndarray:
    """A monotone-ish series (line charts should detect a trend here)."""
    t = np.arange(n, dtype=np.float64)
    values = start + slope * t + curvature * t**2
    if noise > 0:
        values = values + rng.normal(0.0, noise, size=n)
    return values


def power_law_counts(
    rng: np.random.Generator, n: int, exponent: float = 1.2, scale: float = 1000.0
) -> np.ndarray:
    """Zipf-ish counts — name popularity, city sizes."""
    ranks = np.arange(1, n + 1, dtype=np.float64)
    base = scale / ranks**exponent
    jitter = rng.uniform(0.8, 1.25, size=n)
    return np.round(base * jitter)


def timestamps(
    rng: np.random.Generator,
    start: _dt.datetime,
    end: _dt.datetime,
    n: int,
    sort: bool = True,
) -> List[_dt.datetime]:
    """Random timestamps in [start, end), optionally sorted."""
    span = (end - start).total_seconds()
    offsets = rng.uniform(0.0, span, size=n)
    if sort:
        offsets = np.sort(offsets)
    return [start + _dt.timedelta(seconds=float(s)) for s in offsets]


def dates(
    rng: np.random.Generator, start: _dt.date, days: int, n: int, sort: bool = True
) -> List[_dt.datetime]:
    """Random calendar dates within ``days`` of ``start``."""
    offsets = rng.integers(0, days, size=n)
    if sort:
        offsets = np.sort(offsets)
    base = _dt.datetime(start.year, start.month, start.day)
    return [base + _dt.timedelta(days=int(d)) for d in offsets]


def years(rng: np.random.Generator, first: int, last: int, n: int, sort: bool = True) -> List[int]:
    """Year values (detected as temporal by inference)."""
    values = rng.integers(first, last + 1, size=n)
    if sort:
        values = np.sort(values)
    return [int(v) for v in values]


_SYLLABLES = (
    "an", "bel", "cor", "dan", "el", "far", "gor", "hal", "is", "jo",
    "kin", "lor", "mar", "nor", "ol", "per", "quin", "ros", "sal", "tor",
)


def names_like(rng: np.random.Generator, count: int, prefix: str = "") -> List[str]:
    """``count`` distinct pronounceable names (entity labels)."""
    out: List[str] = []
    seen = set()
    while len(out) < count:
        parts = rng.integers(0, len(_SYLLABLES), size=int(rng.integers(2, 4)))
        name = prefix + "".join(_SYLLABLES[i] for i in parts).capitalize()
        if name not in seen:
            seen.add(name)
            out.append(name)
    return out
