"""The nine real use cases D1-D9 (Table V) and the coverage experiment.

Each paper use case is a public web page with a dataset *and* the charts
its authors actually published.  We rebuild each scenario as a synthetic
table in the same domain plus a set of "published" reference charts:
charts a rational publisher would pick — i.e. drawn from the perception
oracle's top-scoring candidates, with seeded editorial jitter so the
published set is correlated with, but not identical to, any system
ranking (exactly the situation Table VI measures: DeepEye needs top-k
with k >= the number of published charts to cover them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.enumeration import EnumerationConfig, enumerate_candidates
from ..core.nodes import VisualizationNode
from ..dataset.table import Table
from .generators import (
    build_baby_names,
    build_energy,
    build_flydelay,
    build_happiness,
    build_healthcare,
    build_menu,
    build_monthly_sales,
    build_stock_prices,
    build_web_traffic,
)
from .labeling import PerceptionOracle

__all__ = ["ChartKey", "UseCase", "use_cases", "chart_key", "coverage_k", "USECASE_SPECS"]

#: Identity of a chart for coverage matching: sort order is cosmetic, so
#: it is excluded.
ChartKey = Tuple


def chart_key(node: VisualizationNode) -> ChartKey:
    """The coverage identity of a chart (sort order excluded)."""
    return (
        node.query.chart,
        node.query.x,
        node.query.y,
        node.query.transform,
        node.query.aggregate,
    )


@dataclass
class UseCase:
    """One real use case: a table plus its published reference charts."""

    name: str
    table: Table
    published: List[ChartKey]

    @property
    def num_published(self) -> int:
        return len(self.published)


#: (id, builder, canonical rows, number of published charts).  The
#: published-chart counts follow Table VI's magnitudes (D1 has 5, D3 4).
USECASE_SPECS = (
    ("D1 Happy Countries", build_happiness, 240, 5),
    ("D2 US Baby Names", build_baby_names, 1500, 3),
    ("D3 Flight Statistics", build_flydelay, 4000, 4),
    ("D4 TutorialOfUCB", build_web_traffic, 400, 3),
    ("D5 CPI Statistics", build_stock_prices, 420, 3),
    ("D6 Healthcare", build_healthcare, 900, 4),
    ("D7 Services Statistics", build_monthly_sales, 380, 3),
    ("D8 PPI Statistics", build_energy, 700, 3),
    ("D9 Average Food Price", build_menu, 180, 4),
)


def _published_charts(
    table: Table,
    n_published: int,
    oracle: PerceptionOracle,
    rng: np.random.Generator,
) -> List[ChartKey]:
    """Pick the charts the scenario's "publisher" would have used.

    Candidates come from rule-based enumeration (publishers do not chart
    nonsense); the oracle scores them; the published set samples the top
    decile with jitter, preferring distinct chart types and x columns the
    way real dashboards mix views.
    """
    nodes = enumerate_candidates(
        table, "rules", EnumerationConfig(orderings="canonical")
    )
    if not nodes:
        return []
    interest = oracle.column_interest(nodes)
    scores = np.asarray(
        [oracle.consensus_score(node, interest) for node in nodes]
    )
    order = np.argsort(-scores, kind="stable")
    pool = order[: max(n_published * 4, 12)]

    chosen: List[int] = []
    used_keys: Set[ChartKey] = set()
    used_shapes: Set[Tuple] = set()
    for idx in pool:
        node = nodes[idx]
        key = chart_key(node)
        if key in used_keys:
            continue
        shape = (node.query.chart, node.query.x)
        # Editorial jitter: occasionally pass over an eligible chart.
        if shape in used_shapes and rng.random() < 0.6:
            continue
        if rng.random() < 0.25:
            continue
        used_keys.add(key)
        used_shapes.add(shape)
        chosen.append(idx)
        if len(chosen) == n_published:
            break
    # Top up deterministically if jitter skipped too many.
    for idx in pool:
        if len(chosen) == n_published:
            break
        key = chart_key(nodes[idx])
        if key not in used_keys:
            used_keys.add(key)
            chosen.append(idx)
    return [chart_key(nodes[i]) for i in chosen]


def use_cases(
    scale: float = 1.0,
    seed: int = 7,
    oracle: Optional[PerceptionOracle] = None,
) -> List[UseCase]:
    """Instantiate all nine use cases with their published charts."""
    oracle = oracle or PerceptionOracle(seed=seed)
    cases = []
    for offset, (name, builder, rows, n_published) in enumerate(USECASE_SPECS):
        rng = np.random.default_rng(seed * 7919 + offset)
        table = builder(rng, max(30, int(rows * scale)))
        table.name = name
        published = _published_charts(table, n_published, oracle, rng)
        cases.append(UseCase(name=name, table=table, published=published))
    return cases


def coverage_k(
    case: UseCase, ranked_nodes: Sequence[VisualizationNode]
) -> Optional[int]:
    """The smallest k such that top-k covers every published chart.

    Returns ``None`` when some published chart never appears in the
    ranking (Table VI's "not covered" case).
    """
    remaining = set(case.published)
    if not remaining:
        return 0
    for position, node in enumerate(ranked_nodes, start=1):
        remaining.discard(chart_key(node))
        if not remaining:
            return position
    return None
