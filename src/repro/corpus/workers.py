"""Heterogeneous annotator pools and worker-quality estimation.

The paper's 100 students were not equally reliable; crowdsourcing
pipelines routinely model per-worker accuracy and down-weight spammers
before merging judgements.  This module provides:

* :class:`WorkerPool` — simulated workers with individual accuracies
  (including pure spammers answering at random) issuing pairwise
  judgements over latent item scores;
* :func:`estimate_worker_quality` — an EM-style iteration that
  alternates between (a) deciding each pair by quality-weighted
  majority and (b) re-scoring each worker by agreement with those
  decisions — a pairwise-comparison cousin of Dawid–Skene;
* :func:`weighted_merge` — per-pair winners under the estimated
  qualities, ready for :mod:`repro.corpus.aggregation`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ReproError

__all__ = [
    "Judgement",
    "WorkerPool",
    "estimate_worker_quality",
    "weighted_merge",
]


@dataclass(frozen=True)
class Judgement:
    """One worker's verdict on one ordered pair: "i is better than j"."""

    worker: int
    i: int
    j: int
    i_wins: bool


class WorkerPool:
    """Simulated annotators with heterogeneous reliability.

    Each worker w answers correctly (according to the latent scores)
    with probability ``accuracies[w]``; 0.5 is a pure spammer.  Near-tied
    pairs are intrinsically harder: the effective accuracy interpolates
    toward 0.5 as the score gap shrinks below ``resolution``.
    """

    def __init__(
        self,
        accuracies: Sequence[float],
        resolution: float = 0.05,
        seed: int = 0,
    ) -> None:
        for accuracy in accuracies:
            if not 0.0 <= accuracy <= 1.0:
                raise ReproError(f"accuracy {accuracy} outside [0, 1]")
        self.accuracies = list(accuracies)
        self.resolution = resolution
        self._rng = np.random.default_rng(seed)

    @property
    def num_workers(self) -> int:
        return len(self.accuracies)

    def judge(self, worker: int, score_i: float, score_j: float) -> bool:
        """Worker's answer to "is i better than j?" for latent scores."""
        gap = abs(score_i - score_j)
        difficulty = min(1.0, gap / max(self.resolution, 1e-9))
        accuracy = 0.5 + (self.accuracies[worker] - 0.5) * difficulty
        truth = score_i > score_j
        return truth if self._rng.random() < accuracy else not truth

    def collect(
        self,
        scores: Sequence[float],
        pairs: Sequence[Tuple[int, int]],
        judgements_per_pair: int = 3,
    ) -> List[Judgement]:
        """Sample ``judgements_per_pair`` worker verdicts for each pair."""
        output: List[Judgement] = []
        for i, j in pairs:
            workers = self._rng.choice(
                self.num_workers,
                size=min(judgements_per_pair, self.num_workers),
                replace=False,
            )
            for worker in workers:
                output.append(
                    Judgement(
                        worker=int(worker),
                        i=i,
                        j=j,
                        i_wins=self.judge(int(worker), scores[i], scores[j]),
                    )
                )
        return output


def estimate_worker_quality(
    judgements: Sequence[Judgement],
    num_workers: int,
    iterations: int = 10,
    smoothing: float = 1.0,
) -> np.ndarray:
    """EM-style per-worker accuracy estimates from raw judgements.

    Iterates: (1) decide every pair by quality-weighted vote; (2) score
    each worker as its (smoothed) agreement rate with the decisions.
    Workers start at uniform quality; spammers converge toward 0.5 and
    diligent workers toward their true accuracy.
    """
    if num_workers < 1:
        raise ReproError("need at least one worker")
    by_pair: Dict[Tuple[int, int], List[Judgement]] = defaultdict(list)
    for judgement in judgements:
        key = (min(judgement.i, judgement.j), max(judgement.i, judgement.j))
        by_pair[key].append(judgement)

    quality = np.full(num_workers, 0.7)
    for _ in range(iterations):
        # E-step: weighted majority decision per pair.
        decisions: Dict[Tuple[int, int], bool] = {}
        for key, votes in by_pair.items():
            weight_first_wins = 0.0
            for vote in votes:
                # Normalise the vote to "does the pair's first item win?".
                first_wins = vote.i_wins if vote.i == key[0] else not vote.i_wins
                weight = max(quality[vote.worker] - 0.5, 0.01)
                weight_first_wins += weight if first_wins else -weight
            decisions[key] = weight_first_wins >= 0

        # M-step: agreement rate per worker, Laplace-smoothed.
        agree = np.full(num_workers, smoothing)
        total = np.full(num_workers, 2.0 * smoothing)
        for key, votes in by_pair.items():
            for vote in votes:
                first_wins = vote.i_wins if vote.i == key[0] else not vote.i_wins
                total[vote.worker] += 1.0
                if first_wins == decisions[key]:
                    agree[vote.worker] += 1.0
        updated = agree / total
        if np.allclose(updated, quality, atol=1e-6):
            quality = updated
            break
        quality = updated
    return quality


def weighted_merge(
    judgements: Sequence[Judgement],
    num_workers: int,
    quality: Optional[np.ndarray] = None,
) -> List[Tuple[int, int]]:
    """Per-pair winners under quality-weighted voting.

    Returns (winner, loser) tuples consumable by
    :func:`repro.corpus.aggregation.aggregate_comparisons`.  Estimates
    worker quality first when none is supplied.
    """
    if quality is None:
        quality = estimate_worker_quality(judgements, num_workers)
    by_pair: Dict[Tuple[int, int], float] = defaultdict(float)
    for judgement in judgements:
        key = (min(judgement.i, judgement.j), max(judgement.i, judgement.j))
        first_wins = (
            judgement.i_wins if judgement.i == key[0] else not judgement.i_wins
        )
        weight = max(quality[judgement.worker] - 0.5, 0.01)
        by_pair[key] += weight if first_wins else -weight
    winners: List[Tuple[int, int]] = []
    for (a, b), balance in by_pair.items():
        winners.append((a, b) if balance >= 0 else (b, a))
    return winners
