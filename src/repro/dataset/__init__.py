"""Relational-table substrate: typed columns, tables, inference, and IO."""

from .column import EPOCH, Column, ColumnType
from .inference import build_column, infer_type, parse_temporal
from .io import read_csv, write_csv
from .profile import ColumnProfile, TableProfile, profile_table
from .sketches import (
    ColumnSketch,
    DistinctCounter,
    ReservoirSample,
    SketchColumnStats,
    StreamProfile,
    StreamingHistogram,
    StreamingMoments,
    TableSketch,
    TypeVotes,
)
from .sources import (
    NA_TOKENS,
    CsvSource,
    JsonlSource,
    SqlitePushdown,
    SqliteSource,
    TableSource,
    from_source,
    resolve_source,
)
from .stats import ColumnStats, TableStats, column_stats, entropy, table_stats
from .table import Table

__all__ = [
    "EPOCH",
    "Column",
    "ColumnType",
    "Table",
    "build_column",
    "infer_type",
    "parse_temporal",
    "read_csv",
    "write_csv",
    "ColumnProfile",
    "TableProfile",
    "profile_table",
    "ColumnStats",
    "TableStats",
    "column_stats",
    "table_stats",
    "entropy",
    "ColumnSketch",
    "DistinctCounter",
    "ReservoirSample",
    "SketchColumnStats",
    "StreamProfile",
    "StreamingHistogram",
    "StreamingMoments",
    "TableSketch",
    "TypeVotes",
    "NA_TOKENS",
    "CsvSource",
    "JsonlSource",
    "SqliteSource",
    "SqlitePushdown",
    "TableSource",
    "from_source",
    "resolve_source",
]
