"""Typed columns of a relational table.

DeepEye distinguishes three column types (Section III, feature 5):

* **Categorical** (``Cat``) — a limited set of discrete values, e.g. carriers.
* **Numerical** (``Num``) — integers or floats, e.g. delays in minutes.
* **Temporal** (``Tem``) — timestamps, dates, years, e.g. scheduled time.

A :class:`Column` stores its values in a numpy array together with its
inferred :class:`ColumnType` and exposes the per-column statistics the
paper uses as features: the number of tuples ``|X|``, the number of
distinct values ``d(X)``, the unique ratio ``r(X) = d(X)/|X|`` and the
``min``/``max`` of the domain.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional, Sequence

import numpy as np

from ..errors import DatasetError

__all__ = ["ColumnType", "Column", "EPOCH"]

#: Reference epoch used to encode temporal values as float seconds.
EPOCH = _dt.datetime(1970, 1, 1)


class ColumnType(str, Enum):
    """The three data types DeepEye reasons about.

    The string values match the paper's abbreviations so that features,
    rules and error messages read like the paper: ``Cat``, ``Num``, ``Tem``.
    """

    CATEGORICAL = "Cat"
    NUMERICAL = "Num"
    TEMPORAL = "Tem"

    @property
    def is_groupable(self) -> bool:
        """Grouping applies to categorical and temporal columns (rules I, III)."""
        return self in (ColumnType.CATEGORICAL, ColumnType.TEMPORAL)

    @property
    def is_binnable(self) -> bool:
        """Binning applies to numerical and temporal columns (rules II, III)."""
        return self in (ColumnType.NUMERICAL, ColumnType.TEMPORAL)

    @property
    def is_sortable_on_x(self) -> bool:
        """Sorting rules: numeric and temporal x-values can be ordered."""
        return self in (ColumnType.NUMERICAL, ColumnType.TEMPORAL)


def _to_temporal_floats(values: Iterable) -> np.ndarray:
    """Encode datetimes/dates as float seconds since :data:`EPOCH`."""
    encoded = []
    for value in values:
        if isinstance(value, _dt.datetime):
            encoded.append((value - EPOCH).total_seconds())
        elif isinstance(value, _dt.date):
            as_dt = _dt.datetime(value.year, value.month, value.day)
            encoded.append((as_dt - EPOCH).total_seconds())
        elif isinstance(value, (int, float, np.integer, np.floating)):
            encoded.append(float(value))
        else:
            raise DatasetError(
                f"cannot encode {value!r} ({type(value).__name__}) as temporal"
            )
    return np.asarray(encoded, dtype=np.float64)


@dataclass
class Column:
    """A named, typed column of values.

    Parameters
    ----------
    name:
        Column name as it appears in the table schema.
    ctype:
        One of the three :class:`ColumnType` members.
    values:
        The raw values.  Numerical and temporal columns are stored as
        ``float64`` arrays (temporal values are seconds since the epoch);
        categorical columns are stored as object arrays of strings.
    """

    name: str
    ctype: ColumnType
    values: np.ndarray = field(repr=False)

    def __init__(self, name: str, ctype: ColumnType, values: Sequence) -> None:
        self.name = name
        self.ctype = ColumnType(ctype)
        self._fingerprint: Optional[str] = None
        self._hasher = None
        if self.ctype is ColumnType.CATEGORICAL:
            self.values = np.asarray([str(v) for v in values], dtype=object)
        elif self.ctype is ColumnType.TEMPORAL:
            self.values = _to_temporal_floats(values)
        else:
            try:
                self.values = np.asarray(values, dtype=np.float64)
            except (TypeError, ValueError) as exc:
                raise DatasetError(
                    f"column {name!r} declared numerical but holds "
                    f"non-numeric values"
                ) from exc

    def _absorb(self, hasher, values) -> None:
        """Feed ``values`` into ``hasher`` in the frozen byte encoding
        (categorical as UTF-8 strings with ``\\x1f`` separators,
        numerical/temporal as little-endian float64)."""
        if self.ctype is ColumnType.CATEGORICAL:
            for value in values:
                hasher.update(str(value).encode("utf-8"))
                hasher.update(b"\x1f")
        else:
            hasher.update(
                np.ascontiguousarray(values, dtype=np.float64).tobytes()
            )

    def fingerprint(self) -> str:
        """A stable content hash over this column's *type and values*.

        The column **name is deliberately excluded**: two columns holding
        identical data under different names (a ``carrier`` column in one
        table, ``airline`` in another) hash identically, which is what
        cross-table computation sharing keys on — a transform's output
        depends only on the values it scans, never on what the column is
        called.  Contrast :meth:`repro.dataset.table.Table.fingerprint`,
        which *does* cover names because a rename changes which charts
        are produced.  Like the table hash it is a hex SHA-256, stable
        across processes and platforms, and memoised (columns are
        immutable by convention).

        Internally the digest is kept as a *running* hash state over the
        prefix ``ctype tag + value bytes``, so :meth:`extended` can grow
        a column by hashing only the appended chunk (``O(delta)``) —
        appending bytes to a SHA-256 stream never rewrites the prefix.
        """
        if self._fingerprint is None:
            hasher = self._hasher
            if hasher is None:
                hasher = hashlib.sha256()
                hasher.update(self.ctype.value.encode("ascii"))
                hasher.update(b"\x00")
                self._absorb(hasher, self.values)
                self._hasher = hasher
            self._fingerprint = hasher.hexdigest()
        return self._fingerprint

    def extended(self, values: Sequence) -> "Column":
        """A new column with ``values`` appended (rows coerced like the
        constructor's), carrying the rolling content hash forward.

        When this column's hash state exists (it is built on the first
        :meth:`fingerprint` call), the extension copies it and absorbs
        only the new chunk's bytes — the appended column's fingerprint
        then costs ``O(len(values))`` instead of ``O(total rows)``.
        """
        chunk = Column(self.name, self.ctype, values)
        if len(chunk.values) == 0:
            return self
        clone = Column.__new__(Column)
        clone.name = self.name
        clone.ctype = self.ctype
        clone.values = np.concatenate([self.values, chunk.values])
        clone._fingerprint = None
        clone._hasher = None
        if self._hasher is not None:
            hasher = self._hasher.copy()
            self._absorb(hasher, chunk.values)
            clone._hasher = hasher
        return clone

    def __getstate__(self):
        # hashlib objects cannot pickle; the memoised hex digest (a
        # plain string) travels, the live hash state is rebuilt lazily.
        state = self.__dict__.copy()
        state["_hasher"] = None
        return state

    # ------------------------------------------------------------------
    # Statistics used as ML features (Section III, features 1-4)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    @property
    def num_tuples(self) -> int:
        """``|X|`` — the number of tuples in the column (feature 2)."""
        return len(self.values)

    @property
    def num_distinct(self) -> int:
        """``d(X)`` — the number of distinct values (feature 1)."""
        return len(self.distinct_values())

    @property
    def unique_ratio(self) -> float:
        """``r(X) = d(X) / |X|`` (feature 3); 0.0 for an empty column."""
        if len(self.values) == 0:
            return 0.0
        return self.num_distinct / len(self.values)

    def distinct_values(self) -> np.ndarray:
        """Distinct values in first-appearance order for Cat, sorted otherwise."""
        if self.ctype is ColumnType.CATEGORICAL:
            seen: dict = {}
            for value in self.values:
                seen.setdefault(value, None)
            return np.asarray(list(seen), dtype=object)
        return np.unique(self.values)

    def min(self) -> Optional[float]:
        """``min(X)`` for Num/Tem columns; ``None`` for categorical/empty."""
        if self.ctype is ColumnType.CATEGORICAL or len(self.values) == 0:
            return None
        return float(np.min(self.values))

    def max(self) -> Optional[float]:
        """``max(X)`` for Num/Tem columns; ``None`` for categorical/empty."""
        if self.ctype is ColumnType.CATEGORICAL or len(self.values) == 0:
            return None
        return float(np.max(self.values))

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def as_datetimes(self) -> list:
        """Decode a temporal column back into ``datetime`` objects."""
        if self.ctype is not ColumnType.TEMPORAL:
            raise DatasetError(f"column {self.name!r} is not temporal")
        return [EPOCH + _dt.timedelta(seconds=float(s)) for s in self.values]

    def take(self, indices: Sequence[int]) -> "Column":
        """A new column restricted to ``indices`` (row selection)."""
        return Column(self.name, self.ctype, self.values[np.asarray(indices)])

    def renamed(self, name: str) -> "Column":
        """A shallow copy of this column under a different name (the
        content fingerprint carries over — renames don't change it)."""
        clone = Column.__new__(Column)
        clone.name = name
        clone.ctype = self.ctype
        clone.values = self.values
        clone._fingerprint = self._fingerprint
        # Safe to share: the stored hash state is only ever read
        # (hexdigest) or copied (extended), never updated in place.
        clone._hasher = self._hasher
        return clone

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Column(name={self.name!r}, ctype={self.ctype.value}, "
            f"n={len(self.values)}, distinct={self.num_distinct})"
        )
