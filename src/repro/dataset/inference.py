"""Automatic column type inference.

The paper states that temporal data types "can be automatically detected
based on the attribute values" (Section II-A).  This module implements
that detection for raw (string or mixed) value sequences:

1. values that parse as timestamps/dates under a set of common formats
   are **temporal**;
2. values that parse as floats are **numerical** — unless they look like
   four-digit years (then temporal) or like low-cardinality integer codes
   (then categorical);
3. everything else is **categorical**.

Inference is majority-vote tolerant: a column is accepted as a type when
at least :data:`TYPE_THRESHOLD` of its non-empty values conform, which
mirrors how real CSVs contain occasional stray cells.
"""

from __future__ import annotations

import datetime as _dt
import math
from typing import Iterable, Optional, Sequence

import numpy as np

from .column import Column, ColumnType

__all__ = [
    "TYPE_THRESHOLD",
    "parse_temporal",
    "infer_type",
    "build_column",
]

#: Fraction of non-null values that must conform for a type to win.
TYPE_THRESHOLD = 0.95

#: Formats tried, in order, when parsing temporal strings.
_TEMPORAL_FORMATS = (
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%dT%H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%d",
    "%Y/%m/%d",
    "%d-%b %H:%M",  # "01-Jan 00:05" as in the paper's Table I
    "%d-%b",
    "%b %Y",
    "%Y-%m",
    "%m/%d/%Y",
    "%m/%d/%Y %H:%M",
    "%H:%M:%S",
    "%H:%M",
)

#: Year assumed for formats that lack one (e.g. "01-Jan 00:05").
_DEFAULT_YEAR = 2015


def parse_temporal(value) -> Optional[_dt.datetime]:
    """Parse a single raw value into a ``datetime``, or ``None``.

    Handles ``datetime``/``date`` instances, four-digit year integers, and
    strings in any of the :data:`_TEMPORAL_FORMATS`.
    """
    if isinstance(value, _dt.datetime):
        return value
    if isinstance(value, _dt.date):
        return _dt.datetime(value.year, value.month, value.day)
    if isinstance(value, (int, np.integer)) and 1800 <= int(value) <= 2200:
        return _dt.datetime(int(value), 1, 1)
    if isinstance(value, float) and value.is_integer() and 1800 <= value <= 2200:
        return _dt.datetime(int(value), 1, 1)
    if not isinstance(value, str):
        return None
    text = value.strip()
    if not text:
        return None
    for fmt in _TEMPORAL_FORMATS:
        try:
            parsed = _dt.datetime.strptime(text, fmt)
        except ValueError:
            continue
        if "%Y" not in fmt:
            parsed = parsed.replace(year=_DEFAULT_YEAR)
        return parsed
    return None


def _parse_number(value) -> Optional[float]:
    """Parse a raw value into a float, or ``None`` when it is not numeric."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float, np.integer, np.floating)):
        result = float(value)
        return result if math.isfinite(result) else None
    if isinstance(value, str):
        text = value.strip().replace(",", "")
        if not text:
            return None
        try:
            result = float(text)
        except ValueError:
            return None
        return result if math.isfinite(result) else None
    return None


def _non_null(values: Iterable) -> list:
    return [
        v
        for v in values
        if v is not None
        and not (isinstance(v, float) and math.isnan(v))
        and not (isinstance(v, str) and not v.strip())
    ]


def infer_type(values: Sequence) -> ColumnType:
    """Infer the :class:`ColumnType` of a raw value sequence.

    Empty or all-null columns default to categorical (the safest type: it
    supports grouping and counting but no arithmetic).
    """
    present = _non_null(values)
    if not present:
        return ColumnType.CATEGORICAL

    n = len(present)
    n_temporal = sum(1 for v in present if parse_temporal(v) is not None)
    numbers = [_parse_number(v) for v in present]
    n_numeric = sum(1 for v in numbers if v is not None)

    # Strings like "2015-01-03" also parse as neither number; integers like
    # 2015 parse as both.  Prefer temporal only when the values *look* like
    # dates rather than plain measurements: either they are non-numeric
    # strings, or they are all four-digit-year-like integers.
    if n_temporal / n >= TYPE_THRESHOLD:
        non_numeric_temporal = n_temporal > n_numeric
        year_like = n_numeric / n >= TYPE_THRESHOLD and all(
            v is not None and float(v).is_integer() and 1800 <= v <= 2200
            for v in numbers
        )
        if non_numeric_temporal or year_like:
            return ColumnType.TEMPORAL

    if n_numeric / n >= TYPE_THRESHOLD:
        return ColumnType.NUMERICAL
    return ColumnType.CATEGORICAL


def build_column(name: str, values: Sequence, ctype: Optional[ColumnType] = None) -> Column:
    """Build a typed :class:`Column`, inferring the type when not given.

    Raw values are coerced to the chosen representation; unparseable cells
    fall back to a neutral value (0.0 / epoch / empty string) so that a
    column with a handful of stray cells still loads.
    """
    if ctype is None:
        ctype = infer_type(values)
    ctype = ColumnType(ctype)

    if ctype is ColumnType.TEMPORAL:
        coerced = []
        for value in values:
            parsed = parse_temporal(value)
            if parsed is None:
                number = _parse_number(value)
                parsed = (
                    _dt.datetime(1970, 1, 1) + _dt.timedelta(seconds=number)
                    if number is not None
                    else _dt.datetime(1970, 1, 1)
                )
            coerced.append(parsed)
        return Column(name, ctype, coerced)

    if ctype is ColumnType.NUMERICAL:
        coerced = []
        for value in values:
            number = _parse_number(value)
            coerced.append(0.0 if number is None else number)
        return Column(name, ctype, coerced)

    return Column(name, ctype, ["" if v is None else str(v) for v in values])
