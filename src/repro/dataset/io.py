"""CSV loading and saving for :class:`~repro.dataset.table.Table`.

Real DeepEye consumed CSV exports of web tables; this module provides the
equivalent entry point so the examples can work against files on disk.
"""

from __future__ import annotations

import csv
import datetime as _dt
from pathlib import Path
from typing import Mapping, Optional, Union

from .column import ColumnType
from .table import Table

__all__ = ["read_csv", "write_csv"]


def read_csv(
    path: Union[str, Path],
    name: Optional[str] = None,
    types: Optional[Mapping[str, ColumnType]] = None,
    delimiter: str = ",",
) -> Table:
    """Load a CSV file into a typed :class:`Table`.

    Column types are inferred from the cell values unless pinned via
    ``types``.  The table name defaults to the file stem.

    Delegates to the chunked :class:`~repro.dataset.sources.CsvSource`
    so there is a single CSV parse path: missing-value tokens
    (:data:`~repro.dataset.sources.NA_TOKENS`, e.g. ``NA``/``null``)
    are normalised to nulls exactly as the other source backends do.
    """
    from .sources import CsvSource, from_source

    return from_source(
        CsvSource(path, name=name, delimiter=delimiter),
        materialize=True,
        types=types,
    )


def _format_cell(value) -> str:
    if isinstance(value, _dt.datetime):
        return value.isoformat(sep=" ")
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def write_csv(table: Table, path: Union[str, Path], delimiter: str = ",") -> None:
    """Write a table to disk as CSV.

    Temporal columns are decoded back to ISO timestamps so that a
    round-trip through :func:`read_csv` re-infers the temporal type.
    """
    path = Path(path)
    materialized = []
    for column in table.columns:
        if column.ctype is ColumnType.TEMPORAL:
            materialized.append(column.as_datetimes())
        else:
            materialized.append(list(column.values))
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(table.column_names)
        for i in range(table.num_rows):
            writer.writerow([_format_cell(col[i]) for col in materialized])
