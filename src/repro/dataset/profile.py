"""Table profiling: what DeepEye sees before it enumerates anything.

A profile summarises each column (type, cardinality, range, top
values), the pairwise correlation structure among numeric columns, and
the resulting search-space sizes — the pre-flight report a user reads
to understand why certain charts will or won't exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .column import Column, ColumnType
from .stats import ColumnStats, column_stats
from .table import Table

__all__ = ["ColumnProfile", "TableProfile", "profile_table"]


@dataclass(frozen=True)
class ColumnProfile:
    """One column's profile: statistics plus representative values."""

    stats: ColumnStats
    top_values: Tuple[Tuple[str, int], ...]

    @property
    def name(self) -> str:
        return self.stats.name

    @property
    def ctype(self) -> ColumnType:
        return self.stats.ctype

    def describe(self) -> str:
        """One-line column summary for reports."""
        parts = [
            f"{self.name} [{self.ctype.value}]",
            f"{self.stats.num_distinct} distinct / {self.stats.num_tuples} rows",
        ]
        if self.stats.min_value is not None:
            parts.append(f"range [{self.stats.min_value:g}, {self.stats.max_value:g}]")
        if self.top_values:
            head = ", ".join(f"{v}({c})" for v, c in self.top_values[:3])
            parts.append(f"top: {head}")
        return "; ".join(parts)


@dataclass
class TableProfile:
    """The full pre-enumeration picture of a table."""

    name: str
    num_rows: int
    columns: List[ColumnProfile]
    correlations: Dict[Tuple[str, str], float]
    two_column_space: int
    one_column_space: int

    def strongest_pairs(self, k: int = 5) -> List[Tuple[str, str, float]]:
        """The k most correlated numeric column pairs, strongest first."""
        ranked = sorted(
            self.correlations.items(), key=lambda item: -abs(item[1])
        )
        return [(a, b, value) for (a, b), value in ranked[:k]]

    def describe(self) -> str:
        """Multi-line profile: columns, space sizes, top correlations."""
        lines = [
            f"{self.name}: {self.num_rows} rows, {len(self.columns)} columns",
            f"search space: {self.two_column_space} two-column + "
            f"{self.one_column_space} one-column query forms",
        ]
        lines.extend("  " + profile.describe() for profile in self.columns)
        pairs = self.strongest_pairs(3)
        if pairs:
            lines.append("strongest correlations:")
            lines.extend(
                f"  {a} ~ {b}: {value:+.2f}" for a, b, value in pairs
            )
        return "\n".join(lines)


def _top_values(column: Column, k: int) -> Tuple[Tuple[str, int], ...]:
    if column.ctype is not ColumnType.CATEGORICAL:
        return ()
    values, counts = np.unique(
        np.asarray([str(v) for v in column.values], dtype=object),
        return_counts=True,
    )
    order = np.argsort(-counts)[:k]
    return tuple((str(values[i]), int(counts[i])) for i in order)


def profile_table(table: Table, top_k_values: int = 5) -> TableProfile:
    """Profile a table: per-column stats, correlations, search space."""
    from ..core.correlation import correlation
    from ..core.enumeration import one_column_space, two_column_space

    columns = [
        ColumnProfile(stats=column_stats(c), top_values=_top_values(c, top_k_values))
        for c in table.columns
    ]

    numeric = table.columns_of_type(ColumnType.NUMERICAL)
    correlations: Dict[Tuple[str, str], float] = {}
    for i, a in enumerate(numeric):
        for b in numeric[i + 1 :]:
            correlations[(a.name, b.name)] = correlation(a.values, b.values).value

    m = table.num_columns
    return TableProfile(
        name=table.name,
        num_rows=table.num_rows,
        columns=columns,
        correlations=correlations,
        two_column_space=two_column_space(m),
        one_column_space=one_column_space(m),
    )
