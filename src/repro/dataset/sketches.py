"""Streaming sketches: one-pass, bounded-memory table statistics.

A table too big to materialise can still drive the selection pipeline:
everything DeepEye needs from the *whole* column — its inferred type,
``|X|``, ``d(X)``, ``r(X)``, ``min``/``max`` (features 1–5 of Section
III) — is computable in a single streaming pass with constant memory,
and the row-level detail the transform kernels need comes from a
seeded reservoir sample.  This module provides the sketch primitives
and the :class:`TableSketch` that composes them per column:

* :class:`StreamingMoments` — exact count/min/max plus mean/variance
  via Welford/Chan chunk combination;
* :class:`DistinctCounter` — exact (hash-set) distinct counting that
  degrades to a KMV (k minimum values) estimator once a spill
  threshold is crossed, so ``d(X)`` is exact for materialisable
  columns and within ~``1/sqrt(k)`` relative error beyond;
* :class:`StreamingHistogram` — a Ben-Haim/Tom-Tov style mergeable
  histogram for streaming quantiles;
* :class:`ReservoirSample` — algorithm-R row reservoir with one RNG
  draw per row past capacity, so the sample is a pure function of
  ``(seed, row order)`` and never of chunk boundaries;
* :class:`TypeVotes` — an additive re-statement of
  :func:`repro.dataset.inference.infer_type`: feeding every raw value
  through :meth:`TypeVotes.add` and calling :meth:`TypeVotes.decide`
  returns *exactly* what ``infer_type`` would on the full sequence.

Because the final column type is only known at end of stream, each
:class:`ColumnSketch` tracks all three coercion interpretations
(numeric / temporal / categorical) simultaneously, using the exact
coercion rules of :func:`repro.dataset.inference.build_column`; the
finished :class:`StreamProfile` then exposes the statistics of the
winning interpretation, which the enumeration layer substitutes for
:meth:`repro.core.features.ColumnFeatures.of` on sample-backed tables.
"""

from __future__ import annotations

import datetime as _dt
import hashlib
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .column import EPOCH, ColumnType
from .inference import TYPE_THRESHOLD, _parse_number, build_column, parse_temporal
from .table import Table

__all__ = [
    "StreamingMoments",
    "DistinctCounter",
    "StreamingHistogram",
    "ReservoirSample",
    "TypeVotes",
    "ColumnSketch",
    "SketchColumnStats",
    "StreamProfile",
    "TableSketch",
    "temporal_seconds",
    "numeric_value",
    "categorical_token",
]

#: Exact-set distinct counting spills to the KMV estimator past this.
DEFAULT_DISTINCT_SPILL = 65536

#: KMV size: relative error ~ 1/sqrt(k) ~ 2.2%.
DEFAULT_KMV_K = 2048

#: Default reservoir capacity (rows kept for the sample table).
DEFAULT_SAMPLE_ROWS = 100_000

#: Default seed: the paper's year, like ``_DEFAULT_YEAR``.
DEFAULT_SEED = 2015

#: Cap on the per-column string-parse memo (token -> parse outcome).
_MEMO_LIMIT = 65536


# ----------------------------------------------------------------------
# Coercion helpers — the exact value mapping of ``build_column``
# ----------------------------------------------------------------------
def numeric_value(value) -> float:
    """The float ``build_column`` would store for one NUMERICAL cell."""
    number = _parse_number(value)
    return 0.0 if number is None else number


def temporal_seconds(value) -> float:
    """The epoch-seconds float ``build_column`` + :class:`Column` would
    store for one TEMPORAL cell (including the ``timedelta``
    microsecond rounding of the numeric fallback)."""
    parsed = parse_temporal(value)
    if parsed is not None:
        return (parsed - EPOCH).total_seconds()
    number = _parse_number(value)
    if number is None:
        return 0.0
    return _dt.timedelta(seconds=number).total_seconds()


def categorical_token(value) -> str:
    """The string ``build_column`` would store for one CATEGORICAL cell."""
    return "" if value is None else str(value)


# ----------------------------------------------------------------------
# Moments
# ----------------------------------------------------------------------
class StreamingMoments:
    """Count / min / max / mean / variance over a stream of float chunks.

    Count, min and max are exact; mean and M2 combine chunk statistics
    with Chan's parallel update, numerically stable for the chunk sizes
    ingestion uses.
    """

    __slots__ = ("count", "mean", "m2", "minimum", "maximum")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0
        self.minimum = np.inf
        self.maximum = -np.inf

    def add_chunk(self, values: np.ndarray) -> None:
        """Fold one chunk of float values into the running moments."""
        values = np.asarray(values, dtype=np.float64)
        n = len(values)
        if n == 0:
            return
        c_mean = float(values.mean())
        c_m2 = float(((values - c_mean) ** 2).sum())
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))
        if self.count == 0:
            self.count, self.mean, self.m2 = n, c_mean, c_m2
            return
        total = self.count + n
        delta = c_mean - self.mean
        self.mean += delta * n / total
        self.m2 += c_m2 + delta * delta * self.count * n / total
        self.count = total

    @property
    def variance(self) -> float:
        return self.m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    @property
    def min(self) -> Optional[float]:
        return None if self.count == 0 else float(self.minimum)

    @property
    def max(self) -> Optional[float]:
        return None if self.count == 0 else float(self.maximum)


# ----------------------------------------------------------------------
# Distinct counting (exact set -> KMV)
# ----------------------------------------------------------------------
_SPLITMIX_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SPLITMIX_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SPLITMIX_M2 = np.uint64(0x94D049BB133111EB)
_U64_SPAN = float(2**64)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over uint64 inputs."""
    z = x + _SPLITMIX_GAMMA
    z = (z ^ (z >> np.uint64(30))) * _SPLITMIX_M1
    z = (z ^ (z >> np.uint64(27))) * _SPLITMIX_M2
    return z ^ (z >> np.uint64(31))


def _hash_floats(values: np.ndarray) -> np.ndarray:
    """64-bit hashes of float64 values via their (canonicalised) bits.

    ``+ 0.0`` folds ``-0.0`` into ``0.0`` so the two equal floats hash
    identically; coerced columns never contain NaN.
    """
    canonical = np.ascontiguousarray(
        np.asarray(values, dtype=np.float64) + 0.0
    )
    return _splitmix64(canonical.view(np.uint64))


def _hash_string(token: str) -> int:
    """64-bit hash of a string token (process-independent, unlike
    ``hash()`` under ``PYTHONHASHSEED``)."""
    digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class DistinctCounter:
    """``d(X)`` over a stream: exact while small, KMV beyond.

    Values are reduced to 64-bit hashes; while the hash set stays under
    ``spill_limit`` the count is exact (up to the negligible 64-bit
    collision probability).  Past the limit the counter keeps only the
    ``k`` minimum hashes and estimates ``(k - 1) / (kth_min / 2^64)``.
    """

    __slots__ = ("spill_limit", "k", "_exact", "_kmv")

    def __init__(
        self,
        spill_limit: int = DEFAULT_DISTINCT_SPILL,
        k: int = DEFAULT_KMV_K,
    ) -> None:
        self.spill_limit = int(spill_limit)
        self.k = int(k)
        self._exact: Optional[set] = set()
        self._kmv: Optional[np.ndarray] = None

    @property
    def exact(self) -> bool:
        return self._exact is not None

    def _spill(self) -> None:
        hashes = np.fromiter(
            self._exact, dtype=np.uint64, count=len(self._exact)
        )
        hashes.sort()
        self._kmv = hashes[: self.k]
        self._exact = None

    def _add_hashes(self, hashes: np.ndarray) -> None:
        if self._exact is not None:
            self._exact.update(hashes.tolist())
            if len(self._exact) > self.spill_limit:
                self._spill()
            return
        merged = np.union1d(self._kmv, hashes)
        self._kmv = merged[: self.k]

    def add_floats(self, values: np.ndarray) -> None:
        """Count the distinct values of one float chunk."""
        if len(values):
            self._add_hashes(np.unique(_hash_floats(values)))

    def add_strings(self, tokens: Iterable[str]) -> None:
        """Count the distinct tokens of one string chunk."""
        distinct = set(tokens)
        if distinct:
            self._add_hashes(
                np.asarray(
                    [_hash_string(t) for t in distinct], dtype=np.uint64
                )
            )

    def estimate(self) -> int:
        """The distinct count: exact pre-spill, KMV estimate after."""
        if self._exact is not None:
            return len(self._exact)
        kmv = self._kmv
        if len(kmv) < self.k:
            return len(kmv)
        kth = float(kmv[-1]) + 1.0
        return int(round((self.k - 1) / (kth / _U64_SPAN)))


# ----------------------------------------------------------------------
# Streaming quantiles (Ben-Haim/Tom-Tov mergeable histogram)
# ----------------------------------------------------------------------
class StreamingHistogram:
    """A bounded set of (centroid, count) bins supporting quantiles.

    New chunks are deduplicated, merged into the sorted centroid list,
    and the closest adjacent pair is collapsed until the bin budget
    holds — the Ben-Haim & Tom-Tov streaming-decision-tree histogram.
    """

    __slots__ = ("max_bins", "_centers", "_counts")

    def __init__(self, max_bins: int = 128) -> None:
        self.max_bins = int(max_bins)
        self._centers: np.ndarray = np.empty(0, dtype=np.float64)
        self._counts: np.ndarray = np.empty(0, dtype=np.float64)

    def add_chunk(self, values: np.ndarray) -> None:
        """Merge one chunk of float values into the bounded bin set."""
        values = np.asarray(values, dtype=np.float64)
        if len(values) == 0:
            return
        new_centers, new_counts = np.unique(values, return_counts=True)
        centers = np.concatenate([self._centers, new_centers])
        counts = np.concatenate(
            [self._counts, new_counts.astype(np.float64)]
        )
        order = np.argsort(centers, kind="stable")
        centers, counts = centers[order], counts[order]
        # Collapse exact duplicates, then the closest pairs.
        keep_mask = np.ones(len(centers), dtype=bool)
        dup = np.flatnonzero(np.diff(centers) == 0.0)
        for i in dup:
            counts[i + 1] += counts[i]
            keep_mask[i] = False
        centers, counts = centers[keep_mask], counts[keep_mask]
        while len(centers) > self.max_bins:
            gaps = np.diff(centers)
            i = int(np.argmin(gaps))
            total = counts[i] + counts[i + 1]
            merged = (
                centers[i] * counts[i] + centers[i + 1] * counts[i + 1]
            ) / total
            centers = np.concatenate(
                [centers[:i], [merged], centers[i + 2:]]
            )
            counts = np.concatenate([counts[:i], [total], counts[i + 2:]])
        self._centers, self._counts = centers, counts

    def quantile(self, q: float) -> Optional[float]:
        """Approximate q-quantile (0 <= q <= 1); None when empty."""
        if len(self._centers) == 0:
            return None
        cumulative = np.cumsum(self._counts)
        target = q * cumulative[-1]
        idx = int(np.searchsorted(cumulative, target))
        idx = min(idx, len(self._centers) - 1)
        return float(self._centers[idx])

    def quantiles(self, qs: Sequence[float]) -> Tuple[float, ...]:
        """Approximate quantiles for each q in ``qs``."""
        return tuple(self.quantile(q) for q in qs)


# ----------------------------------------------------------------------
# Reservoir sampling
# ----------------------------------------------------------------------
class ReservoirSample:
    """Algorithm-R reservoir: uniform sample of a stream of rows.

    One ``randrange`` draw per row past capacity, so the sample depends
    only on ``(seed, arrival order)`` — never on how the stream was
    chunked.  While the stream fits in ``capacity`` the sample *is* the
    stream, in order, which is what makes small-table streaming builds
    byte-identical to materialised ones.
    """

    __slots__ = ("capacity", "rows", "_rng", "_seen")

    def __init__(self, capacity: int, seed: int = DEFAULT_SEED) -> None:
        if capacity < 1:
            raise ValueError(f"reservoir capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.rows: List[tuple] = []
        self._rng = random.Random(seed)
        self._seen = 0

    def offer(self, row: tuple) -> None:
        """Offer one row to the reservoir (kept or dropped uniformly)."""
        i = self._seen
        self._seen += 1
        if len(self.rows) < self.capacity:
            self.rows.append(row)
            return
        j = self._rng.randrange(i + 1)
        if j < self.capacity:
            self.rows[j] = row

    @property
    def seen(self) -> int:
        return self._seen

    @property
    def saturated(self) -> bool:
        """True once rows have been dropped (sample != full stream)."""
        return self._seen > self.capacity


# ----------------------------------------------------------------------
# Additive type inference
# ----------------------------------------------------------------------
class TypeVotes:
    """A streaming restatement of :func:`~repro.dataset.inference.infer_type`.

    :meth:`add` applies the same ``_non_null`` filter and per-value
    parses; :meth:`decide` replays the exact threshold logic, so for any
    value sequence ``decide() == infer_type(values)``.
    """

    __slots__ = ("present", "n_temporal", "n_numeric", "year_like_all")

    def __init__(self) -> None:
        self.present = 0
        self.n_temporal = 0
        self.n_numeric = 0
        #: ``infer_type``'s year_like requires *every* parsed number to
        #: be a non-None integer in [1800, 2200]; one counterexample is
        #: permanent.
        self.year_like_all = True

    def add(self, value, number: Optional[float], is_temporal: bool) -> None:
        """Record one *present* (non-null) value's parse outcomes."""
        self.present += 1
        if is_temporal:
            self.n_temporal += 1
        if number is not None:
            self.n_numeric += 1
        if self.year_like_all:
            self.year_like_all = (
                number is not None
                and float(number).is_integer()
                and 1800 <= number <= 2200
            )

    def decide(self) -> ColumnType:
        """Replay ``infer_type``'s threshold logic over the tallies."""
        if self.present == 0:
            return ColumnType.CATEGORICAL
        n = self.present
        if self.n_temporal / n >= TYPE_THRESHOLD:
            non_numeric_temporal = self.n_temporal > self.n_numeric
            year_like = (
                self.n_numeric / n >= TYPE_THRESHOLD and self.year_like_all
            )
            if non_numeric_temporal or year_like:
                return ColumnType.TEMPORAL
        if self.n_numeric / n >= TYPE_THRESHOLD:
            return ColumnType.NUMERICAL
        return ColumnType.CATEGORICAL


def _is_null(value) -> bool:
    """The ``_non_null`` drop condition of the inference module."""
    if value is None:
        return True
    if isinstance(value, float) and value != value:
        return True
    if isinstance(value, str) and not value.strip():
        return True
    return False


# ----------------------------------------------------------------------
# Per-column sketch (all three interpretations at once)
# ----------------------------------------------------------------------
class ColumnSketch:
    """One column's streaming state across the three type interpretations.

    The final type is unknown until end of stream, so every chunk is
    coerced three ways — numeric floats, temporal epoch-seconds,
    categorical tokens — using the exact ``build_column`` rules, and the
    matching moments/distinct/quantile sketches advance in lockstep.
    """

    def __init__(
        self,
        name: str,
        spill_limit: int = DEFAULT_DISTINCT_SPILL,
        kmv_k: int = DEFAULT_KMV_K,
    ) -> None:
        self.name = name
        self.rows = 0
        self.votes = TypeVotes()
        self.num_moments = StreamingMoments()
        self.num_distinct = DistinctCounter(spill_limit, kmv_k)
        self.num_histogram = StreamingHistogram()
        self.tem_moments = StreamingMoments()
        self.tem_distinct = DistinctCounter(spill_limit, kmv_k)
        self.cat_distinct = DistinctCounter(spill_limit, kmv_k)
        #: string token -> (number, temporal_seconds or None-parse marker)
        self._memo: Dict[str, Tuple[Optional[float], Optional[float], bool]] = {}

    def _parse(self, value) -> Tuple[Optional[float], float, bool]:
        """``(number, temporal_seconds, is_temporal)`` for one raw value."""
        if isinstance(value, str) and len(self._memo) <= _MEMO_LIMIT:
            hit = self._memo.get(value)
            if hit is not None:
                return hit
        number = _parse_number(value)
        if number is not None and isinstance(value, str):
            # A float-parseable string can never satisfy any temporal
            # format: each format demands a '-', '/', ':' or month-name
            # literal that the float grammar cannot contain.  Skipping
            # the strptime cascade here is the difference between ~3k
            # and ~50k rows/s on numeric-text streams.
            parsed = None
        else:
            parsed = parse_temporal(value)
        if parsed is not None:
            seconds = (parsed - EPOCH).total_seconds()
            is_temporal = True
        else:
            is_temporal = False
            seconds = (
                _dt.timedelta(seconds=number).total_seconds()
                if number is not None
                else 0.0
            )
        outcome = (number, seconds, is_temporal)
        if isinstance(value, str) and len(self._memo) < _MEMO_LIMIT:
            self._memo[value] = outcome
        return outcome

    def add_chunk(self, values: Sequence) -> None:
        """Feed one chunk of raw cells through all three coercions."""
        n = len(values)
        if n == 0:
            return
        self.rows += n
        nums = np.empty(n, dtype=np.float64)
        tems = np.empty(n, dtype=np.float64)
        cats: List[str] = []
        votes = self.votes
        for i, value in enumerate(values):
            number, seconds, is_temporal = self._parse(value)
            nums[i] = 0.0 if number is None else number
            tems[i] = seconds
            cats.append(categorical_token(value))
            if not _is_null(value):
                votes.add(value, number, is_temporal)
        self.num_moments.add_chunk(nums)
        self.num_distinct.add_floats(nums)
        self.num_histogram.add_chunk(nums)
        self.tem_moments.add_chunk(tems)
        self.tem_distinct.add_floats(tems)
        self.cat_distinct.add_strings(cats)

    def finish(self, ctype: Optional[ColumnType] = None) -> "SketchColumnStats":
        """The final per-column statistics under ``ctype`` (defaults to
        the streamed type vote)."""
        decided = ColumnType(ctype) if ctype is not None else self.votes.decide()
        if decided is ColumnType.NUMERICAL:
            moments, distinct = self.num_moments, self.num_distinct
        elif decided is ColumnType.TEMPORAL:
            moments, distinct = self.tem_moments, self.tem_distinct
        else:
            moments, distinct = None, self.cat_distinct
        num_distinct = distinct.estimate()
        return SketchColumnStats(
            name=self.name,
            ctype=decided,
            num_tuples=self.rows,
            num_distinct=num_distinct,
            distinct_exact=distinct.exact,
            min_value=moments.min if moments is not None else None,
            max_value=moments.max if moments is not None else None,
            mean=moments.mean if moments is not None and moments.count else None,
            std=moments.std if moments is not None and moments.count else None,
            quantiles=(
                self.num_histogram.quantiles((0.25, 0.5, 0.75))
                if decided is ColumnType.NUMERICAL and self.rows
                else ()
            ),
        )


@dataclass(frozen=True)
class SketchColumnStats:
    """Whole-stream statistics of one column under its final type.

    ``unique_ratio``/``min_value``/``max_value`` follow the exact
    conventions of :class:`repro.core.features.ColumnFeatures` (None
    min/max for categorical or empty columns) so the enumeration layer
    can substitute these for materialised-column features directly.
    """

    name: str
    ctype: ColumnType
    num_tuples: int
    num_distinct: int
    distinct_exact: bool
    min_value: Optional[float]
    max_value: Optional[float]
    mean: Optional[float]
    std: Optional[float]
    quantiles: Tuple[Optional[float], ...]

    @property
    def unique_ratio(self) -> float:
        if self.num_tuples == 0:
            return 0.0
        return self.num_distinct / self.num_tuples


@dataclass(frozen=True)
class StreamProfile:
    """The finished one-pass profile of a streamed table."""

    rows: int
    columns: Tuple[SketchColumnStats, ...]
    sample_rows: int
    sample_exact: bool
    seed: int

    def stats_for(self, name: str) -> Optional[SketchColumnStats]:
        """The stats of the named column, or None when absent."""
        for stats in self.columns:
            if stats.name == name:
                return stats
        return None

    def digest(self) -> str:
        """Content hash of the profile — part of the cache scope of the
        sample table, so two streams with coincidentally identical
        samples but different full-data statistics never share cache
        entries."""
        hasher = hashlib.sha256()
        hasher.update(f"rows={self.rows};seed={self.seed};".encode())
        for s in self.columns:
            hasher.update(
                (
                    f"{s.name}|{s.ctype.value}|{s.num_tuples}|"
                    f"{s.num_distinct}|{s.min_value!r}|{s.max_value!r}|"
                    f"{s.mean!r}|{s.std!r}\x1e"
                ).encode("utf-8")
            )
        return hasher.hexdigest()

    def describe(self) -> str:
        """A human-readable multi-line summary of the profile."""
        lines = [
            f"stream profile: {self.rows} rows "
            f"({self.sample_rows} sampled"
            f"{', exact' if self.sample_exact else ''})"
        ]
        for s in self.columns:
            approx = "" if s.distinct_exact else "~"
            span = (
                f" range [{s.min_value:g}, {s.max_value:g}]"
                if s.min_value is not None
                else ""
            )
            lines.append(
                f"  {s.name} [{s.ctype.value}] {approx}{s.num_distinct} "
                f"distinct / {s.num_tuples} rows{span}"
            )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# The whole-table sketch
# ----------------------------------------------------------------------
class TableSketch:
    """Per-column sketches plus one row reservoir, fed chunk by chunk.

    ``add_rows`` consumes row tuples (already token-normalised by the
    source layer); ``finish`` freezes the profile; ``sample_table``
    builds the sample-backed :class:`~repro.dataset.table.Table` with
    every column pinned to its full-stream inferred type — the pinning
    is what makes a 1%-sample table type-stable no matter which rows
    survived the reservoir.
    """

    def __init__(
        self,
        header: Sequence[str],
        sample_capacity: int = DEFAULT_SAMPLE_ROWS,
        seed: int = DEFAULT_SEED,
        spill_limit: int = DEFAULT_DISTINCT_SPILL,
        kmv_k: int = DEFAULT_KMV_K,
    ) -> None:
        self.header = list(header)
        self.seed = int(seed)
        self.columns = [
            ColumnSketch(name, spill_limit, kmv_k) for name in self.header
        ]
        self.reservoir = ReservoirSample(sample_capacity, seed)
        self.rows_seen = 0

    def add_rows(self, rows: Sequence[tuple]) -> None:
        """Feed one chunk of rows to every column sketch + reservoir."""
        if not rows:
            return
        self.rows_seen += len(rows)
        offer = self.reservoir.offer
        for row in rows:
            offer(row)
        width = len(self.header)
        for j in range(width):
            self.columns[j].add_chunk([row[j] for row in rows])

    def decided_types(
        self, overrides: Optional[Dict[str, ColumnType]] = None
    ) -> Dict[str, ColumnType]:
        """Final per-column types: stream vote unless overridden."""
        overrides = overrides or {}
        return {
            sketch.name: ColumnType(
                overrides.get(sketch.name, sketch.votes.decide())
            )
            for sketch in self.columns
        }

    def finish(
        self, types: Optional[Dict[str, ColumnType]] = None
    ) -> StreamProfile:
        """Freeze the stream into a :class:`StreamProfile`."""
        decided = self.decided_types(types)
        return StreamProfile(
            rows=self.rows_seen,
            columns=tuple(
                sketch.finish(decided[sketch.name]) for sketch in self.columns
            ),
            sample_rows=len(self.reservoir.rows),
            sample_exact=not self.reservoir.saturated,
            seed=self.seed,
        )

    def sample_table(
        self,
        name: str,
        types: Optional[Dict[str, ColumnType]] = None,
    ) -> Table:
        """Build the reservoir-sample :class:`Table` with pinned types."""
        decided = self.decided_types(types)
        rows = self.reservoir.rows
        columns = [
            build_column(
                col_name,
                [row[j] for row in rows],
                decided[col_name],
            )
            for j, col_name in enumerate(self.header)
        ]
        return Table(name=name, columns=columns)
