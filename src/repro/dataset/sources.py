"""Multi-backend ingestion: chunked CSV, JSONL, and sqlite SQL sources.

The selection pipeline historically had exactly one entry point — an
in-memory CSV — which means a 10M-row table pays full materialisation
before the first transform kernel runs.  This module adds a
``TableSource`` layer with three backends behind one chunked-iteration
protocol, and two build modes in :func:`from_source`:

* **materialized** — gather every (NA-normalised) row and build a plain
  :class:`~repro.dataset.table.Table` through the exact
  ``Table.from_rows`` path :func:`repro.dataset.io.read_csv` has always
  used, so small tables stay byte-identical to the historical loader.
  A materialised sqlite source additionally carries a
  :class:`SqlitePushdown` provider that translates
  ``GROUP BY`` / ``BIN INTO`` / ``BIN BY`` transform signatures into SQL
  ``GROUP BY`` queries — bucket arrays come back from the database and
  raw rows never enter Python.
* **streaming** — feed each chunk through a
  :class:`~repro.dataset.sketches.TableSketch` (one pass, bounded
  memory) and build a reservoir-sample table whose column types are
  pinned to the full-stream vote and whose per-column features come
  from the sketch's exact streaming statistics.

Every built table is annotated with ``source_info`` (kind, content id,
query fingerprint, mode) that flows into request events, selection
results, and provenance reports, and with a ``cache_scope`` that keys
the existing L1–L4 cache levels (see ``Table.cache_fingerprint``) so
pushdown-backed and sample-backed results can never collide with pure
in-memory ones.

NA handling is unified here: :data:`NA_TOKENS` is the single token
table shared by all three backends (and, via delegation, by
``read_csv``), so the same logical table ingested from CSV, JSONL, or
sqlite coerces cell-for-cell identically.
"""

from __future__ import annotations

import csv
import hashlib
import json
import sqlite3
import time
from pathlib import Path
from typing import (
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

import numpy as np

from ..errors import DatasetError
from ..obs.context import request_scope
from ..obs.trace import maybe_span
from .column import Column, ColumnType
from .inference import _parse_number
from .sketches import (
    DEFAULT_SAMPLE_ROWS,
    DEFAULT_SEED,
    TableSketch,
    categorical_token,
    temporal_seconds,
)
from .table import Table

__all__ = [
    "NA_TOKENS",
    "normalize_cell",
    "TableSource",
    "CsvSource",
    "JsonlSource",
    "SqliteSource",
    "SqlitePushdown",
    "resolve_source",
    "from_source",
    "DEFAULT_CHUNK_ROWS",
    "DEFAULT_MATERIALIZE_ROWS",
]

#: Rows per chunk handed to the sketch / accumulated per batch.
DEFAULT_CHUNK_ROWS = 65536

#: ``materialize="auto"`` switches to streaming past this many rows.
DEFAULT_MATERIALIZE_ROWS = 500_000

#: The one shared missing-value token table (case-insensitive, after
#: stripping).  Every backend maps these to ``None`` before type
#: inference, which is what makes the same logical table byte-identical
#: across CSV, JSONL, and sqlite ingestion.
NA_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none"})


def normalize_cell(value):
    """Map NA-token strings to ``None``; pass everything else through."""
    if isinstance(value, str) and value.strip().lower() in NA_TOKENS:
        return None
    return value


def _normalize_row(row: Sequence) -> tuple:
    return tuple(normalize_cell(value) for value in row)


def _short_digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------
class TableSource:
    """One chunked, restartable relational data source.

    Subclasses yield ``(header, rows_chunk)`` pairs from
    :meth:`iter_chunks` — the header is identical in every pair, rows
    are NA-normalised tuples in header order.  Identity accessors
    (:meth:`source_id`, :meth:`query_fingerprint`, :meth:`describe`)
    feed observability and cache scoping; they never read data.
    """

    kind: str = "abstract"

    def iter_chunks(
        self, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[Tuple[List[str], List[tuple]]]:
        """Yield ``(header, rows_chunk)`` pairs over the whole relation."""
        raise NotImplementedError

    def count_rows(self) -> Optional[int]:
        """Exact row count when the backend can answer it cheaply."""
        return None

    @property
    def default_name(self) -> str:
        raise NotImplementedError

    def describe(self) -> str:
        """A human-readable one-line identity of the source."""
        raise NotImplementedError

    def source_id(self) -> str:
        """A short stable digest of the source identity (not the data)."""
        return _short_digest(f"{self.kind}|{self.describe()}")

    def query_fingerprint(self) -> Optional[str]:
        """Digest of the defining query, for query-backed sources only."""
        return None


class CsvSource(TableSource):
    """Chunked CSV reader — the single CSV parse path.

    ``read_csv`` delegates its materialised loads here, so the historic
    error contract is preserved exactly: an empty file raises
    ``DatasetError(f"{path}: empty CSV file")``, and a ragged row in
    streaming mode raises with the same row index ``Table.from_rows``
    would report.
    """

    kind = "csv"

    def __init__(
        self,
        path: Union[str, Path],
        name: Optional[str] = None,
        delimiter: str = ",",
        encoding: str = "utf-8",
    ) -> None:
        self.path = Path(path)
        self.name = name
        self.delimiter = delimiter
        self.encoding = encoding

    @property
    def default_name(self) -> str:
        return self.name or self.path.stem

    def describe(self) -> str:
        """The CSV path and delimiter."""
        return f"{self.path} (delimiter={self.delimiter!r})"

    def iter_chunks(
        self, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[Tuple[List[str], List[tuple]]]:
        """Yield NA-normalised row chunks, validating row width."""
        with self.path.open(newline="", encoding=self.encoding) as handle:
            reader = csv.reader(handle, delimiter=self.delimiter)
            try:
                header = next(reader)
            except StopIteration:
                raise DatasetError(f"{self.path}: empty CSV file") from None
            chunk: List[tuple] = []
            index = 0
            for row in reader:
                if len(row) != len(header):
                    raise DatasetError(
                        f"table {self.default_name!r}: row {index} has "
                        f"{len(row)} cells, expected {len(header)}"
                    )
                chunk.append(_normalize_row(row))
                index += 1
                if len(chunk) >= chunk_rows:
                    yield header, chunk
                    chunk = []
            yield header, chunk


class JsonlSource(TableSource):
    """Chunked JSON-lines reader (one object per line).

    The schema is the key order of the first record; later records may
    omit keys (missing cells become ``None``) but introducing a key the
    first record lacked is a :class:`DatasetError` — a streaming reader
    cannot retroactively add a column to chunks it already emitted.
    """

    kind = "jsonl"

    def __init__(
        self,
        path: Union[str, Path],
        name: Optional[str] = None,
        encoding: str = "utf-8",
    ) -> None:
        self.path = Path(path)
        self.name = name
        self.encoding = encoding

    @property
    def default_name(self) -> str:
        return self.name or self.path.stem

    def describe(self) -> str:
        """The JSONL path."""
        return str(self.path)

    @staticmethod
    def _cell(value):
        if isinstance(value, (dict, list)):
            # Nested JSON has no relational shape; keep its text form.
            value = json.dumps(value, sort_keys=True)
        return normalize_cell(value)

    def iter_chunks(
        self, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[Tuple[List[str], List[tuple]]]:
        """Yield row chunks under the first record's key schema."""
        header: Optional[List[str]] = None
        known: Optional[frozenset] = None
        chunk: List[tuple] = []
        with self.path.open(encoding=self.encoding) as handle:
            for line_number, line in enumerate(handle, start=1):
                text = line.strip()
                if not text:
                    continue
                try:
                    record = json.loads(text)
                except json.JSONDecodeError as exc:
                    raise DatasetError(
                        f"{self.path}:{line_number}: invalid JSON ({exc})"
                    ) from None
                if not isinstance(record, dict):
                    raise DatasetError(
                        f"{self.path}:{line_number}: expected a JSON "
                        f"object per line, got {type(record).__name__}"
                    )
                if header is None:
                    header = list(record)
                    known = frozenset(header)
                unknown = [key for key in record if key not in known]
                if unknown:
                    raise DatasetError(
                        f"{self.path}:{line_number}: keys {unknown} not in "
                        f"the first record's schema {header}"
                    )
                chunk.append(
                    tuple(self._cell(record.get(key)) for key in header)
                )
                if len(chunk) >= chunk_rows:
                    yield header, chunk
                    chunk = []
        if header is None:
            raise DatasetError(f"{self.path}: empty JSONL file")
        yield header, chunk


def _quote_ident(name: str) -> str:
    return '"' + name.replace('"', '""') + '"'


class SqliteSource(TableSource):
    """A stdlib ``sqlite3`` relation: a table name or an arbitrary query.

    ``table`` sources keep ``rowid`` visible (needed by the pushdown's
    first-appearance ordering); ``query`` sources wrap the statement as
    a subquery, which strips ``rowid`` — GROUP BY pushdown then falls
    back per chart where ordering matters.
    """

    kind = "sqlite"

    def __init__(
        self,
        path: Union[str, Path],
        table: Optional[str] = None,
        query: Optional[str] = None,
        name: Optional[str] = None,
    ) -> None:
        if (table is None) == (query is None):
            raise DatasetError(
                "SqliteSource needs exactly one of table= or query="
            )
        self.path = Path(path)
        self.table = table
        self.query = query
        self.name = name

    @property
    def default_name(self) -> str:
        if self.name:
            return self.name
        return self.table if self.table is not None else self.path.stem

    def describe(self) -> str:
        """The database path plus table name or query digest."""
        relation = (
            f"table {self.table}" if self.table is not None
            else f"query sha256:{_short_digest(self.query)}"
        )
        return f"{self.path} ({relation})"

    def query_fingerprint(self) -> Optional[str]:
        """Digest of the defining SQL query (None for table sources)."""
        if self.query is None:
            return None
        return _short_digest(self.query)

    def from_clause(self) -> str:
        """The relation as a SQL FROM operand (table keeps rowid)."""
        if self.table is not None:
            return _quote_ident(self.table)
        return f"({self.query})"

    def count_rows(self) -> Optional[int]:
        conn = sqlite3.connect(str(self.path))
        try:
            row = conn.execute(
                f"SELECT COUNT(*) FROM {self.from_clause()}"
            ).fetchone()
        finally:
            conn.close()
        return int(row[0])

    def iter_chunks(
        self, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> Iterator[Tuple[List[str], List[tuple]]]:
        """Yield NA-normalised row chunks via ``fetchmany``."""
        conn = sqlite3.connect(str(self.path))
        try:
            cursor = conn.execute(
                f"SELECT * FROM {self.from_clause()}"
            )
            header = [col[0] for col in cursor.description]
            while True:
                rows = cursor.fetchmany(chunk_rows)
                yield header, [_normalize_row(row) for row in rows]
                if len(rows) < chunk_rows:
                    break
        finally:
            conn.close()

    def pushdown(
        self, column_types: Mapping[str, ColumnType]
    ) -> "SqlitePushdown":
        """A GROUP BY pushdown provider for this relation."""
        return SqlitePushdown(
            self.path,
            self.from_clause(),
            column_types,
            has_rowid_relation=self.table is not None,
        )


# ----------------------------------------------------------------------
# sqlite GROUP BY pushdown
# ----------------------------------------------------------------------
#: Probe: rows whose storage class would make SQL-side float arithmetic
#: diverge from the coerced in-memory column (text/blob storage, or the
#: two IEEE infinities, which ``_parse_number`` maps to 0.0).
_UNCLEAN_PREDICATE = (
    "typeof({col}) NOT IN ('integer', 'real', 'null') "
    "OR {col} IN (9e999, -9e999)"
)


class SqlitePushdown:
    """Translate transform signatures into sqlite ``GROUP BY`` queries.

    Two strategies, both constructed to be *byte-identical* to running
    the in-memory kernels on the materialised table:

    * **index pushdown** (``BIN INTO n`` over cleanly stored numerics):
      the database groups by the kernel's own bucket-index arithmetic
      (:func:`~repro.language.binning.numeric_bin_index_sql`) and
      returns per-bucket ``COUNT`` / ``SUM`` — labels are rebuilt in
      Python from the shared ``np.linspace`` edges.  Rows never enter
      Python.
    * **distinct pushdown** (``GROUP BY`` / ``BIN BY`` / unclean
      numerics): the database collapses the relation to its distinct
      values (``GROUP BY x, typeof(x)`` so sqlite's cross-storage-class
      equality cannot merge ``5`` with ``'5'``), each distinct is
      coerced by the exact ``build_column`` value rules, and the
      *existing* kernel runs on the tiny distinct column — every label,
      sort key, and bucket value is produced by the same code path as
      the in-memory case, then real counts/sums scatter onto the
      buckets.  Only ``d(X)`` values enter Python.

    Anything outside those contracts (UDF bins, empty relations,
    cardinality above ``distinct_limit``, missing ``rowid`` where
    first-appearance order matters, unclean ``y`` storage for SUM/AVG)
    returns ``None`` and the caller falls back to the kernel path; the
    per-reason fallback tally lands in the ``pushdown_*`` metrics.
    """

    def __init__(
        self,
        path: Union[str, Path],
        from_clause: str,
        column_types: Mapping[str, ColumnType],
        has_rowid_relation: bool = True,
        distinct_limit: int = 50_000,
    ) -> None:
        self.path = str(path)
        self.from_clause = from_clause
        self.column_types: Dict[str, ColumnType] = {
            name: ColumnType(ctype) for name, ctype in column_types.items()
        }
        self.has_rowid_relation = bool(has_rowid_relation)
        self.distinct_limit = int(distinct_limit)
        self.served = 0
        self.fallbacks: Dict[str, int] = {}
        self._conn: Optional[sqlite3.Connection] = None
        self._row_count: Optional[int] = None
        self._rowid_ok: Optional[bool] = None
        self._clean: Dict[str, bool] = {}
        self._cardinality_ok: Dict[str, bool] = {}
        self._charts: Dict[tuple, Optional[dict]] = {}
        self._distincts: Dict[tuple, Optional[tuple]] = {}

    # -- lifecycle ------------------------------------------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        # Connections and memoised chart payloads stay process-local.
        state["_conn"] = None
        return state

    def close(self) -> None:
        """Close the lazily opened sqlite connection, if any."""
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _connection(self) -> sqlite3.Connection:
        if self._conn is None:
            self._conn = sqlite3.connect(self.path)
        return self._conn

    def _fallback(self, reason: str) -> None:
        self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    # -- probes (memoised) ---------------------------------------------
    def row_count(self) -> int:
        """Memoised ``COUNT(*)`` of the relation."""
        if self._row_count is None:
            row = self._connection().execute(
                f"SELECT COUNT(*) FROM {self.from_clause}"
            ).fetchone()
            self._row_count = int(row[0])
        return self._row_count

    def _has_rowid(self) -> bool:
        if self._rowid_ok is None:
            if not self.has_rowid_relation:
                self._rowid_ok = False
            else:
                try:
                    self._connection().execute(
                        f"SELECT MIN(rowid) FROM {self.from_clause}"
                    ).fetchone()
                    self._rowid_ok = True
                except sqlite3.OperationalError:
                    # WITHOUT ROWID tables, views, etc.
                    self._rowid_ok = False
        return self._rowid_ok

    def _is_clean_numeric(self, name: str) -> bool:
        """True when every stored value is integer/real/NULL and finite,
        i.e. SQL float arithmetic sees exactly the coerced column."""
        cached = self._clean.get(name)
        if cached is None:
            col = _quote_ident(name)
            predicate = _UNCLEAN_PREDICATE.format(col=col)
            row = self._connection().execute(
                f"SELECT COUNT(*) FROM {self.from_clause} WHERE {predicate}"
            ).fetchone()
            cached = int(row[0]) == 0
            self._clean[name] = cached
        return cached

    def _cardinality_within_limit(self, name: str) -> bool:
        cached = self._cardinality_ok.get(name)
        if cached is None:
            col = _quote_ident(name)
            row = self._connection().execute(
                f"SELECT COUNT(*) FROM (SELECT {col} FROM "
                f"{self.from_clause} GROUP BY {col}, typeof({col}) "
                f"LIMIT {self.distinct_limit + 1})"
            ).fetchone()
            cached = int(row[0]) <= self.distinct_limit
            self._cardinality_ok[name] = cached
        return cached

    # -- value coercion (the build_column contract) --------------------
    def _coerce(self, value, ctype: ColumnType):
        # The ingestion path NA-normalises every cell before coercion;
        # distinct values fetched straight from sqlite must take the
        # same trip or 'NA' would group apart from ''.
        value = normalize_cell(value)
        if ctype is ColumnType.NUMERICAL:
            number = _parse_number(value)
            return 0.0 if number is None else number
        if ctype is ColumnType.TEMPORAL:
            return temporal_seconds(value)
        return categorical_token(value)

    # -- distinct fetching ---------------------------------------------
    def _distinct_groups(
        self, x: str, y: Optional[str], need_rowid: bool
    ) -> Optional[tuple]:
        """``(coerced_values, counts, sums)`` of the relation collapsed
        to distinct ``x`` values, coerced and merged, ordered by first
        appearance when ``need_rowid`` — else by coerced value."""
        key = (x, y, need_rowid)
        if key in self._distincts:
            return self._distincts[key]
        ctype = self.column_types[x]
        col = _quote_ident(x)
        selects = [col, "COUNT(*)"]
        if need_rowid:
            selects.append("MIN(rowid)")
        if y is not None:
            selects.append(f"SUM(COALESCE({_quote_ident(y)}, 0.0))")
        sql = (
            f"SELECT {', '.join(selects)} FROM {self.from_clause} "
            f"GROUP BY {col}, typeof({col})"
        )
        rows = self._connection().execute(sql).fetchall()
        # Merge storage-class groups that coerce to the same value
        # (e.g. integer 5 and text '5' both become '5' categorically).
        merged: Dict[object, list] = {}
        for position, row in enumerate(rows):
            coerced = self._coerce(row[0], ctype)
            count = row[1]
            first = row[2] if need_rowid else position
            total = row[-1] if y is not None else 0.0
            if total is None:
                total = 0.0
            entry = merged.get(coerced)
            if entry is None:
                merged[coerced] = [coerced, count, first, float(total)]
            else:
                entry[1] += count
                entry[2] = min(entry[2], first)
                entry[3] += float(total)
        entries = sorted(merged.values(), key=lambda e: e[2])
        result = (
            [e[0] for e in entries],
            np.asarray([e[1] for e in entries], dtype=np.float64),
            np.asarray([e[3] for e in entries], dtype=np.float64),
        )
        self._distincts[key] = result
        return result

    # -- the entry point ------------------------------------------------
    def serve(self, transform, op, y: Optional[str]) -> Optional[dict]:
        """Bucket arrays + aggregated y for one (transform, op, y) chart.

        Returns ``None`` (recording the reason) when the signature is
        not expressible — the caller then runs the in-memory kernels.
        """
        from ..language.ast import AggregateOp

        op = AggregateOp(op)
        y_key = None if op is AggregateOp.CNT else y
        cache_key = (transform, op, y_key)
        if cache_key in self._charts:
            hit = self._charts[cache_key]
            if hit is not None:
                self.served += 1
            return hit
        result = self._serve_uncached(transform, op, y_key)
        self._charts[cache_key] = result
        if result is not None:
            self.served += 1
        return result

    def _serve_uncached(
        self, transform, op, y: Optional[str]
    ) -> Optional[dict]:
        from ..language.ast import (
            AggregateOp,
            BinByUDF,
            BinIntoBuckets,
            GroupBy,
        )
        from ..language import binning as _binning

        if isinstance(transform, BinByUDF):
            self._fallback("udf")
            return None
        x = transform.column
        if x not in self.column_types or (
            y is not None and y not in self.column_types
        ):
            self._fallback("unknown_column")
            return None
        try:
            if self.row_count() == 0:
                self._fallback("empty")
                return None
            if y is not None and not self._is_clean_numeric(y):
                # Text-stored or infinite y cells break SUM parity.
                self._fallback("y_storage")
                return None
            if isinstance(transform, BinIntoBuckets) and self._is_clean_numeric(x):
                parts = self._serve_numeric_index(transform, y, _binning)
            else:
                parts = self._serve_distinct(transform, y, _binning)
        except sqlite3.Error:
            self._fallback("sql_error")
            return None
        if parts is None:
            return None
        labels, sort_keys, values, counts, sums = parts
        if op is AggregateOp.CNT:
            y_values = counts
        elif op is AggregateOp.SUM:
            y_values = sums
        elif op is AggregateOp.AVG:
            with np.errstate(invalid="ignore", divide="ignore"):
                y_values = np.where(counts > 0, sums / counts, 0.0)
        else:
            self._fallback("aggregate")
            return None
        return {
            "labels": tuple(labels),
            "sort_keys": tuple(np.asarray(sort_keys, dtype=np.float64).tolist()),
            "values": tuple(np.asarray(values, dtype=np.float64).tolist()),
            "y_values": tuple(np.asarray(y_values, dtype=np.float64).tolist()),
            "x_is_discrete": isinstance(transform, GroupBy),
            "source_rows": self.row_count(),
        }

    def _serve_numeric_index(self, transform, y: Optional[str], _binning):
        """Index pushdown: GROUP BY the kernel's bucket-index SQL."""
        x = transform.column
        if self.column_types[x] is not ColumnType.NUMERICAL:
            self._fallback("type_mismatch")
            return None
        n = transform.n
        if n < 1:
            self._fallback("invalid_n")
            return None
        col = f"COALESCE({_quote_ident(x)}, 0.0)"
        y_sql = (
            f"SUM(COALESCE({_quote_ident(y)}, 0.0))"
            if y is not None
            else "0.0"
        )
        conn = self._connection()
        lo, hi = conn.execute(
            f"SELECT MIN({col}), MAX({col}) FROM {self.from_clause}"
        ).fetchone()
        lo, hi = float(lo), float(hi)
        if hi <= lo:
            count, total = conn.execute(
                f"SELECT COUNT(*), {y_sql} FROM {self.from_clause}"
            ).fetchone()
            labels, sort_keys, values = _binning.numeric_bucket_arrays(
                lo, hi, n
            )
            counts = np.asarray([count], dtype=np.float64)
            sums = np.asarray([float(total or 0.0)], dtype=np.float64)
            return labels, sort_keys, values, counts, sums
        index_sql = _binning.numeric_bin_index_sql(col, lo, hi, n)
        rows = conn.execute(
            f"SELECT {index_sql} AS bucket, COUNT(*), {y_sql} "
            f"FROM {self.from_clause} GROUP BY bucket ORDER BY bucket"
        ).fetchall()
        occupied = np.asarray([row[0] for row in rows], dtype=np.int64)
        counts = np.asarray([row[1] for row in rows], dtype=np.float64)
        sums = np.asarray(
            [float(row[2] or 0.0) for row in rows], dtype=np.float64
        )
        labels, sort_keys, values = _binning.numeric_bucket_arrays(
            lo, hi, n, occupied
        )
        return labels, sort_keys, values, counts, sums

    def _serve_distinct(self, transform, y: Optional[str], _binning):
        """Distinct pushdown: kernel over the coerced distinct column."""
        from ..language.ast import BinByGranularity, BinIntoBuckets, GroupBy

        x = transform.column
        ctype = self.column_types[x]
        need_rowid = isinstance(transform, GroupBy)
        if need_rowid and not self._has_rowid():
            # GROUP BY buckets are ordered by first appearance, which
            # needs MIN(rowid); query relations don't expose one.
            self._fallback("rowid")
            return None
        if not self._cardinality_within_limit(x):
            self._fallback("cardinality")
            return None
        distinct_values, counts, sums = self._distinct_groups(
            x, y, need_rowid
        )
        if not distinct_values:
            self._fallback("empty")
            return None
        column = Column(x, ctype, distinct_values)
        if isinstance(transform, GroupBy):
            small = _binning.group_categorical(column)
        elif isinstance(transform, BinByGranularity):
            if ctype is not ColumnType.TEMPORAL:
                self._fallback("type_mismatch")
                return None
            small = _binning.bin_temporal(column, transform.granularity)
        elif isinstance(transform, BinIntoBuckets):
            if ctype is not ColumnType.NUMERICAL:
                self._fallback("type_mismatch")
                return None
            if transform.n < 1:
                self._fallback("invalid_n")
                return None
            small = _binning.bin_numeric(column, transform.n)
        else:
            self._fallback("transform")
            return None
        num_buckets = small.num_buckets
        assignment = small.assignment
        bucket_counts = np.bincount(
            assignment, weights=counts, minlength=num_buckets
        )
        bucket_sums = np.bincount(
            assignment, weights=sums, minlength=num_buckets
        )
        return (
            small.labels,
            small.sort_keys,
            small.values,
            bucket_counts,
            bucket_sums,
        )

    # -- observability ---------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Served / fallback tallies for tests and diagnostics."""
        return {
            "served": self.served,
            "fallbacks": dict(self.fallbacks),
        }

    def record_metrics(self, registry) -> None:
        """Flush served/fallback tallies into a metrics registry."""
        registry.counter(
            "pushdown_served_total", labels={"source": "sqlite"}
        ).inc(self.served)
        for reason, count in self.fallbacks.items():
            registry.counter(
                "pushdown_fallback_total", labels={"reason": reason}
            ).inc(count)


# ----------------------------------------------------------------------
# Building tables from sources
# ----------------------------------------------------------------------
_EXTENSION_KINDS = {
    ".csv": "csv",
    ".tsv": "csv",
    ".jsonl": "jsonl",
    ".ndjson": "jsonl",
    ".db": "sqlite",
    ".sqlite": "sqlite",
    ".sqlite3": "sqlite",
}


def resolve_source(
    path: Union[str, Path],
    kind: Optional[str] = None,
    query: Optional[str] = None,
    table: Optional[str] = None,
    name: Optional[str] = None,
    delimiter: str = ",",
) -> TableSource:
    """Build the right :class:`TableSource` for a path.

    ``kind`` may be ``csv`` / ``jsonl`` / ``sqlite`` or ``None`` to
    infer from the file extension (``auto``).  A tsv extension implies a
    tab delimiter unless one was given explicitly.
    """
    path = Path(path)
    resolved = kind if kind not in (None, "auto") else None
    if resolved is None:
        resolved = _EXTENSION_KINDS.get(path.suffix.lower())
        if resolved is None and (query is not None or table is not None):
            resolved = "sqlite"
        if resolved is None:
            resolved = "csv"
    if resolved == "csv":
        if path.suffix.lower() == ".tsv" and delimiter == ",":
            delimiter = "\t"
        return CsvSource(path, name=name, delimiter=delimiter)
    if resolved == "jsonl":
        return JsonlSource(path, name=name)
    if resolved == "sqlite":
        return SqliteSource(path, table=table, query=query, name=name)
    raise DatasetError(
        f"unknown source kind {resolved!r} "
        f"(expected csv, jsonl, or sqlite)"
    )


def _source_info(
    source: TableSource,
    mode: str,
    rows: int,
    pushdown: bool,
) -> Dict[str, object]:
    return {
        "kind": source.kind,
        "id": source.source_id(),
        "detail": source.describe(),
        "query_fingerprint": source.query_fingerprint(),
        "mode": mode,
        "pushdown": pushdown,
        "rows_ingested": rows,
    }


def _record_ingest_metrics(
    metrics,
    source: TableSource,
    mode: str,
    rows: int,
    chunks: int,
    seconds: float,
) -> None:
    if metrics is None:
        return
    metrics.counter(
        "ingest_rows_total", labels={"source": source.kind}
    ).inc(rows)
    metrics.counter(
        "ingest_chunks_total", labels={"source": source.kind}
    ).inc(chunks)
    metrics.counter(
        "ingest_tables_total", labels={"source": source.kind, "mode": mode}
    ).inc()
    metrics.histogram(
        "ingest_seconds", labels={"source": source.kind}
    ).observe(seconds)


def _materialized_table(
    source: TableSource,
    header: List[str],
    rows: List[tuple],
    types,
    pushdown: bool,
) -> Table:
    table = Table.from_rows(source.default_name, header, rows, types)
    use_pushdown = pushdown and isinstance(source, SqliteSource)
    if use_pushdown:
        table.pushdown_provider = source.pushdown(
            {column.name: column.ctype for column in table.columns}
        )
        # Pushdown-backed results mix SQL aggregation into chart data;
        # scope them away from the pure in-memory cache entries.
        table.cache_scope = "sqlpush"
    table.source_info = _source_info(
        source, "materialized", len(rows), use_pushdown
    )
    return table


def _streaming_table(
    source: TableSource,
    sketch: TableSketch,
    types,
) -> Table:
    overrides = dict(types or {})
    profile = sketch.finish(overrides)
    table = sketch.sample_table(source.default_name, overrides)
    table.stream_profile = profile
    # The sample table's bytes do not determine the full-stream stats
    # backing its features: scope by the profile digest.
    table.cache_scope = f"stream-{profile.digest()[:16]}"
    table.source_info = _source_info(
        source, "streaming", sketch.rows_seen, False
    )
    return table


def from_source(
    source: TableSource,
    materialize: Union[bool, str] = "auto",
    chunk_rows: int = DEFAULT_CHUNK_ROWS,
    max_materialize_rows: int = DEFAULT_MATERIALIZE_ROWS,
    sample_rows: int = DEFAULT_SAMPLE_ROWS,
    seed: int = DEFAULT_SEED,
    pushdown: bool = True,
    types=None,
    tracer=None,
    metrics=None,
) -> Table:
    """Build a :class:`Table` from any :class:`TableSource`, one pass.

    ``materialize`` is ``True`` (always materialise), ``False`` (always
    stream into a sketch+sample), or ``"auto"``: materialise while the
    source stays within ``max_materialize_rows``, and switch to the
    streaming build mid-pass — already-accumulated rows are replayed
    into the sketch, so the source is still read exactly once.
    """
    if isinstance(materialize, str):
        if materialize not in ("auto", "materialized", "streaming"):
            raise DatasetError(
                f"materialize must be True, False, 'auto', 'materialized' "
                f"or 'streaming', got {materialize!r}"
            )
        mode = materialize
    else:
        mode = "materialized" if materialize else "streaming"
    if mode == "auto":
        known = source.count_rows()
        if known is not None:
            mode = (
                "materialized" if known <= max_materialize_rows
                else "streaming"
            )

    with request_scope(source=source.kind), maybe_span(
        tracer,
        "ingest",
        source=source.kind,
        source_id=source.source_id(),
        requested_mode=str(materialize),
    ) as span:
        ingest_start = time.perf_counter()
        sketch: Optional[TableSketch] = None
        pending: List[tuple] = []
        header: List[str] = []
        rows_seen = 0
        chunks_seen = 0
        for header, chunk in source.iter_chunks(chunk_rows):
            rows_seen += len(chunk)
            chunks_seen += 1
            if mode == "streaming" and sketch is None:
                sketch = TableSketch(
                    header, sample_capacity=sample_rows, seed=seed
                )
            if sketch is not None:
                sketch.add_rows(chunk)
                continue
            pending.extend(chunk)
            if mode == "auto" and rows_seen > max_materialize_rows:
                # Too big to materialise: demote the accumulated rows
                # into the sketch and keep streaming — still one pass.
                mode = "streaming"
                sketch = TableSketch(
                    header, sample_capacity=sample_rows, seed=seed
                )
                sketch.add_rows(pending)
                pending = []
        if mode == "streaming" and sketch is None:
            sketch = TableSketch(
                header, sample_capacity=sample_rows, seed=seed
            )
        if sketch is not None:
            table = _streaming_table(source, sketch, types)
            final_mode = "streaming"
        else:
            table = _materialized_table(
                source, header, pending, types, pushdown
            )
            final_mode = "materialized"
        if span is not None:
            span.set("mode", final_mode)
            span.set("rows", rows_seen)
            span.set("chunks", chunks_seen)
            span.set("columns", len(header))
        _record_ingest_metrics(
            metrics, source, final_mode, rows_seen, chunks_seen,
            time.perf_counter() - ingest_start,
        )
    return table
