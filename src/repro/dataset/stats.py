"""Column- and table-level statistics.

These are the raw measurements behind the paper's feature vector
(Section III) and the corpus statistics of Table III.  Everything here is
purely descriptive; interpretation (features, rules) lives in
:mod:`repro.core`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .column import Column, ColumnType
from .table import Table

__all__ = ["ColumnStats", "TableStats", "column_stats", "table_stats", "entropy"]


def entropy(counts: np.ndarray) -> float:
    """Shannon entropy (natural log) of a vector of non-negative counts.

    Used by the pie-chart matching-quality score M(v), which prefers
    diverse slice sizes: ``sum(-p(y) * log(p(y)))`` (Eq. 1).
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total <= 0:
        return 0.0
    p = counts / total
    # Re-filter after normalisation: a subnormal count can underflow to
    # an exact zero share, and 0 * log(0) would be NaN.
    p = p[p > 0]
    return float(-(p * np.log(p)).sum())


@dataclass(frozen=True)
class ColumnStats:
    """Per-column statistics: the measurable part of the feature vector."""

    name: str
    ctype: ColumnType
    num_tuples: int
    num_distinct: int
    unique_ratio: float
    min_value: Optional[float]
    max_value: Optional[float]
    mean: Optional[float]
    std: Optional[float]


def column_stats(column: Column) -> ColumnStats:
    """Compute :class:`ColumnStats` for one column."""
    if column.ctype is ColumnType.CATEGORICAL or len(column) == 0:
        mean = std = None
    else:
        mean = float(np.mean(column.values))
        std = float(np.std(column.values))
    return ColumnStats(
        name=column.name,
        ctype=column.ctype,
        num_tuples=column.num_tuples,
        num_distinct=column.num_distinct,
        unique_ratio=column.unique_ratio,
        min_value=column.min(),
        max_value=column.max(),
        mean=mean,
        std=std,
    )


@dataclass(frozen=True)
class TableStats:
    """Table-level statistics in the shape of the paper's Table III row."""

    name: str
    num_tuples: int
    num_columns: int
    num_categorical: int
    num_numerical: int
    num_temporal: int

    def as_row(self) -> Dict[str, object]:
        """A flat dict suitable for tabular reports."""
        return {
            "name": self.name,
            "#-tuples": self.num_tuples,
            "#-columns": self.num_columns,
            "#-Cat": self.num_categorical,
            "#-Num": self.num_numerical,
            "#-Tem": self.num_temporal,
        }


def table_stats(table: Table) -> TableStats:
    """Compute :class:`TableStats` for a table."""
    counts = table.type_counts()
    return TableStats(
        name=table.name,
        num_tuples=table.num_rows,
        num_columns=table.num_columns,
        num_categorical=counts[ColumnType.CATEGORICAL],
        num_numerical=counts[ColumnType.NUMERICAL],
        num_temporal=counts[ColumnType.TEMPORAL],
    )
