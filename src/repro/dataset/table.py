"""The relational table ``D`` over schema ``R(A1, ..., Am)``.

A :class:`Table` is a named, ordered collection of equally long
:class:`~repro.dataset.column.Column` objects — the input to every
DeepEye stage.  It is deliberately columnar: the visualization language
only ever touches one or two columns at a time, and feature extraction
is per-column, so a column store keeps both cheap.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import ColumnNotFoundError, DatasetError
from .column import Column, ColumnType
from .inference import build_column

__all__ = ["Table"]


class Table:
    """An immutable-by-convention relational table.

    Parameters
    ----------
    name:
        Human-readable table name (used in reports and benchmarks).
    columns:
        The table's columns, all of identical length.
    """

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        self.name = name
        self._columns: List[Column] = list(columns)
        if self._columns:
            lengths = {len(c) for c in self._columns}
            if len(lengths) > 1:
                raise DatasetError(
                    f"table {name!r}: columns have differing lengths {sorted(lengths)}"
                )
        names = [c.name for c in self._columns]
        if len(set(names)) != len(names):
            raise DatasetError(f"table {name!r}: duplicate column names in {names}")
        self._by_name: Dict[str, Column] = {c.name: c for c in self._columns}
        self._fingerprint: Optional[str] = None
        #: Source-layer annotations (see :mod:`repro.dataset.sources`):
        #: where the table came from, the one-pass stream profile backing
        #: a sample table's features, the sqlite GROUP BY pushdown
        #: provider, and the cache scope separating source-backed cache
        #: entries from pure in-memory ones.  All default to the plain
        #: in-memory behaviour.
        self.source_info: Optional[Dict[str, object]] = None
        self.stream_profile = None
        self.pushdown_provider = None
        self.cache_scope: Optional[str] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(
        cls,
        name: str,
        data: Mapping[str, Sequence],
        types: Optional[Mapping[str, ColumnType]] = None,
    ) -> "Table":
        """Build a table from ``{column name: values}`` with type inference.

        ``types`` may pin the type of specific columns; the rest are
        inferred from their values.
        """
        types = dict(types or {})
        columns = [
            build_column(col_name, values, types.get(col_name))
            for col_name, values in data.items()
        ]
        return cls(name, columns)

    @classmethod
    def from_rows(
        cls,
        name: str,
        header: Sequence[str],
        rows: Iterable[Sequence],
        types: Optional[Mapping[str, ColumnType]] = None,
    ) -> "Table":
        """Build a table from a header and row tuples."""
        materialized = [list(row) for row in rows]
        for i, row in enumerate(materialized):
            if len(row) != len(header):
                raise DatasetError(
                    f"table {name!r}: row {i} has {len(row)} cells, "
                    f"expected {len(header)}"
                )
        data = {
            col: [row[j] for row in materialized] for j, col in enumerate(header)
        }
        return cls.from_dict(name, data, types)

    # ------------------------------------------------------------------
    # Schema access
    # ------------------------------------------------------------------
    @property
    def num_rows(self) -> int:
        """Number of tuples in the table."""
        return len(self._columns[0]) if self._columns else 0

    @property
    def num_columns(self) -> int:
        """Number of attributes ``m`` in the schema."""
        return len(self._columns)

    @property
    def columns(self) -> Tuple[Column, ...]:
        """The columns in schema order."""
        return tuple(self._columns)

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def fingerprint(self) -> str:
        """A stable content hash over the schema and values.

        Covers column names, column types, and every value — so it
        changes when a column is renamed, retyped, reordered, or edited
        — but *not* the table's display ``name``: two tables holding the
        same data hash identically, which is what cache keys and corpus
        dedup both want.  Computed once and memoised (tables are
        immutable by convention).

        **Persistence guarantee.**  This digest is a *persistent* cache
        key (the disk tier in :mod:`repro.engine.persistent` addresses
        entries by it), not just an in-memory one, so it must be
        reproducible across processes, platforms, and runs: the hash is
        SHA-256 over a fixed byte encoding with no use of ``hash()``,
        ``id()``, dict iteration order, or anything else
        process-dependent.  The same CSV loaded twice — today, tomorrow,
        on another machine — yields the same hex digest.

        **Format (v2, compositional).**  The table digest is SHA-256
        over, per column in schema order: the column name (UTF-8), a
        ``\\x00`` separator, the raw 32 bytes of the column's own
        content digest (:meth:`~repro.dataset.column.Column.fingerprint`,
        which covers the type tag and every value), and a ``\\x01``
        terminator.  Composing over per-column digests is what makes
        :meth:`append_rows` cheap: each column keeps a *running* SHA-256
        over its value stream, appending a chunk extends those streams
        in ``O(delta rows)``, and the table digest is then recombined in
        ``O(columns)``.  Changing this encoding (or the per-column one)
        silently invalidates every deployed disk cache and golden drift
        snapshot; treat it as a frozen format (covered by cross-process
        tests in ``tests/test_dataset_table.py``).
        """
        if self._fingerprint is None:
            digest = hashlib.sha256()
            for column in self._columns:
                digest.update(column.name.encode("utf-8"))
                digest.update(b"\x00")
                digest.update(bytes.fromhex(column.fingerprint()))
                digest.update(b"\x01")
            self._fingerprint = digest.hexdigest()
        return self._fingerprint

    def cache_fingerprint(self) -> str:
        """The fingerprint under which cache entries for this table live.

        Identical to :meth:`fingerprint` for plain in-memory tables —
        every existing L1–L4 cache key is unchanged — but prefixed with
        :attr:`cache_scope` for source-backed tables.  The scope exists
        because two tables can hold byte-identical *columns* yet answer
        queries differently: a pushdown-backed sqlite table aggregates
        in the database (same buckets, different float summation order),
        and a reservoir-sample table's features come from full-stream
        sketches its sampled bytes do not determine.  Keying those
        results by content hash alone would let them poison the pure
        in-memory entries, and vice versa.
        """
        if self.cache_scope is None:
            return self.fingerprint()
        return f"{self.cache_scope}:{self.fingerprint()}"

    def append_rows(self, rows: Iterable[Sequence]) -> "Table":
        """A new table with ``rows`` (tuples in schema order) appended.

        The schema is pinned: each cell is coerced to its column's
        existing type (no re-inference), so appending can never retype a
        column.  Each column carries its rolling content-hash state
        forward (see :meth:`~repro.dataset.column.Column.extended`),
        making the grown table's :meth:`fingerprint` an ``O(delta rows
        + columns)`` operation instead of a full rehash — and guaranteed
        byte-identical to the fingerprint of the same data loaded from
        scratch.
        """
        materialized = [list(row) for row in rows]
        for i, row in enumerate(materialized):
            if len(row) != self.num_columns:
                raise DatasetError(
                    f"table {self.name!r}: appended row {i} has "
                    f"{len(row)} cells, expected {self.num_columns}"
                )
        if not materialized:
            return self
        return Table(
            self.name,
            [
                column.extended([row[j] for row in materialized])
                for j, column in enumerate(self._columns)
            ],
        )

    def column(self, name: str) -> Column:
        """Look up a column by name, raising :class:`ColumnNotFoundError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise ColumnNotFoundError(name, list(self._by_name)) from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return self.num_rows

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def columns_of_type(self, ctype: ColumnType) -> List[Column]:
        """All columns of the given type, in schema order."""
        return [c for c in self._columns if c.ctype is ctype]

    def type_counts(self) -> Dict[ColumnType, int]:
        """``{type: #columns}`` — the Cat/Num/Tem mix reported in Table III."""
        counts = {t: 0 for t in ColumnType}
        for column in self._columns:
            counts[column.ctype] += 1
        return counts

    # ------------------------------------------------------------------
    # Row-level access (used by the executor and by tests)
    # ------------------------------------------------------------------
    def row(self, index: int) -> Tuple:
        """A single tuple of raw values, in schema order."""
        if not 0 <= index < self.num_rows:
            raise DatasetError(
                f"row index {index} out of range for {self.num_rows} rows"
            )
        return tuple(c.values[index] for c in self._columns)

    def select_rows(self, indices: Sequence[int]) -> "Table":
        """A new table containing only the rows at ``indices``."""
        index_array = np.asarray(indices, dtype=np.intp)
        return Table(self.name, [c.take(index_array) for c in self._columns])

    def head(self, n: int = 5) -> "Table":
        """The first ``n`` rows (for display and quick inspection)."""
        n = min(n, self.num_rows)
        return self.select_rows(list(range(n)))

    def project(self, names: Sequence[str]) -> "Table":
        """A new table with only the named columns, in the given order."""
        return Table(self.name, [self.column(n) for n in names])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kinds = ", ".join(f"{c.name}:{c.ctype.value}" for c in self._columns)
        return f"Table({self.name!r}, rows={self.num_rows}, [{kinds}])"
