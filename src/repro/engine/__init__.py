"""Query execution and serving engine: shared scans, caching, parallelism."""

from .shared_scan import (
    AggregateRequest,
    BatchDedupStats,
    ScanStats,
    SharedScanEngine,
    batch_shared_transforms,
    transform_signature,
)
from .cache import LRUCache, MultiLevelCache
from .incremental import AppendReport, IncrementalDriftError, IncrementalSession
from .persistent import PERSISTENT_CACHE_SCHEMA_VERSION, DiskCacheTier
from .parallel import batch_select, parallel_enumerate, resolve_n_jobs

__all__ = [
    "AggregateRequest",
    "BatchDedupStats",
    "ScanStats",
    "SharedScanEngine",
    "batch_shared_transforms",
    "transform_signature",
    "LRUCache",
    "MultiLevelCache",
    "IncrementalSession",
    "AppendReport",
    "IncrementalDriftError",
    "DiskCacheTier",
    "PERSISTENT_CACHE_SCHEMA_VERSION",
    "batch_select",
    "parallel_enumerate",
    "resolve_n_jobs",
]
