"""Query execution and serving engine: shared scans, caching, parallelism."""

from .shared_scan import AggregateRequest, ScanStats, SharedScanEngine
from .cache import LRUCache, MultiLevelCache
from .parallel import batch_select, parallel_enumerate, resolve_n_jobs

__all__ = [
    "AggregateRequest",
    "ScanStats",
    "SharedScanEngine",
    "LRUCache",
    "MultiLevelCache",
    "batch_select",
    "parallel_enumerate",
    "resolve_n_jobs",
]
