"""Query execution engine: shared-scan batch aggregation."""

from .shared_scan import AggregateRequest, ScanStats, SharedScanEngine

__all__ = ["AggregateRequest", "ScanStats", "SharedScanEngine"]
