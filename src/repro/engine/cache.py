"""Multi-level serving cache for repeated top-k selection.

Serving traffic is repetitive: the same table is re-visualized with
different ``k``'s, re-ranked after retraining, or re-requested verbatim
by many users.  This module provides the three cache levels the serving
engine shares across those calls, all keyed on a stable *content*
fingerprint of the table (:meth:`repro.dataset.table.Table.fingerprint`)
so renames of the table object, re-parsed CSVs, and duplicated corpora
all hit the same entries:

* **transform level** — ``(fingerprint, transform)`` -> the compact
  :class:`~repro.language.binning.TransformResult` (distinct-bucket
  labels/keys/values arrays + per-row assignment; its lazily-built
  ``Bucket`` views are dropped on pickling), the most expensive part of
  candidate enumeration;
* **feature level** — ``(fingerprint, query signature)`` -> the measured
  :class:`~repro.core.features.FeatureVector` of one candidate chart;
* **result level** — ``(fingerprint, selection signature)`` -> the full
  :class:`~repro.core.selection.SelectionResult`, so a verbatim repeat
  of a ``top_k`` call is a single dictionary lookup.

Every level is an :class:`LRUCache` with hit/miss/eviction counters;
:meth:`MultiLevelCache.stats_by_level` exposes them per level (plus an
``aggregate`` rollup) — selection flattens that view into the
``cache_stats`` dict it attaches to results.  The flat
:meth:`MultiLevelCache.stats` form is deprecated.

An optional fourth level persists across process lifetimes: pass a
:class:`~repro.engine.persistent.DiskCacheTier` as ``disk`` and the
:meth:`MultiLevelCache.fetch` / :meth:`MultiLevelCache.store` pair
consult it behind the in-memory levels — a miss in memory falls through
to disk (promoting the entry on a hit), and a store writes through, so
a fresh process inherits everything the previous fleet computed.

This module deliberately imports nothing from :mod:`repro.core` (the
enumeration context takes a cache by duck type), so it can be loaded
from either side of the engine/core boundary without cycles.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Iterator, Optional

__all__ = ["LRUCache", "MultiLevelCache"]

#: Distinguishes "stored None" from "absent" in tiered lookups.
_SENTINEL = object()


class LRUCache:
    """A thread-safe least-recently-used cache with usage counters.

    Parameters
    ----------
    maxsize:
        Maximum number of entries; inserting beyond it evicts the least
        recently used entry.  ``maxsize <= 0`` disables storage (every
        lookup misses), which keeps call sites branch-free when a level
        is turned off.
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = int(maxsize)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()

    # -- mapping protocol ----------------------------------------------
    def get(self, key: Hashable, default: Any = None) -> Any:
        """Look up ``key``, counting a hit or a miss."""
        with self._lock:
            try:
                value = self._data[key]
            except KeyError:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key``, evicting the LRU entry when full."""
        if self.maxsize <= 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            if len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(list(self._data))

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        with self._lock:
            self._data.clear()
            self.hits = self.misses = self.evictions = 0

    def stats(self) -> Dict[str, int]:
        """``{hits, misses, evictions, size}`` of this level (a
        consistent snapshot: taken under the same lock the counters
        mutate under, so a concurrent ``get`` never yields a torn
        hits/misses pair)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._data),
            }

    # -- pickling (locks cannot cross process boundaries) ---------------
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LRUCache(maxsize={self.maxsize}, size={len(self._data)}, "
            f"hits={self.hits}, misses={self.misses}, "
            f"evictions={self.evictions})"
        )


class MultiLevelCache:
    """The three serving-cache levels bundled behind one handle.

    Attributes
    ----------
    transforms:
        ``(fingerprint, transform)`` -> compact
        :class:`~repro.language.binning.TransformResult`.
    features:
        ``(fingerprint, query signature)`` -> feature vector.
    results:
        ``(fingerprint, selection signature)`` -> full selection result.
    disk:
        Optional :class:`~repro.engine.persistent.DiskCacheTier` (L4)
        consulted by :meth:`fetch` behind the in-memory levels and
        written through by :meth:`store`.

    The ``fingerprint`` component of every key is
    ``Table.cache_fingerprint()``: the pure content hash for in-memory
    tables (all pre-existing entries unchanged), prefixed with a source
    scope for source-backed tables — ``sqlpush:`` for sqlite
    pushdown-backed tables (SQL aggregation has a different float
    summation order) and ``stream-<digest>:`` for reservoir-sample
    tables (features come from full-stream sketches, not the sampled
    bytes).  Source+query thereby key all four levels with no change to
    the level machinery itself.
    """

    def __init__(
        self,
        transform_size: int = 1024,
        feature_size: int = 16384,
        result_size: int = 256,
        disk=None,
    ) -> None:
        self.transforms = LRUCache(transform_size)
        self.features = LRUCache(feature_size)
        self.results = LRUCache(result_size)
        self.disk = disk

    def clear(self) -> None:
        """Invalidate every in-memory level (e.g. after retraining the
        models).  The disk tier, if any, is left intact — use
        ``cache.disk.clear()`` to reclaim it explicitly."""
        self.transforms.clear()
        self.features.clear()
        self.results.clear()

    #: The level names in lookup-cost order (cheapest reuse last).
    LEVELS = ("transforms", "features", "results")

    # -- tiered lookup (memory, then disk) ------------------------------
    def fetch(self, level: str, key: Hashable, default: Any = None) -> Any:
        """Look ``key`` up in ``level``, falling through to the disk
        tier on a memory miss.

        A disk hit is *promoted* into the in-memory level before being
        returned, so repeat traffic pays the file read once per process
        lifetime.  With no disk tier attached this is exactly
        ``getattr(self, level).get(key, default)``.
        """
        lru: LRUCache = getattr(self, level)
        value = lru.get(key, _SENTINEL)
        if value is not _SENTINEL:
            return value
        if self.disk is not None:
            hit = self.disk.get(level, key)
            if hit is not None:
                lru.put(key, hit)
                return hit
        return default

    def store(
        self, level: str, key: Hashable, value: Any, disk: bool = True
    ) -> None:
        """Insert into the in-memory ``level`` and (by default) write
        through to the disk tier.  ``disk=False`` keeps an entry
        process-local — used for values whose keys are not stable
        across processes (e.g. results keyed on live model object
        identity)."""
        getattr(self, level).put(key, value)
        if disk and self.disk is not None:
            self.disk.put(level, key, value)

    def prewarm(self, per_level: Optional[int] = None) -> Dict[str, int]:
        """Load the hottest disk entries into the in-memory levels (see
        :meth:`~repro.engine.persistent.DiskCacheTier.prewarm`); returns
        per-level loaded counts, ``{}`` when no disk tier is attached."""
        if self.disk is None:
            return {}
        return self.disk.prewarm(self, per_level=per_level)

    def level_sizes(self) -> Dict[str, int]:
        """Current entry count per in-memory level.

        The cheap live-depth probe the runtime sampler polls
        (:meth:`repro.obs.health.RuntimeSampler.register_queue`): three
        ``len()`` calls, no counter aggregation, safe to call from a
        background thread at any rate.
        """
        return {name: len(getattr(self, name)) for name in self.LEVELS}

    def stats_by_level(self) -> Dict[str, Dict[str, int]]:
        """Per-level counters plus an ``aggregate`` rollup.

        ``{"transforms": {hits, misses, evictions, size}, "features":
        {...}, "results": {...}, "aggregate": {...}}`` — the structured
        successor of the flat :meth:`stats` dict.  With a disk tier
        attached, a ``"disk"`` entry carries its counters (hits,
        misses, stores, evictions, errors, size, bytes); the
        ``aggregate`` rollup stays memory-only so its meaning is stable
        whether or not persistence is configured.
        """
        per_level: Dict[str, Dict[str, int]] = {
            name: getattr(self, name).stats() for name in self.LEVELS
        }
        aggregate: Dict[str, int] = {}
        for level_stats in per_level.values():
            for counter, value in level_stats.items():
                aggregate[counter] = aggregate.get(counter, 0) + value
        if self.disk is not None:
            per_level["disk"] = self.disk.stats()
        per_level["aggregate"] = aggregate
        return per_level

    def emit_events(self, events, table: Optional[str] = None) -> None:
        """Append one ``cache`` event with the per-level counters to an
        :class:`~repro.obs.EventLog` (duck-typed: anything with
        ``emit``).  ``table`` attributes the activity to a request's
        table in the aggregated report.

        The per-level dicts are namespaced under a single ``levels``
        field (schema v2) rather than spread at the top level, so a
        level name can never collide with event envelope fields like
        ``table``.
        """
        by_level = self.stats_by_level()
        levels = {
            name: stats
            for name, stats in by_level.items()
            if name != "aggregate"
        }
        fields: Dict[str, Any] = {"levels": levels}
        if table is not None:
            fields["table"] = table
        events.emit("cache", **fields)

    def record_metrics(self, registry) -> None:
        """Publish the per-level counters into an
        :class:`~repro.obs.MetricsRegistry` as labelled metrics.

        Hit/miss/eviction counts bridge into monotone counters
        (``cache_hits_total{level="results"}`` etc.); current entry
        counts land in the ``cache_entries`` gauge.  Safe to call
        repeatedly — counters only move forward.
        """
        for level_name in self.LEVELS:
            level: LRUCache = getattr(self, level_name)
            labels = {"level": level_name}
            registry.counter(
                "cache_hits_total", labels=labels,
                help="Serving-cache lookups served from this level",
            ).set_cumulative(level.hits)
            registry.counter(
                "cache_misses_total", labels=labels,
                help="Serving-cache lookups this level could not answer",
            ).set_cumulative(level.misses)
            registry.counter(
                "cache_evictions_total", labels=labels,
                help="LRU evictions from this level",
            ).set_cumulative(level.evictions)
            registry.gauge(
                "cache_entries", labels=labels,
                help="Entries currently resident in this level",
            ).set(len(level))
        if self.disk is not None:
            disk_stats = self.disk.stats()
            labels = {"level": "disk"}
            registry.counter(
                "cache_hits_total", labels=labels,
                help="Serving-cache lookups served from this level",
            ).set_cumulative(disk_stats["hits"])
            registry.counter(
                "cache_misses_total", labels=labels,
                help="Serving-cache lookups this level could not answer",
            ).set_cumulative(disk_stats["misses"])
            registry.counter(
                "cache_evictions_total", labels=labels,
                help="LRU evictions from this level",
            ).set_cumulative(disk_stats["evictions"])
            registry.counter(
                "cache_disk_stores_total", labels=labels,
                help="Entries written through to the disk tier",
            ).set_cumulative(disk_stats["stores"])
            registry.counter(
                "cache_disk_errors_total", labels=labels,
                help="Corrupt/unreadable disk entries degraded to misses",
            ).set_cumulative(disk_stats["errors"])
            registry.gauge(
                "cache_entries", labels=labels,
                help="Entries currently resident in this level",
            ).set(disk_stats["size"])
            registry.gauge(
                "cache_disk_bytes", labels=labels,
                help="Bytes occupied by the disk tier",
            ).set(disk_stats["bytes"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        disk = "" if self.disk is None else f", disk={self.disk.entry_count()}"
        return (
            f"MultiLevelCache(transforms={len(self.transforms)}, "
            f"features={len(self.features)}, results={len(self.results)}"
            f"{disk})"
        )
