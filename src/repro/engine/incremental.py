"""Incremental append-delta top-k maintenance for living tables.

A table that only ever *grows* — a metrics stream, an append-only log,
a nightly batch load — does not need the whole DeepEye pipeline rerun
per batch.  An :class:`IncrementalSession` pins one table plus its
cached enumeration state and accepts ``append(rows)`` batches; each
append costs work proportional to the *delta*, not the table:

1. **Transforms** extend in place: the vectorized merge kernels
   (:func:`repro.language.binning.merge_delta`) run only over the new
   rows, splicing new labels/buckets into each cached
   :class:`~repro.language.binning.TransformResult`.
2. **Aggregates** continue their fold: per-bucket counts and sums are
   scattered into the merged bucket layout and extended with
   ``np.add.at`` over just the appended rows — ``np.bincount`` is a
   sequential per-row fold, so continuing it over a suffix is *bitwise*
   equal to refolding from scratch.  AVG re-derives from the merged
   sums and counts with the kernel's exact expression.
3. **Features and scores** recompute only where inputs moved: column
   statistics (``d(X)``, min/max) are maintained incrementally and
   injected into the enumeration context's feature cache level, and
   each chart's raw matching quality M(v) is reused from a per-chart
   cache whenever its feature vector and plotted series are unchanged.
   The top-k comes out of a bounded ``heapq.nsmallest`` selection over
   the weight-aware S(v) scores instead of a full sort.

**Byte-identity is the contract, not an aspiration.**  Every append
produces exactly the top-k (chart ids *and* scores) that a from-scratch
:func:`~repro.core.selection.select_top_k` over the grown table would —
the session reuses the very same enumeration/recognition/ranking code
paths through a fresh :class:`~repro.core.enumeration.EnumerationContext`
whose private caches are pre-populated with the incrementally
maintained, bit-exact values.  Quantities that cannot be continued
bit-exactly (raw column correlations use pairwise summation) are simply
left for the context to recompute.  :meth:`IncrementalSession.verify`
replays the scratch pipeline and gates the comparison through
:func:`repro.obs.drift.classify_drift`, raising
:class:`IncrementalDriftError` on anything but ``identical``.

Between epochs the session classifies its own top-k movement (with
``compare_fingerprints=False`` — the input changed by construction) and
notifies :meth:`~IncrementalSession.subscribe` callbacks whenever the
answer churned, which is the "tell me when my dashboard changes"
primitive.  Every delta decision is observable: ``delta`` events per
transform merge, phase events and spans per epoch, and counters for
merge/rebuild/reuse rates.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.enumeration import (
    EnumerationConfig,
    EnumerationContext,
    enumerate_candidates,
)
from ..core.features import ColumnFeatures
from ..core.partial_order import (
    FactorScores,
    PartialOrderScorer,
    matching_quality_raw,
)
from ..core.ranking import weight_aware_scores_from_factors
from ..core.selection import SelectionResult, _flat_cache_stats, select_top_k
from ..dataset.column import Column, ColumnType
from ..dataset.table import Table
from ..errors import SelectionError, ValidationError
from ..language.ast import AggregateOp
from ..language.binning import TransformResult, merge_delta
from ..obs import maybe_span
from ..obs.context import request_scope
from ..obs.drift import classify_drift, entry_from_result, node_id
from ..obs.kernels import KERNEL_STATS

__all__ = ["IncrementalSession", "AppendReport", "IncrementalDriftError"]


class IncrementalDriftError(SelectionError):
    """The incremental top-k diverged from the from-scratch recompute.

    Carries the :func:`~repro.obs.drift.classify_drift` report as
    ``.report`` — if this ever raises, an invariant of the delta
    machinery is broken (it is not a data-churn signal; data churn is
    expected and reported through :class:`AppendReport.drift`).
    """

    def __init__(self, report: Dict[str, Any]) -> None:
        self.report = report
        super().__init__(
            "incremental top-k drifted from the from-scratch recompute: "
            f"{report.get('kind')} (kendall_tau={report.get('kendall_tau')}, "
            f"overlap={report.get('overlap')}, "
            f"max_score_delta={report.get('max_score_delta')})"
        )


@dataclass
class AppendReport:
    """What one ``append(rows)`` batch did, observable and testable."""

    epoch: int
    appended_rows: int
    total_rows: int
    fingerprint: str
    result: SelectionResult
    #: classify_drift of this epoch's top-k vs the previous epoch's,
    #: with ``compare_fingerprints=False`` (rows were appended, so the
    #: input changed by construction — the question is whether the
    #: *answer* moved).
    drift: Dict[str, Any]
    transforms_merged: int
    transforms_rebuilt: int
    transforms_invalidated: int
    raw_m_reused: int
    raw_m_computed: int
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def churned(self) -> bool:
        """True when the top-k answer moved relative to the last epoch."""
        return self.drift.get("kind") != "identical"


# ----------------------------------------------------------------------
# Internal per-entity state
# ----------------------------------------------------------------------
@dataclass(eq=False)
class _TransformState:
    """One cached transform plus its maintained per-bucket aggregates."""

    result: TransformResult
    counts: np.ndarray  # integer rows-per-bucket (the CNT fold)
    sums: Dict[str, np.ndarray] = field(default_factory=dict)  # y -> SUM fold

    def aggregated(self, op: AggregateOp, y: str) -> np.ndarray:
        """The aggregate array, by the kernel's exact expressions."""
        counts = self.counts.astype(np.float64)
        if op is AggregateOp.CNT:
            return counts
        sums = self.sums[y]
        if op is AggregateOp.SUM:
            return sums
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(counts > 0, sums / counts, 0.0)


@dataclass(eq=False)
class _ColumnState:
    """Incrementally maintained per-column statistics.

    Exactness notes: distinct counts compose (``unique`` of old uniques
    + delta equals ``unique`` of the full column, under any NaN-dedup
    regime); min/max are pure comparisons, so ``np.minimum`` over
    (old extremum, delta extremum) equals ``np.min`` over the full
    column including NaN propagation.
    """

    ctype: ColumnType
    n: int
    distinct: int
    sorted_values: Optional[np.ndarray]  # Num/Tem distinct domain, sorted
    seen: Optional[set]  # Cat distinct labels
    min_value: Optional[float]
    max_value: Optional[float]

    @classmethod
    def of(cls, column: Column) -> "_ColumnState":
        if column.ctype is ColumnType.CATEGORICAL:
            seen = set(column.values.tolist())
            return cls(
                ctype=column.ctype, n=len(column), distinct=len(seen),
                sorted_values=None, seen=seen,
                min_value=None, max_value=None,
            )
        uniques = np.unique(column.values)
        has_rows = len(column) > 0
        return cls(
            ctype=column.ctype, n=len(column), distinct=len(uniques),
            sorted_values=uniques, seen=None,
            min_value=float(np.min(column.values)) if has_rows else None,
            max_value=float(np.max(column.values)) if has_rows else None,
        )

    def extend(self, delta_values: np.ndarray) -> None:
        if len(delta_values) == 0:
            return
        self.n += len(delta_values)
        if self.seen is not None:
            self.seen.update(delta_values.tolist())
            self.distinct = len(self.seen)
            return
        self.sorted_values = np.unique(
            np.concatenate([self.sorted_values, delta_values])
        )
        self.distinct = len(self.sorted_values)
        delta_min = float(np.min(delta_values))
        delta_max = float(np.max(delta_values))
        self.min_value = (
            delta_min
            if self.min_value is None
            else float(np.minimum(self.min_value, delta_min))
        )
        self.max_value = (
            delta_max
            if self.max_value is None
            else float(np.maximum(self.max_value, delta_max))
        )

    def features(self) -> ColumnFeatures:
        """Bit-exact :class:`ColumnFeatures` of the grown column."""
        return ColumnFeatures(
            num_distinct=self.distinct,
            num_tuples=self.n,
            unique_ratio=self.distinct / self.n if self.n else 0.0,
            min_value=self.min_value,
            max_value=self.max_value,
            ctype=self.ctype,
        )


@dataclass(eq=False)
class _EpochRun:
    """One epoch's pipeline output (shared by init and append)."""

    result: SelectionResult
    valid_nodes: List[Any]
    factors: List[FactorScores]
    values: List[float]
    top: List[int]
    top_scores: List[float]
    raw_m_reused: int
    raw_m_computed: int
    pruning: Any


# ----------------------------------------------------------------------
# The session
# ----------------------------------------------------------------------
class IncrementalSession:
    """Maintain the top-k of a growing table across append batches.

    Parameters mirror the :func:`~repro.core.selection.select_top_k`
    subset the delta machinery covers — the expert pipeline
    (``ranker="partial_order"``, no recognizer model, no LTR).  ``cache``
    optionally plugs in a :class:`~repro.engine.cache.MultiLevelCache`:
    merged transforms are published under each epoch's fingerprint, so
    other consumers (and the disk tier) inherit them.  ``auto_verify``
    replays the full from-scratch pipeline after every append and raises
    :class:`IncrementalDriftError` on any non-identical drift — the mode
    tests and the CI gate run in.

    ``tracer`` / ``metrics`` / ``events`` are the usual read-only
    observers; every merge decision lands in ``delta`` events and the
    incremental counters.
    """

    def __init__(
        self,
        table: Table,
        k: int = 10,
        enumeration: str = "rules",
        config: EnumerationConfig = EnumerationConfig(),
        graph_strategy: str = "range_tree",
        cache=None,
        tracer=None,
        metrics=None,
        events=None,
        auto_verify: bool = False,
    ) -> None:
        if k < 0:
            raise SelectionError(f"k must be non-negative, got {k}")
        self.k = k
        self.enumeration = enumeration
        self.config = config
        self.graph_strategy = graph_strategy
        self.cache = cache
        self._tracer = tracer
        self._metrics = metrics
        self._events = events
        self._auto_verify = auto_verify
        self._scorer = PartialOrderScorer()
        self._subscribers: List[Callable[[AppendReport], None]] = []

        self._transform_state: Dict[Any, _TransformState] = {}
        self._agg_keys: Set[Tuple[Any, str, AggregateOp]] = set()
        self._column_state: Dict[str, _ColumnState] = {}
        # node_id -> (features, y_values, raw M); reused only when both
        # guards are unchanged, so a stale value can never be served.
        self._raw_m_cache: Dict[str, Tuple[Any, Tuple[float, ...], float]] = {}

        self.table = table
        self.epoch = 0
        fingerprint = table.fingerprint()
        # Each epoch (init, then every append) is one logical request:
        # a fresh scope correlates the epoch's spans and events without
        # mixing epochs under a single id.
        with request_scope(fresh=True, epoch=0):
            if self._events is not None:
                self._events.begin_request(
                    table=table.name, fingerprint=fingerprint, k=k,
                    enumeration=enumeration, ranker="partial_order",
                    incremental=True, epoch=0, appended_rows=0,
                )
            timings: Dict[str, float] = {}
            ctx = EnumerationContext(table, config, cache=cache)
            with maybe_span(
                self._tracer, "incremental_init",
                table=table.name, rows=table.num_rows, k=k,
            ):
                run = self._pipeline(ctx, timings)
            self._harvest(ctx)
            self._column_state = {
                column.name: _ColumnState.of(column)
                for column in table.columns
            }
            self._result = run.result
            self._entry = entry_from_result(
                table.name, fingerprint, run.result, scores=run.top_scores
            )
            self._emit_pipeline_events(run, timings, drift=None, merge_log=())
        if auto_verify:
            self.verify()

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------
    @property
    def result(self) -> SelectionResult:
        """The current epoch's selection result."""
        return self._result

    @property
    def topk_ids(self) -> List[str]:
        """Stable chart ids of the current top-k, best first."""
        return list(self._entry["chart_ids"])

    @property
    def entry(self) -> Dict[str, Any]:
        """The current epoch's drift-snapshot entry (a copy)."""
        return dict(self._entry)

    def subscribe(
        self, callback: Callable[[AppendReport], None]
    ) -> Callable[[], None]:
        """Register a callback fired after any append whose top-k moved
        (``report.churned``); returns an unsubscribe function."""
        self._subscribers.append(callback)

        def unsubscribe() -> None:
            try:
                self._subscribers.remove(callback)
            except ValueError:
                pass

        return unsubscribe

    def append(self, rows: Iterable[Sequence]) -> AppendReport:
        """Fold an appended row batch into the maintained top-k."""
        materialized = [list(row) for row in rows]
        if not materialized:
            return AppendReport(
                epoch=self.epoch,
                appended_rows=0,
                total_rows=self.table.num_rows,
                fingerprint=self._entry["fingerprint"],
                result=self._result,
                drift=classify_drift(
                    self._entry, self._entry, compare_fingerprints=False
                ),
                transforms_merged=0,
                transforms_rebuilt=0,
                transforms_invalidated=0,
                raw_m_reused=0,
                raw_m_computed=0,
            )

        old_n = self.table.num_rows
        new_table = self.table.append_rows(materialized)
        new_fp = new_table.fingerprint()
        with request_scope(fresh=True, epoch=self.epoch + 1):
            if self._events is not None:
                self._events.begin_request(
                    table=new_table.name, fingerprint=new_fp, k=self.k,
                    enumeration=self.enumeration, ranker="partial_order",
                    incremental=True, epoch=self.epoch + 1,
                    appended_rows=len(materialized),
                )
            timings: Dict[str, float] = {}
            merge_log: List[Dict[str, Any]] = []
            try:
                with maybe_span(
                    self._tracer, "incremental_append",
                    table=new_table.name, epoch=self.epoch + 1,
                    appended_rows=len(materialized),
                    total_rows=new_table.num_rows,
                ) as root:
                    ctx = EnumerationContext(
                        new_table, self.config, cache=self.cache
                    )
                    start = time.perf_counter()
                    with maybe_span(
                        self._tracer, "merge", table=new_table.name
                    ):
                        delta_columns = {
                            column.name: Column(
                                column.name, column.ctype,
                                column.values[old_n:]
                            )
                            for column in new_table.columns
                        }
                        self._merge_transforms(
                            ctx, new_table, new_fp, delta_columns, old_n,
                            merge_log
                        )
                        for name, state in self._column_state.items():
                            state.extend(delta_columns[name].values)
                            ctx._column_features[name] = state.features()
                        for key in self._agg_keys:
                            transform, y_name, op = key
                            state = self._transform_state.get(transform)
                            if state is not None:
                                ctx._aggregates[key] = state.aggregated(
                                    op, y_name
                                )
                    timings["merge"] = time.perf_counter() - start

                    run = self._pipeline(ctx, timings)
                    if root is not None:
                        root.set("candidates", run.result.candidates)
                        root.set("valid", run.result.valid)
            except Exception as exc:
                if self._events is not None:
                    self._events.emit(
                        "error", table=new_table.name,
                        error=f"{type(exc).__name__}: {exc}",
                    )
                raise
            self._harvest(ctx)

            new_entry = entry_from_result(
                new_table.name, new_fp, run.result, scores=run.top_scores
            )
            drift = classify_drift(
                self._entry, new_entry, compare_fingerprints=False
            )
            self.table = new_table
            self.epoch += 1
            self._result = run.result
            self._entry = new_entry

            actions = [entry["action"] for entry in merge_log]
            report = AppendReport(
                epoch=self.epoch,
                appended_rows=len(materialized),
                total_rows=new_table.num_rows,
                fingerprint=new_fp,
                result=run.result,
                drift=drift,
                transforms_merged=actions.count("merged"),
                transforms_rebuilt=actions.count("rebuilt"),
                transforms_invalidated=actions.count("invalidated"),
                raw_m_reused=run.raw_m_reused,
                raw_m_computed=run.raw_m_computed,
                timings=dict(timings),
            )
            self._emit_pipeline_events(
                run, timings, drift=drift, merge_log=merge_log
            )
            self._record_metrics(report)
        if report.churned:
            for callback in list(self._subscribers):
                callback(report)
        if self._auto_verify:
            self.verify()
        return report

    def verify(self) -> Dict[str, Any]:
        """Replay from scratch and gate byte-identity through drift
        classification; raises :class:`IncrementalDriftError` unless the
        maintained top-k is ``identical`` (same charts, same order, same
        scores) to the recompute."""
        with maybe_span(
            self._tracer, "incremental_verify",
            table=self.table.name, epoch=self.epoch,
        ):
            scratch = select_top_k(
                self.table,
                k=self.k,
                enumeration=self.enumeration,
                config=self.config,
                graph_strategy=self.graph_strategy,
                cache=None,
                provenance=True,
            )
        expected = entry_from_result(
            self.table.name, self.table.fingerprint(), scratch
        )
        report = classify_drift(expected, self._entry)
        report["epoch"] = self.epoch
        if report["kind"] != "identical":
            raise IncrementalDriftError(report)
        return report

    # ------------------------------------------------------------------
    # Delta maintenance
    # ------------------------------------------------------------------
    def _merge_transforms(
        self,
        ctx: EnumerationContext,
        new_table: Table,
        new_fp: str,
        delta_columns: Dict[str, Column],
        old_n: int,
        merge_log: List[Dict[str, Any]],
    ) -> None:
        """Extend every cached transform by the appended chunk and
        pre-populate the fresh context with the merged results."""
        for transform in list(self._transform_state):
            state = self._transform_state[transform]
            column_name = transform.column
            column_stats = self._column_state[column_name]
            try:
                merge = merge_delta(
                    transform,
                    state.result,
                    new_table.column(column_name),
                    delta_columns[column_name],
                    column_stats.min_value,
                    column_stats.max_value,
                )
            except ValidationError:
                # The appended chunk made this transform inexecutable
                # (e.g. a NaN row reached a binnable column): drop the
                # state and let enumeration re-derive the failure, which
                # is exactly what a scratch run would see.
                del self._transform_state[transform]
                self._agg_keys = {
                    key for key in self._agg_keys if key[0] != transform
                }
                merge_log.append(
                    {"transform": transform.describe(), "action": "invalidated"}
                )
                continue
            self._fold_aggregates(state, merge, new_table, old_n)
            state.result = merge.result
            ctx._transforms[transform] = merge.result
            if self.cache is not None:
                ctx._cache_put("transforms", (new_fp, transform), merge.result)
            merge_log.append(
                {
                    "transform": transform.describe(),
                    "action": "rebuilt" if merge.rebuilt else "merged",
                    "buckets": merge.result.num_buckets,
                    "new_buckets": None if merge.rebuilt else merge.new_buckets,
                    "remapped": bool(merge.remapped),
                }
            )

    @staticmethod
    def _fold_aggregates(
        state: _TransformState, merge, new_table: Table, old_n: int
    ) -> None:
        """Continue the per-bucket count/sum folds over the delta rows.

        ``np.bincount`` accumulates row-by-row in index order, and
        ``np.add.at`` is the same unbuffered fold — scattering the old
        per-bucket partials into the merged layout and folding only the
        appended rows is therefore bitwise equal to refolding the full
        assignment.  A rebuilt transform (numeric range grew) refolds
        from scratch, which is what the scratch pipeline does too.
        """
        result = merge.result
        buckets = result.num_buckets
        if merge.rebuilt:
            state.counts = np.bincount(result.assignment, minlength=buckets)
            for y_name in list(state.sums):
                state.sums[y_name] = np.bincount(
                    result.assignment,
                    weights=new_table.column(y_name).values.astype(np.float64),
                    minlength=buckets,
                )
            return
        counts = np.zeros(buckets, dtype=state.counts.dtype)
        counts[merge.old_positions] = state.counts
        counts += np.bincount(merge.delta_assignment, minlength=buckets)
        state.counts = counts
        for y_name, old_sums in list(state.sums.items()):
            sums = np.zeros(buckets, dtype=np.float64)
            sums[merge.old_positions] = old_sums
            np.add.at(
                sums,
                merge.delta_assignment,
                new_table.column(y_name).values[old_n:].astype(np.float64),
            )
            state.sums[y_name] = sums

    def _harvest(self, ctx: EnumerationContext) -> None:
        """Adopt whatever the epoch's context computed that the session
        was not yet maintaining (first epoch: everything)."""
        for transform, result in ctx._transforms.items():
            if transform not in self._transform_state:
                self._transform_state[transform] = _TransformState(
                    result=result,
                    counts=np.bincount(
                        result.assignment, minlength=result.num_buckets
                    ),
                )
        for key, value in ctx._aggregates.items():
            transform, y_name, op = key
            state = self._transform_state.get(transform)
            if state is None:
                continue
            self._agg_keys.add(key)
            if op is AggregateOp.CNT or y_name in state.sums:
                continue
            if op is AggregateOp.SUM:
                # aggregate() returned the bincount fold itself.
                state.sums[y_name] = value
            else:
                state.sums[y_name] = np.bincount(
                    state.result.assignment,
                    weights=ctx.table.column(y_name).values.astype(np.float64),
                    minlength=state.result.num_buckets,
                )

    # ------------------------------------------------------------------
    # Pipeline over a (pre-populated) context
    # ------------------------------------------------------------------
    def _raw_matching_quality(self, node) -> Tuple[float, bool]:
        """Cached raw M(v), guarded by (features, plotted series)."""
        chart_id = node_id(node)
        y_values = node.data.y_values
        hit = self._raw_m_cache.get(chart_id)
        if hit is not None and hit[0] == node.features and hit[1] == y_values:
            return hit[2], True
        value = matching_quality_raw(node)
        self._raw_m_cache[chart_id] = (node.features, y_values, value)
        return value, False

    def _pipeline(
        self, ctx: EnumerationContext, timings: Dict[str, float]
    ) -> _EpochRun:
        """Enumerate / recognize / rank over ``ctx``, reusing cached raw
        M(v) and selecting the top-k with a bounded heap.  Mirrors the
        scratch pipeline decision-for-decision (same fallback when the
        expert filter rejects everything, same sort key), so the output
        is byte-identical to :func:`select_top_k`'s."""
        table = ctx.table
        start = time.perf_counter()
        with maybe_span(self._tracer, "enumerate", table=table.name):
            candidates = enumerate_candidates(
                table, self.enumeration, self.config, ctx
            )
        timings["enumerate"] = time.perf_counter() - start

        start = time.perf_counter()
        reused = computed = 0
        raw_m_all: List[float] = []
        with maybe_span(self._tracer, "recognize", table=table.name):
            for node in candidates:
                value, was_cached = self._raw_matching_quality(node)
                raw_m_all.append(value)
                if was_cached:
                    reused += 1
                else:
                    computed += 1
            valid_indices = [i for i, m in enumerate(raw_m_all) if m > 0]
            if valid_indices:
                valid_nodes = [candidates[i] for i in valid_indices]
                raw_m_valid = [raw_m_all[i] for i in valid_indices]
            else:
                # The shared fallback: surface the least-bad charts.
                valid_nodes = list(candidates)
                raw_m_valid = raw_m_all
        timings["recognize"] = time.perf_counter() - start

        start = time.perf_counter()
        with maybe_span(self._tracer, "rank", table=table.name):
            factors = (
                self._scorer.score(valid_nodes, raw_m=raw_m_valid)
                if valid_nodes
                else []
            )
            values = weight_aware_scores_from_factors(factors)
            composite = [(f.m + f.q + f.w) / 3.0 for f in factors]
            # heapq.nsmallest(k, ..., key) is documented-equivalent to
            # sorted(...)[:k]; the total (score, composite, index) key
            # makes the truncated selection identical to the full sort.
            top = heapq.nsmallest(
                self.k,
                range(len(valid_nodes)),
                key=lambda i: (-values[i], -composite[i], i),
            )
        timings["rank"] = time.perf_counter() - start

        result = SelectionResult(
            nodes=[valid_nodes[i] for i in top],
            order=list(top),
            candidates=len(candidates),
            valid=len(valid_nodes),
            timings=dict(timings),
            cache_stats=(
                _flat_cache_stats(self.cache) if self.cache is not None else {}
            ),
        )
        return _EpochRun(
            result=result,
            valid_nodes=valid_nodes,
            factors=factors,
            values=values,
            top=list(top),
            top_scores=[float(values[i]) for i in top],
            raw_m_reused=reused,
            raw_m_computed=computed,
            pruning=ctx.pruning,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _emit_pipeline_events(
        self,
        run: _EpochRun,
        timings: Dict[str, float],
        drift: Optional[Dict[str, Any]],
        merge_log: Sequence[Dict[str, Any]],
    ) -> None:
        if self._events is None:
            return
        events = self._events
        table_name = self._entry["table"]
        for entry in merge_log:
            events.emit("delta", table=table_name, **entry)
        if drift is not None:
            actions = [entry["action"] for entry in merge_log]
            events.emit(
                "delta", table=table_name, summary=True,
                merged=actions.count("merged"),
                rebuilt=actions.count("rebuilt"),
                invalidated=actions.count("invalidated"),
                raw_m_reused=run.raw_m_reused,
                raw_m_computed=run.raw_m_computed,
                drift=drift["kind"],
            )
        for phase, seconds in timings.items():
            events.emit(
                "phase", phase=phase, table=table_name, seconds=seconds,
            )
        for rule, count in sorted(run.pruning.pruned.items()):
            events.emit("prune", table=table_name, rule=rule, count=count)
        for position, index in enumerate(run.top, start=1):
            factor = run.factors[index]
            events.emit(
                "score", table=table_name,
                node_id=node_id(run.valid_nodes[index]), rank=position,
                m=float(factor.m), q=float(factor.q), w=float(factor.w),
                score=float(run.values[index]),
            )
        events.emit(
            "rank", table=table_name, k=self.k,
            chart_ids=[node_id(run.valid_nodes[i]) for i in run.top],
            epoch=self.epoch,
        )
        if self.cache is not None and hasattr(self.cache, "emit_events"):
            self.cache.emit_events(events, table=table_name)

    def _record_metrics(self, report: AppendReport) -> None:
        if self._metrics is None:
            return
        metrics = self._metrics
        metrics.counter(
            "incremental_appends_total",
            help="Append batches folded into incremental sessions",
        ).inc()
        metrics.counter(
            "incremental_appended_rows_total",
            help="Rows appended across incremental sessions",
        ).inc(report.appended_rows)
        for action, count in (
            ("merged", report.transforms_merged),
            ("rebuilt", report.transforms_rebuilt),
            ("invalidated", report.transforms_invalidated),
        ):
            if count:
                metrics.counter(
                    "incremental_transforms_total",
                    labels={"action": action},
                    help="Cached transforms per append, by merge outcome",
                ).inc(count)
        for outcome, count in (
            ("reused", report.raw_m_reused),
            ("computed", report.raw_m_computed),
        ):
            if count:
                metrics.counter(
                    "incremental_raw_m_total",
                    labels={"outcome": outcome},
                    help="Raw matching-quality evaluations, by cache outcome",
                ).inc(count)
        metrics.counter(
            "incremental_topk_drift_total",
            labels={"kind": report.drift["kind"]},
            help="Per-append top-k drift classification",
        ).inc()
        metrics.histogram(
            "incremental_append_seconds",
            help="End-to-end wall-clock per append batch",
        ).observe(sum(report.timings.values()))
        KERNEL_STATS.record_metrics(metrics)
        if self.cache is not None and hasattr(self.cache, "record_metrics"):
            self.cache.record_metrics(metrics)
