"""Parallel batch-serving executor for top-k selection.

The online phase is embarrassingly parallel along two axes, and this
module exploits both with deterministic results:

* **within one table** — :func:`parallel_enumerate` fans candidate
  enumeration + feature extraction + recognition out over x-columns
  (each worker owns every candidate whose x-axis is one column), then
  reassembles the per-column slices into *exactly* the order serial
  enumeration produces, so ``n_jobs > 1`` output is identical to
  ``n_jobs = 1``;
* **across tables** — :func:`batch_select` distributes whole tables of
  a batch over a pool that shares the trained engine (pickled once per
  process worker), streaming :class:`SelectionResult`s back in input
  order.

Both take a ``backend``: ``"process"`` (true parallelism; the table,
config and models ship to each worker once via the pool initializer)
or ``"thread"`` (no pickling, shared memory; useful when numpy releases
the GIL or on platforms without cheap fork).  ``n_jobs = 1`` always
short-circuits to the plain serial code path — no pool, no copies.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import nullcontext
from typing import (
    Deque,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from ..core.enumeration import (
    EnumerationConfig,
    EnumerationContext,
    exhaustive_for_column,
    rule_based_for_column,
)
from ..core.nodes import VisualizationNode
from ..core.partial_order import matching_quality_raw
from ..core.rules import PruningCounters
from ..dataset.table import Table
from ..errors import SelectionError
from ..obs import MetricsRegistry
from ..obs.context import new_request_id, request_scope
from ..obs.events import EventLog
from ..obs.trace import Tracer, maybe_span

__all__ = [
    "resolve_n_jobs",
    "parallel_enumerate",
    "batch_select",
    "SlowTableLog",
]

#: Wall-clock (seconds) above which a batch table lands in the slow log
#: when the caller does not pick a threshold.
DEFAULT_SLOW_TABLE_SECONDS = 1.0


class SlowTableLog:
    """Bounded log of slow batch tables, newest entry first.

    Reads like a list — ``len``, iteration, indexing, truthiness — with
    the most recent entry at index 0; :meth:`append` prepends and drops
    the oldest entry beyond ``maxlen``, so a long-lived serving engine
    can never grow its slow-table log without bound.
    """

    def __init__(self, maxlen: int = 256) -> None:
        if maxlen <= 0:
            raise ValueError(f"maxlen must be positive, got {maxlen}")
        self.maxlen = int(maxlen)
        self._entries: Deque[dict] = deque(maxlen=self.maxlen)
        # Thread-backend batch callbacks append concurrently; a bare
        # deque's appendleft is atomic in CPython, but iteration during
        # a concurrent append is not — one lock makes every access safe.
        self._lock = threading.Lock()

    def append(self, entry: dict) -> None:
        """Record one slow-table entry as the new head of the log."""
        with self._lock:
            self._entries.appendleft(entry)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __iter__(self) -> Iterator[dict]:
        with self._lock:
            return iter(list(self._entries))

    def __getitem__(self, index):
        with self._lock:
            return list(self._entries)[index]

    # Engines holding a log get shipped to process workers: drop the
    # unpicklable lock and re-create it (fresh, unheld) on load.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SlowTableLog(maxlen={self.maxlen}, "
            f"entries={len(self._entries)})"
        )


def _worker_label() -> str:
    """Stable-ish identity of the executing worker for metric labels:
    the process id plus (for thread pools) the pool thread's name."""
    thread = threading.current_thread()
    if thread is threading.main_thread():
        return f"pid-{os.getpid()}"
    return f"pid-{os.getpid()}/{thread.name}"


def resolve_n_jobs(n_jobs: Optional[int]) -> int:
    """Normalise an ``n_jobs`` knob to a concrete worker count.

    ``None`` and ``0`` mean serial (1); negative values count back from
    the machine's CPUs in the scikit-learn convention (``-1`` = all
    cores, ``-2`` = all but one, ...).
    """
    if n_jobs is None or n_jobs == 0:
        return 1
    if n_jobs < 0:
        cpus = os.cpu_count() or 1
        return max(1, cpus + 1 + n_jobs)
    return int(n_jobs)


def _normalise_mode(mode: str) -> str:
    if mode in ("rules", "R"):
        return "rules"
    if mode in ("exhaustive", "E"):
        return "exhaustive"
    raise ValueError(
        f"unknown enumeration mode {mode!r}; use 'rules' or 'exhaustive'"
    )


# ----------------------------------------------------------------------
# Per-column enumeration + recognition (the unit of intra-table fan-out)
# ----------------------------------------------------------------------
def _valid_mask(nodes: Sequence[VisualizationNode], recognizer) -> List[bool]:
    """Good/bad verdict per node: trained classifier, or expert M(v) > 0.

    Both predicates are per-node, so computing them over a per-column
    slice gives the same mask the serial pipeline computes over the full
    candidate list.
    """
    if not nodes:
        return []
    if recognizer is not None:
        return [bool(v) for v in recognizer.predict(nodes)]
    return [matching_quality_raw(node) > 0 for node in nodes]


_ColumnSlice = Tuple[
    Tuple[List[VisualizationNode], ...],
    Tuple[List[bool], ...],
    PruningCounters,
    float,
    str,
]


def _column_slice(
    ctx: EnumerationContext, recognizer, mode: str, x_name: str
) -> _ColumnSlice:
    """All candidates (and their validity mask) with ``x_name`` on x.

    Also returns the task's own pruning accounting (a fresh per-task
    accumulator, so concurrent tasks sharing one context never race on
    counters), its wall-clock seconds, and the worker label — the raw
    material for the per-worker task latency histograms.
    """
    start = time.perf_counter()
    counters = PruningCounters()
    if mode == "rules":
        parts: Tuple[List[VisualizationNode], ...] = (
            rule_based_for_column(ctx, x_name, counters),
        )
    else:
        parts = exhaustive_for_column(ctx, x_name, counters)
    masks = tuple(_valid_mask(part, recognizer) for part in parts)
    return parts, masks, counters, time.perf_counter() - start, _worker_label()


# Per-process worker state, populated by the pool initializer so the
# table, config and recognizer are pickled once per worker instead of
# once per task.
_WORKER_STATE: dict = {}


def _init_enum_worker(table: Table, config: EnumerationConfig, recognizer) -> None:
    _WORKER_STATE["context"] = EnumerationContext(table, config)
    _WORKER_STATE["recognizer"] = recognizer


def _enum_worker(mode: str, x_name: str):
    return _column_slice(
        _WORKER_STATE["context"], _WORKER_STATE["recognizer"], mode, x_name
    )


def _reassemble(
    slices: Sequence[_ColumnSlice],
) -> Tuple[List[VisualizationNode], List[bool]]:
    """Stitch per-column slices back into the serial enumeration order.

    Serial order emits part 0 of every column (rule-based candidates, or
    exhaustive one-column candidates), then part 1 of every column (the
    exhaustive two-column candidates) — concatenation part-major,
    column-minor reproduces it exactly.
    """
    num_parts = max((len(parts) for parts, *_ in slices), default=0)
    nodes: List[VisualizationNode] = []
    mask: List[bool] = []
    for part in range(num_parts):
        for parts, masks, *_ in slices:
            nodes.extend(parts[part])
            mask.extend(masks[part])
    return nodes, mask


def _absorb_task_stats(
    slices: Sequence[_ColumnSlice],
    pruning: Optional[PruningCounters],
    metrics: Optional[MetricsRegistry],
    events: Optional[EventLog] = None,
    columns: Optional[Sequence[str]] = None,
) -> None:
    """Merge per-task pruning counters and latency samples upstream."""
    for _, _, task_counters, seconds, worker in slices:
        if pruning is not None:
            pruning.merge(task_counters)
        if metrics is not None:
            metrics.histogram(
                "enumeration_task_seconds",
                labels={"worker": worker},
                help="Per-column enumerate+featurise+recognise task "
                "latency, per worker",
            ).observe(seconds)
    if events is not None:
        # Per-task phase events, folded in as one deterministic merge:
        # slices were gathered in input (column) order regardless of
        # worker scheduling, so the merged log is scheduling-independent.
        events.merge(
            {
                "kind": "phase",
                "phase": "enumerate_task",
                "column": column,
                "worker": worker,
                "seconds": seconds,
                "considered": task_counters.considered,
                "emitted": task_counters.emitted,
            }
            for column, (_, _, task_counters, seconds, worker) in zip(
                columns or (), slices
            )
        )


def parallel_enumerate(
    table: Table,
    mode: str = "rules",
    config: EnumerationConfig = EnumerationConfig(),
    n_jobs: Optional[int] = None,
    backend: Optional[str] = None,
    recognizer=None,
    cache=None,
    pruning: Optional[PruningCounters] = None,
    metrics: Optional[MetricsRegistry] = None,
    events: Optional[EventLog] = None,
) -> Tuple[List[VisualizationNode], List[bool]]:
    """Enumerate, featurise and recognise candidates with a worker pool.

    Returns ``(nodes, valid_mask)`` where ``nodes`` is byte-identical to
    the serial enumeration order and ``valid_mask[i]`` is the
    recognition verdict for ``nodes[i]`` (trained classifier when
    ``recognizer`` is given, otherwise the expert ``M(v) > 0``
    criterion).

    ``pruning`` is an optional caller-owned
    :class:`~repro.core.rules.PruningCounters` accumulator: every
    worker's per-rule accounting merges into it (process workers ship
    their counters back with the result), so the pruning report is
    identical to a serial run.  ``metrics`` additionally records one
    ``enumeration_task_seconds{worker=...}`` latency sample per
    per-column task, and ``events`` (an
    :class:`~repro.obs.EventLog`) receives one ``enumerate_task`` phase
    event per per-column task, merged in input order — worker processes
    cannot share the parent's log handle, so their task records are
    gathered with the results and folded in deterministically.

    The multi-level ``cache`` is consulted only on the serial path —
    worker processes cannot share the parent's in-memory LRU, and
    shipping entries back would cost more than recomputing.
    """
    mode = _normalise_mode(mode)
    jobs = resolve_n_jobs(n_jobs if n_jobs is not None else config.n_jobs)
    backend = backend or config.backend
    columns = table.column_names
    jobs = min(jobs, max(1, len(columns)))

    if jobs <= 1:
        ctx = EnumerationContext(table, config, cache=cache)
        slices = [_column_slice(ctx, recognizer, mode, x) for x in columns]
        _absorb_task_stats(slices, pruning, metrics, events, columns)
        return _reassemble(slices)

    if backend == "thread":
        # One shared context: its memo dicts are only ever written with
        # values that are identical regardless of which thread computes
        # them first, so races cost duplicate work, never wrong answers.
        # (Pruning counters are per-task objects, so they never race.)
        ctx = EnumerationContext(table, config)
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            futures = [
                pool.submit(_column_slice, ctx, recognizer, mode, x)
                for x in columns
            ]
            slices = [future.result() for future in futures]
    elif backend == "process":
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_enum_worker,
            initargs=(table, config, recognizer),
        ) as pool:
            futures = [pool.submit(_enum_worker, mode, x) for x in columns]
            slices = [future.result() for future in futures]
    else:
        raise SelectionError(
            f"unknown parallel backend {backend!r}; use 'process' or 'thread'"
        )
    _absorb_task_stats(slices, pruning, metrics, events, columns)
    return _reassemble(slices)


# ----------------------------------------------------------------------
# Cross-table batch serving
# ----------------------------------------------------------------------
def _init_batch_worker(
    engine, k: int, capture_events: bool, capture_spans: bool = False
) -> None:
    import dataclasses

    # Workers run one table each; nested pools would only thrash a
    # machine that is already fully subscribed at the table level.
    engine.config = dataclasses.replace(engine.config, n_jobs=1)
    _WORKER_STATE["engine"] = engine
    _WORKER_STATE["k"] = k
    _WORKER_STATE["capture_events"] = capture_events
    _WORKER_STATE["capture_spans"] = capture_spans


def _timed_top_k(
    engine,
    table: Table,
    k: int,
    capture_events: bool = False,
    request_id: Optional[str] = None,
    capture_spans: bool = False,
):
    """One table through the engine, with worker-side latency capture —
    queue wait is excluded, so the histogram measures true task time.

    With ``capture_events`` the table's full per-request event stream is
    recorded into a private in-memory :class:`~repro.obs.EventLog`
    (workers cannot share the parent's file handle) and shipped back as
    plain dicts for the parent to merge in input order.  ``request_id``
    (minted by the batch driver) is re-entered as the task's request
    scope, so every worker-side record carries the id the parent will
    look the table up by.  ``capture_spans`` (process workers under a
    traced parent) records the task's span tree into a private
    :class:`~repro.obs.Tracer` and ships ``(spans, epoch_unix)`` back
    for :meth:`~repro.obs.Tracer.adopt`.
    """
    start = time.perf_counter()
    with request_scope(request_id):
        kwargs: dict = {}
        worker_log = None
        worker_tracer = None
        if capture_events:
            worker_log = EventLog()
            kwargs["events"] = worker_log
        if capture_spans:
            worker_tracer = Tracer()
            kwargs["tracer"] = worker_tracer
        if hasattr(engine, "top_k"):
            result = engine.top_k(table, k=k, record_slo=False, **kwargs)
        else:  # bare callable engines (tests)
            result = engine(table, k=k, **kwargs)
    worker_events = list(worker_log.events) if worker_log is not None else None
    worker_spans = (
        (list(worker_tracer.spans), worker_tracer.epoch_unix)
        if worker_tracer is not None
        else None
    )
    return (
        result,
        time.perf_counter() - start,
        _worker_label(),
        worker_events,
        worker_spans,
    )


def _batch_worker(table: Table, request_id: Optional[str] = None):
    return _timed_top_k(
        _WORKER_STATE["engine"],
        table,
        _WORKER_STATE["k"],
        _WORKER_STATE["capture_events"],
        request_id,
        _WORKER_STATE.get("capture_spans", False),
    )


def _record_batch_task(
    table: Table,
    seconds: float,
    worker: str,
    metrics: Optional[MetricsRegistry],
    slow_log: Optional[List[dict]],
    slow_threshold: float,
    events: Optional[EventLog] = None,
    worker_events: Optional[List[dict]] = None,
    request_id: Optional[str] = None,
    result=None,
    slo=None,
    tracer: Optional[Tracer] = None,
    worker_spans=None,
) -> None:
    if tracer is not None and worker_spans:
        spans, worker_epoch = worker_spans
        tracer.adopt(spans, worker_epoch, worker=worker)
    if events is not None:
        if worker_events:
            events.merge(worker_events)
        fields = dict(
            phase="batch_table", table=table.name,
            seconds=seconds, worker=worker,
        )
        if request_id is not None:
            fields["request_id"] = request_id
        events.emit("phase", **fields)
    if slo is not None:
        slo.record_latency("selection_latency", seconds)
        slo.record_outcome("selection_errors", True)
        if result is not None:
            slo.record_outcome(
                "cache_hit_rate",
                bool(getattr(result, "result_cache_hit", False)),
            )
    if metrics is not None:
        # Re-enter the table's scope so the sample carries its exemplar
        # even when the observation lands parent-side (process workers
        # increment their own pickled registry, which is discarded).
        with request_scope(request_id) if request_id else nullcontext():
            metrics.histogram(
                "batch_task_seconds",
                labels={"worker": worker},
                help=(
                    "Per-table top_k latency inside the batch pool, "
                    "per worker"
                ),
            ).observe(seconds)
    if seconds >= slow_threshold:
        if slow_log is not None:
            slow_log.append(
                {
                    "table": table.name,
                    "rows": table.num_rows,
                    "columns": table.num_columns,
                    "seconds": seconds,
                    "worker": worker,
                }
            )
        if metrics is not None:
            metrics.counter(
                "batch_slow_tables_total",
                help="Batch tables slower than the slow-table threshold",
            ).inc()


def _seed_batch_dedup(
    engine,
    tables: Sequence[Table],
    metrics: Optional[MetricsRegistry],
    events: Optional[EventLog],
) -> None:
    """Pre-seed the engine's transform cache with cross-table shared
    scans (see :func:`~repro.engine.shared_scan.batch_shared_transforms`).

    Runs in the parent before any fan-out, so the seeded entries reach
    every backend: serial and thread workers share the cache object,
    and process workers receive it inside the engine the pool
    initializer pickles.
    """
    from .shared_scan import batch_shared_transforms

    cache = getattr(engine, "cache", None)
    if cache is None or len(tables) < 2:
        return
    start = time.perf_counter()
    entries, stats = batch_shared_transforms(
        tables, engine.config, mode=getattr(engine, "enumeration", "rules")
    )
    for key, value in entries.items():
        if hasattr(cache, "store"):
            cache.store("transforms", key, value)
        else:  # duck-typed cache without a disk tier
            cache.transforms.put(key, value)
    if metrics is not None:
        stats.record_metrics(metrics)
    if events is not None:
        events.emit(
            "phase", phase="batch_dedup", tables=stats.tables,
            transforms_total=stats.transforms_total,
            computed=stats.computed, reused=stats.reused,
            seconds=time.perf_counter() - start,
        )


def batch_select(
    engine,
    tables: Iterable[Table],
    k: int = 10,
    n_jobs: Optional[int] = None,
    backend: Optional[str] = None,
    metrics: Optional[MetricsRegistry] = None,
    slow_log: Optional[Union[List[dict], "SlowTableLog"]] = None,
    slow_threshold: float = DEFAULT_SLOW_TABLE_SECONDS,
    events: Optional[EventLog] = None,
    dedup: Optional[bool] = None,
    tracer: Optional[Tracer] = None,
    slo=None,
) -> Iterator:
    """Serve a batch of tables through one trained engine, streaming
    :class:`~repro.core.selection.SelectionResult`s in input order.

    With the process backend the engine (models included) is pickled to
    each worker exactly once via the pool initializer; the thread
    backend shares it directly.  ``n_jobs`` defaults to the engine
    config's value; 1 degrades to a plain serial loop.

    Observability: with a ``metrics`` registry every table contributes a
    ``batch_task_seconds{worker=...}`` latency sample measured *inside*
    its worker (queue wait excluded); tables at or above
    ``slow_threshold`` seconds are appended to the caller-owned
    ``slow_log`` (a list or :class:`SlowTableLog`) as ``{table, rows,
    columns, seconds, worker}`` dicts and counted in
    ``batch_slow_tables_total`` — the slow-table log every serving stack
    wants when one pathological upload drags a batch.

    ``events`` records the batch's decision events: each table's full
    per-request stream is captured in a private worker-side log (process
    workers cannot share the parent's handle), merged back in input
    order, and followed by one ``batch_table`` phase event — so two runs
    of the same batch produce the same event sequence regardless of
    worker scheduling or backend.

    ``dedup`` controls cross-table computation sharing: before any
    fan-out, identical ``(column content, transform)`` pairs across the
    batch's tables are computed once and seeded into the engine's
    transform cache (the top-k is byte-identical — only repeat scans
    disappear).  Defaults to on whenever the engine has a cache; pass
    ``False`` to force every table to scan independently (the ablation
    baseline).

    Request correlation: the driver mints one request id per table *in
    the parent* and ships it to the task (process workers re-enter the
    scope by id), so a table's worker-side spans/events and the
    parent-side ``batch_table`` record all agree — the join
    ``repro obs timeline --request <id>`` relies on.  ``tracer``
    additionally records a ``batch_select`` umbrella span and (process
    backend) adopts each worker's span tree onto its own timeline;
    ``slo`` (an :class:`~repro.obs.health.SLOMonitor`) receives one
    latency + error + cache-hit outcome per table.
    """
    tables = list(tables)
    jobs = resolve_n_jobs(
        n_jobs if n_jobs is not None else engine.config.n_jobs
    )
    backend = backend or engine.config.backend
    jobs = min(jobs, max(1, len(tables)))
    capture = events is not None
    request_ids = [new_request_id() for _ in tables]
    if dedup or (dedup is None and getattr(engine, "cache", None) is not None):
        _seed_batch_dedup(engine, tables, metrics, events)

    with maybe_span(
        tracer, "batch_select", tables=len(tables), n_jobs=jobs,
        backend=backend if jobs > 1 else "serial",
    ):
        if jobs <= 1:
            for table, rid in zip(tables, request_ids):
                result, seconds, worker, worker_events, worker_spans = (
                    _timed_top_k(engine, table, k, capture, rid)
                )
                _record_batch_task(
                    table, seconds, worker, metrics, slow_log,
                    slow_threshold, events, worker_events, rid,
                    result=result, slo=slo,
                )
                yield result
            return

        if backend == "thread":
            # Threads share the parent tracer: engine.top_k records
            # spans straight onto it (per-thread stacks), so no span
            # capture/adoption round-trip is needed.
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                futures = [
                    pool.submit(_timed_top_k, engine, t, k, capture, rid)
                    for t, rid in zip(tables, request_ids)
                ]
                for table, rid, future in zip(
                    tables, request_ids, futures
                ):
                    result, seconds, worker, worker_events, worker_spans = (
                        future.result()
                    )
                    _record_batch_task(
                        table, seconds, worker, metrics, slow_log,
                        slow_threshold, events, worker_events, rid,
                        result=result, slo=slo,
                    )
                    yield result
        elif backend == "process":
            capture_spans = tracer is not None
            with ProcessPoolExecutor(
                max_workers=jobs,
                initializer=_init_batch_worker,
                initargs=(engine, k, capture, capture_spans),
            ) as pool:
                futures = [
                    pool.submit(_batch_worker, t, rid)
                    for t, rid in zip(tables, request_ids)
                ]
                for table, rid, future in zip(
                    tables, request_ids, futures
                ):
                    result, seconds, worker, worker_events, worker_spans = (
                        future.result()
                    )
                    _record_batch_task(
                        table, seconds, worker, metrics, slow_log,
                        slow_threshold, events, worker_events, rid,
                        result=result, slo=slo,
                        tracer=tracer, worker_spans=worker_spans,
                    )
                    yield result
        else:
            raise SelectionError(
                f"unknown parallel backend {backend!r}; use 'process' "
                f"or 'thread'"
            )
