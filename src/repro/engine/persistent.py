"""Disk-backed L4 cache tier: serving-cache entries that survive restarts.

The in-memory :class:`~repro.engine.cache.MultiLevelCache` (L1-L3:
transforms, feature vectors, whole results) dies with the process —
wrong for a fleet serving repeat traffic, where the same tables come
back hour after hour across deploys and worker restarts.  This module
adds the persistence axis: a :class:`DiskCacheTier` sits *behind* the
LRU levels as "L4", consulted on a memory miss and written through on a
memory store, so a fresh process facing a table the fleet has already
served answers from disk instead of recomputing the pipeline.

Design constraints, and how each is met:

* **content-addressed** — every entry's filename is the SHA-256 of a
  canonical *string* signature of its cache key (table content
  fingerprint + level-specific parts), so re-parsed CSVs, renamed table
  objects, and different processes all address the same file;
* **schema-versioned** — entries live under a ``v<N>/`` directory and
  carry the version in their header (like
  :data:`repro.obs.events.EVENT_LOG_SCHEMA_VERSION`); bumping
  :data:`PERSISTENT_CACHE_SCHEMA_VERSION` invalidates cleanly because
  old entries are simply never addressed again;
* **safe for concurrent writers** — one file per entry (no global lock
  or index to corrupt) written to a temporary file in the same
  directory and published with an atomic ``os.replace``, so a reader
  never observes a torn entry no matter how many processes race;
* **corruption-tolerant** — a truncated, garbled, or wrong-version
  entry fails its checksum/header validation and degrades to a *miss*
  (counted in ``errors`` and unlinked), never an exception;
* **size-bounded** — an approximate byte budget triggers
  oldest-first (mtime) eviction; hits refresh mtime so hot entries
  survive;
* **pre-warmable** — :meth:`DiskCacheTier.prewarm` loads the hottest
  entries back into the in-memory LRU levels on startup, so a restarted
  server's first requests hit L1-L3 rather than paying even the disk
  round-trip.

Entry file layout (binary)::

    MAGIC(4) | version(4, big-endian) | sha256(payload)(32) | payload

where ``payload`` is the pickle of ``(memory_key, value)`` — the
original in-memory cache key rides along so :meth:`prewarm` can
re-insert entries into the LRU levels without reverse-engineering
hashes.

Like :mod:`repro.engine.cache`, this module imports nothing from
:mod:`repro.core`, so it loads from either side of the engine/core
boundary without cycles.
"""

from __future__ import annotations

import enum
import hashlib
import os
import pickle
import struct
import tempfile
import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "PERSISTENT_CACHE_SCHEMA_VERSION",
    "DiskCacheTier",
    "cache_key_signature",
]

#: Version stamped into the tier's directory name and every entry
#: header; bump on any incompatible change to the payload shape (e.g. a
#: ``TransformResult`` or ``SelectionResult`` field change) and old
#: entries are never addressed again — a clean, total invalidation.
#: v2: ``SelectionResult`` gained the ``source`` ingest-record field —
#: v1 pickles would crash ``dataclasses.replace`` on the result-cache
#: hit path.
PERSISTENT_CACHE_SCHEMA_VERSION = 2

#: File magic for entry headers ("DeepEye L4").
_MAGIC = b"DEL4"

#: ``magic + version + sha256`` — everything before the payload.
_HEADER = struct.Struct(">4sI32s")

#: Default disk budget: generous for feature vectors and transform
#: results, small enough not to surprise a laptop.
DEFAULT_MAX_BYTES = 256 * 1024 * 1024


def cache_key_signature(key: Any) -> str:
    """Canonical, process-independent string form of a cache key.

    The in-memory cache keys are tuples of strings, numbers, ``None``,
    enums, and frozen AST fragments (transforms / orderings, which all
    expose ``describe()``).  Each component maps to a stable token —
    enum *values* rather than reprs (str-enum formatting changed across
    Python versions), ``describe()`` for AST nodes, ``repr`` for
    numbers — so the same logical key produces the same signature in
    every process on every platform.

    Raises ``TypeError`` for components with no stable form (arbitrary
    objects); callers gate those keys out before reaching the disk tier
    (see ``select_top_k``'s model-identity handling).
    """
    return "|".join(_token(part) for part in _flatten(key))


#: Structural markers for nested tuples — sentinel objects, so a key
#: component that is literally the string ``"("`` cannot collide.
_OPEN = object()
_CLOSE = object()


def _flatten(obj: Any) -> Iterable[Any]:
    if isinstance(obj, (tuple, list)):
        yield _OPEN
        for part in obj:
            yield from _flatten(part)
        yield _CLOSE
    else:
        yield obj


def _token(obj: Any) -> str:
    if obj is _OPEN:
        return "("
    if obj is _CLOSE:
        return ")"
    if obj is None:
        return "~"
    if isinstance(obj, enum.Enum):
        return f"e:{type(obj).__name__}:{obj.value}"
    if isinstance(obj, bool):
        return f"b:{obj}"
    if isinstance(obj, str):
        return f"s:{obj}"
    if isinstance(obj, (int, float)):
        return f"n:{obj!r}"
    describe = getattr(obj, "describe", None)
    if callable(describe):
        return f"d:{type(obj).__name__}:{describe()}"
    raise TypeError(
        f"cache key component {obj!r} ({type(obj).__name__}) has no "
        f"stable cross-process signature"
    )


class DiskCacheTier:
    """The disk-backed L4 level behind a ``MultiLevelCache``.

    Parameters
    ----------
    directory:
        Root of the cache; entries live under
        ``directory/v<schema>/<level>/<hash[:2]>/<hash>.entry``.
    max_bytes:
        Approximate byte budget; exceeding it evicts oldest-mtime
        entries across all levels until back under.  ``None`` disables
        eviction.
    levels:
        Which cache levels persist (default: all three).  Dropping
        ``"features"`` trades warm-start coverage for far fewer small
        files on write-heavy workloads.
    touch_on_hit:
        Refresh an entry's mtime when it serves a hit, so eviction
        (oldest-first) and :meth:`prewarm` (newest-first) both see
        *recency of use*, not just creation order.
    """

    LEVELS = ("transforms", "features", "results")

    def __init__(
        self,
        directory,
        max_bytes: Optional[int] = DEFAULT_MAX_BYTES,
        levels: Tuple[str, ...] = LEVELS,
        touch_on_hit: bool = True,
    ) -> None:
        self.directory = os.fspath(directory)
        self.max_bytes = max_bytes
        self.levels = tuple(levels)
        self.touch_on_hit = bool(touch_on_hit)
        self.version_dir = os.path.join(
            self.directory, f"v{PERSISTENT_CACHE_SCHEMA_VERSION}"
        )
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[str, int]] = {
            level: self._zero_counters() for level in self.LEVELS
        }
        #: Running estimate of on-disk bytes; seeded lazily by a scan on
        #: the first put so construction stays O(1).
        self._approx_bytes: Optional[int] = None

    @staticmethod
    def _zero_counters() -> Dict[str, int]:
        return {"hits": 0, "misses": 0, "stores": 0, "evictions": 0,
                "errors": 0}

    # -- addressing -----------------------------------------------------
    def _path(self, level: str, key: Any) -> str:
        digest = hashlib.sha256(
            cache_key_signature((level, key)).encode("utf-8")
        ).hexdigest()
        return os.path.join(
            self.version_dir, level, digest[:2], f"{digest}.entry"
        )

    # -- read side ------------------------------------------------------
    def get(self, level: str, key: Any) -> Any:
        """Look the entry up, returning its value or ``None`` on a miss.

        Every failure mode — absent file, truncated payload, checksum
        mismatch, wrong magic or version, unpicklable bytes — is a miss
        (corrupt files additionally count as ``errors`` and are
        unlinked), never an exception: the cache must only ever make
        serving faster, not more fragile.
        """
        if level not in self.levels:
            return None
        path = self._path(level, key)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            self._count(level, "misses")
            return None
        value = self._decode(blob)
        if value is None:
            self._count(level, "errors")
            self._count(level, "misses")
            try:  # a corrupt entry will never validate; reclaim it
                os.remove(path)
            except OSError:
                pass
            return None
        if self.touch_on_hit:
            try:
                os.utime(path, None)
            except OSError:
                pass
        self._count(level, "hits")
        return value[1]

    @staticmethod
    def _decode(blob: bytes) -> Optional[Tuple[Any, Any]]:
        """``(memory_key, value)`` from an entry blob, or ``None``."""
        if len(blob) < _HEADER.size:
            return None
        magic, version, digest = _HEADER.unpack_from(blob)
        if magic != _MAGIC or version != PERSISTENT_CACHE_SCHEMA_VERSION:
            return None
        payload = blob[_HEADER.size:]
        if hashlib.sha256(payload).digest() != digest:
            return None
        try:
            decoded = pickle.loads(payload)
        except Exception:
            return None
        if not isinstance(decoded, tuple) or len(decoded) != 2:
            return None
        return decoded

    # -- write side -----------------------------------------------------
    def put(self, level: str, key: Any, value: Any) -> bool:
        """Persist one entry (write-to-temp + atomic ``os.replace``).

        Returns whether the entry was written; unpicklable values and
        disabled levels are skipped silently (persistence is best
        effort), and anything already on disk for this key is replaced
        atomically — concurrent writers of the same key each publish a
        complete entry, last writer wins, readers never see a tear.
        """
        if level not in self.levels:
            return False
        try:
            payload = pickle.dumps((key, value), protocol=4)
        except Exception:
            return False
        blob = _HEADER.pack(
            _MAGIC,
            PERSISTENT_CACHE_SCHEMA_VERSION,
            hashlib.sha256(payload).digest(),
        ) + payload
        path = self._path(level, key)
        parent = os.path.dirname(path)
        try:
            os.makedirs(parent, exist_ok=True)
            fd, tmp_path = tempfile.mkstemp(
                prefix=".tmp-", suffix=".entry", dir=parent
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(blob)
                os.replace(tmp_path, path)
            except BaseException:
                try:
                    os.remove(tmp_path)
                except OSError:
                    pass
                raise
        except OSError:
            return False
        self._count(level, "stores")
        with self._lock:
            if self._approx_bytes is None:
                self._approx_bytes = self._scan_bytes()
            else:
                self._approx_bytes += len(blob)
            over_budget = (
                self.max_bytes is not None
                and self._approx_bytes > self.max_bytes
            )
        if over_budget:
            self._evict_to_budget()
        return True

    # -- eviction -------------------------------------------------------
    def _entries(self) -> List[Tuple[str, float, int]]:
        """All entry files as ``(path, mtime, size)`` (best effort)."""
        found: List[Tuple[str, float, int]] = []
        for level in self.levels:
            level_dir = os.path.join(self.version_dir, level)
            if not os.path.isdir(level_dir):
                continue
            for root, _dirs, files in os.walk(level_dir):
                for name in files:
                    if not name.endswith(".entry") or name.startswith("."):
                        continue
                    path = os.path.join(root, name)
                    try:
                        stat = os.stat(path)
                    except OSError:
                        continue
                    found.append((path, stat.st_mtime, stat.st_size))
        return found

    def _scan_bytes(self) -> int:
        return sum(size for _, _, size in self._entries())

    def _evict_to_budget(self) -> None:
        """Remove oldest-mtime entries until back under ``max_bytes``."""
        if self.max_bytes is None:
            return
        entries = sorted(self._entries(), key=lambda e: e[1])
        total = sum(size for _, _, size in entries)
        for path, _mtime, size in entries:
            if total <= self.max_bytes:
                break
            try:
                os.remove(path)
            except OSError:
                continue
            total -= size
            self._count(self._level_of(path), "evictions")
        with self._lock:
            self._approx_bytes = total

    def _level_of(self, path: str) -> str:
        """The level an entry path belongs to (first component under the
        version directory)."""
        relative = os.path.relpath(path, self.version_dir)
        head = relative.split(os.sep, 1)[0]
        return head if head in self._counters else self.LEVELS[0]

    # -- maintenance / reporting ----------------------------------------
    def clear(self) -> int:
        """Delete every entry (all schema versions); returns the count."""
        removed = 0
        if not os.path.isdir(self.directory):
            return 0
        for root, _dirs, files in os.walk(self.directory):
            for name in files:
                if name.endswith(".entry"):
                    try:
                        os.remove(os.path.join(root, name))
                        removed += 1
                    except OSError:
                        pass
        with self._lock:
            self._approx_bytes = 0
        return removed

    def entry_count(self, level: Optional[str] = None) -> int:
        """Entries currently on disk (one level, or all)."""
        levels = (level,) if level else self.levels
        count = 0
        for name in levels:
            level_dir = os.path.join(self.version_dir, name)
            if not os.path.isdir(level_dir):
                continue
            for _root, _dirs, files in os.walk(level_dir):
                count += sum(
                    1 for f in files
                    if f.endswith(".entry") and not f.startswith(".")
                )
        return count

    def total_bytes(self) -> int:
        """Actual on-disk bytes across all entries (rescans)."""
        total = self._scan_bytes()
        with self._lock:
            self._approx_bytes = total
        return total

    def stats(self) -> Dict[str, int]:
        """Aggregate ``{hits, misses, stores, evictions, errors, size,
        bytes}`` across the persisted levels — the shape
        ``MultiLevelCache.stats_by_level`` surfaces as its ``disk``
        entry (``size`` counts on-disk entries so the CLI cache report
        reads uniformly across levels)."""
        with self._lock:
            merged = self._zero_counters()
            for counters in self._counters.values():
                for name, value in counters.items():
                    merged[name] += value
        merged["size"] = self.entry_count()
        merged["bytes"] = self._scan_bytes()
        return merged

    def stats_by_level(self) -> Dict[str, Dict[str, int]]:
        """This process's per-level L4 counters."""
        with self._lock:
            return {
                level: dict(counters)
                for level, counters in self._counters.items()
            }

    def _count(self, level: str, counter: str, amount: int = 1) -> None:
        with self._lock:
            self._counters.setdefault(level, self._zero_counters())
            self._counters[level][counter] = (
                self._counters[level].get(counter, 0) + amount
            )

    # -- prewarm --------------------------------------------------------
    def prewarm(self, cache, per_level: Optional[int] = None) -> Dict[str, int]:
        """Load the hottest entries back into a ``MultiLevelCache``.

        For each persisted level, entries are read newest-mtime-first
        (mtime is refreshed on hit, so this is recency of *use*) and
        inserted into the corresponding LRU level until ``per_level``
        entries (default: that LRU's capacity) are loaded or the disk
        runs dry.  Corrupt entries are skipped.  Returns the per-level
        loaded counts — a restarted server calls this once on startup
        so its first requests hit memory, not disk.
        """
        loaded: Dict[str, int] = {}
        for level in self.levels:
            lru = getattr(cache, level, None)
            if lru is None:
                continue
            budget = per_level if per_level is not None else lru.maxsize
            if budget <= 0:
                loaded[level] = 0
                continue
            level_dir = os.path.join(self.version_dir, level)
            files: List[Tuple[str, float]] = []
            if os.path.isdir(level_dir):
                for root, _dirs, names in os.walk(level_dir):
                    for name in names:
                        if not name.endswith(".entry") or name.startswith("."):
                            continue
                        path = os.path.join(root, name)
                        try:
                            files.append((path, os.stat(path).st_mtime))
                        except OSError:
                            continue
            files.sort(key=lambda item: item[1], reverse=True)
            count = 0
            for path, _mtime in files[:budget]:
                try:
                    with open(path, "rb") as handle:
                        blob = handle.read()
                except OSError:
                    continue
                decoded = self._decode(blob)
                if decoded is None:
                    self._count(level, "errors")
                    continue
                memory_key, value = decoded
                lru.put(memory_key, value)
                count += 1
            loaded[level] = count
        return loaded

    # -- pickling (locks cannot cross process boundaries) ---------------
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        del state["_lock"]
        # Workers keep their own hit/miss accounting and byte estimate.
        state["_counters"] = {
            level: self._zero_counters() for level in self.LEVELS
        }
        state["_approx_bytes"] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DiskCacheTier({self.directory!r}, "
            f"v{PERSISTENT_CACHE_SCHEMA_VERSION}, levels={self.levels})"
        )
