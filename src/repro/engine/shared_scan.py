"""Shared-scan batch execution of aggregate queries.

Candidate enumeration issues thousands of tiny aggregation queries that
differ only in the (Y, AGG) tail: the paper's first Section V-B
optimization — "when grouping and binning the column, we compute the
AGG values on other columns together and avoid binning/grouping
multiple times" — and the DBMS-style sharing it credits to SeeDB.

:class:`SharedScanEngine` realises that: requests are grouped by their
TRANSFORM, each transform scans the table exactly once, and within a
scan every requested Y column's SUM and COUNT are computed together
(AVG = SUM / COUNT falls out for free).  ``execute_naive`` runs the
same batch one-query-at-a-time for the ablation benchmark.

The second half of this module extends the sharing across *tables*:
within one ``batch_select`` call, different tables routinely carry
identical columns (denormalised exports, per-region copies of a shared
dimension, the same CSV uploaded under two names).  A transform's
output depends only on the values it scans — the compact
:class:`~repro.language.binning.TransformResult` contains no column
name — so identical ``(column content, transform)`` pairs across tables
can compute once.  :func:`batch_shared_transforms` finds those pairs by
per-column content fingerprint (:meth:`repro.dataset.column.Column.fingerprint`,
cheaper than the whole-table hash and name-independent), computes each
group once, and returns cache-seed entries keyed exactly as
:class:`~repro.core.enumeration.EnumerationContext` looks them up, so
every backend (serial, thread, process — the seeded cache ships to
process workers inside the pickled engine) reuses the first result
instead of rescanning.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..dataset.column import ColumnType
from ..dataset.table import Table
from ..errors import ValidationError
from ..language.aggregation import aggregate
from ..language.ast import (
    AggregateOp,
    BinByGranularity,
    BinByUDF,
    BinIntoBuckets,
    GroupBy,
    Transform,
)
from ..language.executor import apply_transform
from ..obs.kernels import KERNEL_STATS

__all__ = [
    "AggregateRequest",
    "ScanStats",
    "SharedScanEngine",
    "BatchDedupStats",
    "transform_signature",
    "batch_shared_transforms",
]


@dataclass(frozen=True)
class AggregateRequest:
    """One aggregation query: TRANSFORM x, then OP(y) per bucket.

    ``y`` may be ``None`` for CNT (counting needs no Y column).
    """

    transform: Transform
    op: AggregateOp
    y: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op is not AggregateOp.CNT and self.y is None:
            raise ValidationError(f"{self.op.value} requires a Y column")


@dataclass
class ScanStats:
    """Work counters for the shared-vs-naive comparison.

    The engine increments these alongside the kernel-level accounting in
    :data:`~repro.obs.kernels.KERNEL_STATS`: each ``transforms_applied``
    corresponds to one transform-kernel invocation and each
    ``column_passes`` to one ``y_scan`` invocation, so the two ledgers
    agree by construction.
    """

    transforms_applied: int = 0
    column_passes: int = 0

    def reset(self) -> None:
        """Zero the counters before a new measurement."""
        self.transforms_applied = 0
        self.column_passes = 0

    def record_metrics(self, registry) -> None:
        """Publish the counters into a
        :class:`~repro.obs.metrics.MetricsRegistry` (monotone
        ``set_cumulative``, safe to call repeatedly)."""
        registry.counter(
            "shared_scan_transforms_total",
            help="Distinct transforms the shared-scan engine applied",
        ).set_cumulative(self.transforms_applied)
        registry.counter(
            "shared_scan_column_passes_total",
            help="Weighted column scans (one per distinct Y per transform)",
        ).set_cumulative(self.column_passes)


class SharedScanEngine:
    """Batch executor with transform- and column-level sharing."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.stats = ScanStats()

    # ------------------------------------------------------------------
    def execute_batch(
        self, requests: Sequence[AggregateRequest]
    ) -> Dict[AggregateRequest, Tuple[Tuple[str, ...], np.ndarray]]:
        """Execute all requests with maximal sharing.

        Returns ``{request: (bucket labels, aggregated values)}``.  The
        table is scanned once per distinct transform; each needed Y
        column is summed once per transform regardless of how many of
        SUM / AVG ask for it.
        """
        by_transform: Dict[Transform, List[AggregateRequest]] = {}
        for request in requests:
            by_transform.setdefault(request.transform, []).append(request)

        results: Dict[AggregateRequest, Tuple[Tuple[str, ...], np.ndarray]] = {}
        for transform, group in by_transform.items():
            result = apply_transform(transform, self.table)
            self.stats.transforms_applied += 1
            labels = result.labels
            n_buckets = result.num_buckets
            assignment = result.assignment

            start = _time.perf_counter()
            counts = np.bincount(assignment, minlength=n_buckets).astype(
                np.float64
            )
            KERNEL_STATS.record(
                "count_scan", len(assignment), n_buckets,
                _time.perf_counter() - start,
            )
            # One pass per distinct Y column serves SUM and AVG together.
            sums: Dict[str, np.ndarray] = {}
            for request in group:
                if request.op is AggregateOp.CNT:
                    continue
                if request.y not in sums:
                    y_col = self.table.column(request.y)
                    if y_col.ctype is not ColumnType.NUMERICAL:
                        raise ValidationError(
                            f"{request.op.value} over non-numerical column "
                            f"{request.y!r}"
                        )
                    start = _time.perf_counter()
                    sums[request.y] = np.bincount(
                        assignment,
                        weights=y_col.values.astype(np.float64),
                        minlength=n_buckets,
                    )
                    KERNEL_STATS.record(
                        "y_scan", len(assignment), n_buckets,
                        _time.perf_counter() - start,
                    )
                    self.stats.column_passes += 1

            for request in group:
                if request.op is AggregateOp.CNT:
                    values = counts
                elif request.op is AggregateOp.SUM:
                    values = sums[request.y]
                else:  # AVG
                    with np.errstate(invalid="ignore", divide="ignore"):
                        values = np.where(
                            counts > 0, sums[request.y] / counts, 0.0
                        )
                results[request] = (labels, values)
        return results

    # ------------------------------------------------------------------
    def execute_naive(
        self, requests: Sequence[AggregateRequest]
    ) -> Dict[AggregateRequest, Tuple[Tuple[str, ...], np.ndarray]]:
        """The unshared baseline: re-transform and re-scan per request."""
        results: Dict[AggregateRequest, Tuple[Tuple[str, ...], np.ndarray]] = {}
        for request in requests:
            result = apply_transform(request.transform, self.table)
            self.stats.transforms_applied += 1
            y_col = (
                self.table.column(request.y)
                if request.op is not AggregateOp.CNT
                else None
            )
            if y_col is not None:
                self.stats.column_passes += 1
            values = aggregate(
                request.op, result.assignment, result.num_buckets, y_col
            )
            results[request] = (result.labels, values)
        return results


# ----------------------------------------------------------------------
# Cross-table computation sharing within one batch
# ----------------------------------------------------------------------
@dataclass
class BatchDedupStats:
    """Accounting for one :func:`batch_shared_transforms` pass.

    ``transforms_total`` counts the distinct ``(table, transform)``
    pairs the batch's enumeration would apply; ``computed`` the content
    groups actually scanned; ``reused`` the pairs served from another
    table's scan — the transform-kernel invocations the batch saved.
    """

    tables: int = 0
    transforms_total: int = 0
    computed: int = 0
    reused: int = 0

    def record_metrics(self, registry) -> None:
        """Publish into a :class:`~repro.obs.metrics.MetricsRegistry`
        (plain ``inc`` — each batch contributes its own deltas)."""
        registry.counter(
            "batch_dedup_transforms_total", labels={"outcome": "computed"},
            help="Transform groups the batch deduper scanned once",
        ).inc(self.computed)
        registry.counter(
            "batch_dedup_transforms_total", labels={"outcome": "reused"},
            help="(table, transform) pairs served from another table's scan",
        ).inc(self.reused)


def transform_signature(transform: Transform) -> Tuple:
    """Name-independent identity of a transform's *computation*.

    Two transforms share a signature exactly when, applied to columns
    with identical content, they produce byte-identical
    :class:`~repro.language.binning.TransformResult`\\ s — so the column
    *name* inside the AST node is deliberately dropped (``GROUP BY
    carrier`` on one table and ``GROUP BY airline`` on another are the
    same scan when the values match).  UDF bins key on the registered
    UDF name: within one batch a name maps to one callable (the shared
    engine config), which is the same contract the feature-level cache
    already relies on.
    """
    if isinstance(transform, GroupBy):
        return ("group",)
    if isinstance(transform, BinByGranularity):
        return ("bin_gran", transform.granularity.value)
    if isinstance(transform, BinIntoBuckets):
        return ("bin_buckets", int(transform.n))
    if isinstance(transform, BinByUDF):
        return ("bin_udf", transform.udf_name)
    # Unknown transform kinds never dedup (but still enumerate fine).
    return ("opaque", type(transform).__name__, transform.describe())


def _candidate_transforms(column, config, mode: str) -> List[Transform]:
    """The transforms enumeration would apply with this column on x.

    Deliberately the same generators the enumeration modes use —
    imported lazily because :mod:`repro.core` imports this package at
    init time (same discipline as ``selection.py``'s lazy import of
    :mod:`repro.engine.parallel`).
    """
    from ..core.enumeration import _exhaustive_transforms
    from ..core.rules import transform_rules

    if mode == "exhaustive":
        return [t for t in _exhaustive_transforms(column, config) if t is not None]
    return transform_rules(column, config.rule_config())


def batch_shared_transforms(
    tables: Sequence[Table],
    config,
    mode: str = "rules",
) -> Tuple[Dict[Tuple[str, Transform], object], BatchDedupStats]:
    """Compute each distinct ``(column content, transform)`` group once.

    Walks every table's columns, groups the transforms the batch's
    enumeration will request by ``(column fingerprint,
    transform signature)``, applies each group with two or more
    occurrences a single time, and returns ``{(table fingerprint,
    transform): TransformResult}`` seed entries — exactly the keys
    :class:`~repro.core.enumeration.EnumerationContext.transform_result`
    looks up in the shared ``transforms`` cache level, so seeding them
    before the batch fans out makes every duplicate a cache hit on
    every backend.  Groups occurring once are left to enumeration's own
    lazy path (no speculative scans for work pruning may skip).

    The shared result object is byte-identical for every occurrence
    (``TransformResult`` carries no column name), so the top-k is
    unchanged — only the number of transform-kernel invocations drops.
    """
    stats = BatchDedupStats(tables=len(tables))
    # (column_fp, signature) -> list of (table_fp, transform, table)
    groups: Dict[Tuple[str, Tuple], List[Tuple[str, Transform, Table]]] = {}
    for table in tables:
        table_fp = table.fingerprint()
        for column in table.columns:
            transforms = _candidate_transforms(column, config, mode)
            if not transforms:
                continue
            column_fp = column.fingerprint()
            for transform in transforms:
                key = (column_fp, transform_signature(transform))
                groups.setdefault(key, []).append(
                    (table_fp, transform, table)
                )

    entries: Dict[Tuple[str, Transform], object] = {}
    for occurrences in groups.values():
        stats.transforms_total += len(occurrences)
        distinct = {(fp, transform) for fp, transform, _ in occurrences}
        if len(distinct) < 2:
            continue
        first_fp, first_transform, first_table = occurrences[0]
        result = apply_transform(first_transform, first_table)
        stats.computed += 1
        seeded = set()
        for table_fp, transform, _table in occurrences:
            cache_key = (table_fp, transform)
            if cache_key in seeded:
                continue
            seeded.add(cache_key)
            entries[cache_key] = result
        stats.reused += len(seeded) - 1
    return entries, stats
