"""Shared-scan batch execution of aggregate queries.

Candidate enumeration issues thousands of tiny aggregation queries that
differ only in the (Y, AGG) tail: the paper's first Section V-B
optimization — "when grouping and binning the column, we compute the
AGG values on other columns together and avoid binning/grouping
multiple times" — and the DBMS-style sharing it credits to SeeDB.

:class:`SharedScanEngine` realises that: requests are grouped by their
TRANSFORM, each transform scans the table exactly once, and within a
scan every requested Y column's SUM and COUNT are computed together
(AVG = SUM / COUNT falls out for free).  ``execute_naive`` runs the
same batch one-query-at-a-time for the ablation benchmark.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..dataset.column import ColumnType
from ..dataset.table import Table
from ..errors import ValidationError
from ..language.aggregation import aggregate
from ..language.ast import AggregateOp, Transform
from ..language.executor import apply_transform
from ..obs.kernels import KERNEL_STATS

__all__ = ["AggregateRequest", "ScanStats", "SharedScanEngine"]


@dataclass(frozen=True)
class AggregateRequest:
    """One aggregation query: TRANSFORM x, then OP(y) per bucket.

    ``y`` may be ``None`` for CNT (counting needs no Y column).
    """

    transform: Transform
    op: AggregateOp
    y: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op is not AggregateOp.CNT and self.y is None:
            raise ValidationError(f"{self.op.value} requires a Y column")


@dataclass
class ScanStats:
    """Work counters for the shared-vs-naive comparison.

    The engine increments these alongside the kernel-level accounting in
    :data:`~repro.obs.kernels.KERNEL_STATS`: each ``transforms_applied``
    corresponds to one transform-kernel invocation and each
    ``column_passes`` to one ``y_scan`` invocation, so the two ledgers
    agree by construction.
    """

    transforms_applied: int = 0
    column_passes: int = 0

    def reset(self) -> None:
        """Zero the counters before a new measurement."""
        self.transforms_applied = 0
        self.column_passes = 0

    def record_metrics(self, registry) -> None:
        """Publish the counters into a
        :class:`~repro.obs.metrics.MetricsRegistry` (monotone
        ``set_cumulative``, safe to call repeatedly)."""
        registry.counter(
            "shared_scan_transforms_total",
            help="Distinct transforms the shared-scan engine applied",
        ).set_cumulative(self.transforms_applied)
        registry.counter(
            "shared_scan_column_passes_total",
            help="Weighted column scans (one per distinct Y per transform)",
        ).set_cumulative(self.column_passes)


class SharedScanEngine:
    """Batch executor with transform- and column-level sharing."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.stats = ScanStats()

    # ------------------------------------------------------------------
    def execute_batch(
        self, requests: Sequence[AggregateRequest]
    ) -> Dict[AggregateRequest, Tuple[Tuple[str, ...], np.ndarray]]:
        """Execute all requests with maximal sharing.

        Returns ``{request: (bucket labels, aggregated values)}``.  The
        table is scanned once per distinct transform; each needed Y
        column is summed once per transform regardless of how many of
        SUM / AVG ask for it.
        """
        by_transform: Dict[Transform, List[AggregateRequest]] = {}
        for request in requests:
            by_transform.setdefault(request.transform, []).append(request)

        results: Dict[AggregateRequest, Tuple[Tuple[str, ...], np.ndarray]] = {}
        for transform, group in by_transform.items():
            result = apply_transform(transform, self.table)
            self.stats.transforms_applied += 1
            labels = result.labels
            n_buckets = result.num_buckets
            assignment = result.assignment

            start = _time.perf_counter()
            counts = np.bincount(assignment, minlength=n_buckets).astype(
                np.float64
            )
            KERNEL_STATS.record(
                "count_scan", len(assignment), n_buckets,
                _time.perf_counter() - start,
            )
            # One pass per distinct Y column serves SUM and AVG together.
            sums: Dict[str, np.ndarray] = {}
            for request in group:
                if request.op is AggregateOp.CNT:
                    continue
                if request.y not in sums:
                    y_col = self.table.column(request.y)
                    if y_col.ctype is not ColumnType.NUMERICAL:
                        raise ValidationError(
                            f"{request.op.value} over non-numerical column "
                            f"{request.y!r}"
                        )
                    start = _time.perf_counter()
                    sums[request.y] = np.bincount(
                        assignment,
                        weights=y_col.values.astype(np.float64),
                        minlength=n_buckets,
                    )
                    KERNEL_STATS.record(
                        "y_scan", len(assignment), n_buckets,
                        _time.perf_counter() - start,
                    )
                    self.stats.column_passes += 1

            for request in group:
                if request.op is AggregateOp.CNT:
                    values = counts
                elif request.op is AggregateOp.SUM:
                    values = sums[request.y]
                else:  # AVG
                    with np.errstate(invalid="ignore", divide="ignore"):
                        values = np.where(
                            counts > 0, sums[request.y] / counts, 0.0
                        )
                results[request] = (labels, values)
        return results

    # ------------------------------------------------------------------
    def execute_naive(
        self, requests: Sequence[AggregateRequest]
    ) -> Dict[AggregateRequest, Tuple[Tuple[str, ...], np.ndarray]]:
        """The unshared baseline: re-transform and re-scan per request."""
        results: Dict[AggregateRequest, Tuple[Tuple[str, ...], np.ndarray]] = {}
        for request in requests:
            result = apply_transform(request.transform, self.table)
            self.stats.transforms_applied += 1
            y_col = (
                self.table.column(request.y)
                if request.op is not AggregateOp.CNT
                else None
            )
            if y_col is not None:
                self.stats.column_passes += 1
            values = aggregate(
                request.op, result.assignment, result.num_buckets, y_col
            )
            results[request] = (result.labels, values)
        return results
