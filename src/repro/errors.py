"""Exception hierarchy for the DeepEye reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  More specific
subclasses mirror the subsystems: datasets, the visualization language,
ML models, and selection.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DatasetError(ReproError):
    """Problems with relational tables: bad columns, length mismatches."""


class ColumnNotFoundError(DatasetError):
    """A referenced column name does not exist in the table."""

    def __init__(self, name: str, available: list) -> None:
        super().__init__(
            f"column {name!r} not found; available columns: {sorted(available)}"
        )
        self.name = name
        self.available = list(available)


class TypeInferenceError(DatasetError):
    """A column's values could not be coerced to the inferred type."""


class QueryError(ReproError):
    """Problems with visualization-language queries."""


class ParseError(QueryError):
    """The textual visualization query could not be parsed."""

    def __init__(self, message: str, line: int | None = None) -> None:
        location = f" (line {line})" if line is not None else ""
        super().__init__(f"{message}{location}")
        self.line = line


class ValidationError(QueryError):
    """A structurally valid query is semantically inconsistent.

    Examples: binning a categorical column, aggregating with AVG over a
    non-numeric column, or ordering by a column that is not selected.
    """


class ExecutionError(QueryError):
    """A valid query failed while being evaluated against a table."""


class ModelError(ReproError):
    """Problems with the from-scratch ML models."""


class NotFittedError(ModelError):
    """A model was used for prediction before being fitted."""

    def __init__(self, model_name: str) -> None:
        super().__init__(
            f"{model_name} is not fitted yet; call fit() before predicting"
        )


class SelectionError(ReproError):
    """Problems during visualization selection (ranking / top-k)."""
