"""Section VI experiment protocols, shared by benchmarks and tests."""

from .common import ExperimentSetup, ndcg_with_exponential_gain
from .corpus_stats import table3, table4
from .crossval import CrossValResult, cross_validate_recognition
from .learning_curve import LearningCurvePoint, recognition_learning_curve
from .coverage import CoverageRow, figure9_top_results, table6
from .efficiency import CONFIGURATIONS, ConfigTiming, figure12
from .ranking import METHODS, figure11, figure11_by_chart
from .recognition import MODEL_LABELS, figure10, table7, table8
from .report import ReproductionResult, run_reproduction, write_markdown_report

__all__ = [
    "ExperimentSetup",
    "ndcg_with_exponential_gain",
    "table3",
    "table4",
    "CrossValResult",
    "cross_validate_recognition",
    "LearningCurvePoint",
    "recognition_learning_curve",
    "CoverageRow",
    "figure9_top_results",
    "table6",
    "CONFIGURATIONS",
    "ConfigTiming",
    "figure12",
    "METHODS",
    "figure11",
    "figure11_by_chart",
    "MODEL_LABELS",
    "figure10",
    "table7",
    "table8",
    "ReproductionResult",
    "run_reproduction",
    "write_markdown_report",
]
