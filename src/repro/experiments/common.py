"""Shared experiment setup: corpus, trained models, and protocols.

Every Section VI experiment starts the same way — build the 42-table
corpus, annotate it with the perception oracle, train the recognizers
and rankers on the 32 training tables — so that setup lives here once.
``ExperimentSetup.build`` is the single entry point; benchmarks pass a
small ``scale`` so the full suite runs in minutes, and EXPERIMENTS.md
records the scale used for the reported numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.hybrid import HybridRanker
from ..core.ltr import LearningToRankRanker
from ..core.nodes import VisualizationNode
from ..core.recognition import VisualizationRecognizer
from ..core.selection import PartialOrderRanker
from ..corpus.benchmark import AnnotatedTable, CorpusConfig, build_corpus
from ..corpus.generators import testing_tables, training_tables
from ..corpus.labeling import PerceptionOracle

__all__ = ["ExperimentSetup", "ndcg_with_exponential_gain"]


def ndcg_with_exponential_gain(
    order: Sequence[int], relevance: Sequence[float]
) -> float:
    """NDCG with the standard graded gain 2^rel - 1 [Valizadegan 2009]."""
    from ..ml.metrics import ndcg_at_k

    gains = (2.0 ** np.asarray(relevance, dtype=np.float64)) - 1.0
    return ndcg_at_k(gains[np.asarray(order, dtype=np.intp)])


@dataclass
class ExperimentSetup:
    """Corpus + trained models shared by the Section VI experiments."""

    oracle: PerceptionOracle
    train: List[AnnotatedTable]
    test: List[AnnotatedTable]
    recognizers: Dict[str, VisualizationRecognizer]
    ltr: LearningToRankRanker
    partial_order: PartialOrderRanker
    hybrid_alpha: float

    @classmethod
    def build(
        cls,
        train_scale: float = 0.08,
        test_scale: float = 0.02,
        seed: int = 0,
        max_nodes_per_table: int = 150,
        ltr_estimators: int = 50,
        models: Sequence[str] = ("bayes", "svm", "decision_tree"),
    ) -> "ExperimentSetup":
        """Build the corpus and train every model the experiments need.

        The last six training tables are held out from LambdaMART
        fitting and used to tune the hybrid preference weight alpha
        (fitting alpha on LTR's own training tables would always pick
        alpha = 0, since LTR is near-perfect in-sample).
        """
        oracle = PerceptionOracle(seed=seed)
        config = CorpusConfig(seed=seed, max_nodes_per_table=max_nodes_per_table)
        train = build_corpus(training_tables(scale=train_scale, seed=seed), oracle, config)
        test = build_corpus(testing_tables(scale=test_scale, seed=seed), oracle, config)

        train_nodes = [n for a in train for n in a.nodes]
        train_labels = [l for a in train for l in a.annotation.labels]
        recognizers = {}
        for model in models:
            recognizers[model] = VisualizationRecognizer(model=model).fit(
                train_nodes, train_labels
            )

        groups = [(a.nodes, a.annotation.relevance) for a in train]
        holdout = min(6, max(1, len(groups) // 5))
        ltr = LearningToRankRanker(n_estimators=ltr_estimators)
        ltr.fit(groups[:-holdout])

        partial_order = PartialOrderRanker()
        setup = cls(
            oracle=oracle,
            train=train,
            test=test,
            recognizers=recognizers,
            ltr=ltr,
            partial_order=partial_order,
            hybrid_alpha=1.0,
        )
        # Tune alpha against the same full-list protocol the evaluation
        # uses (classifier-filtered partial order + full-list LTR), on
        # the held-out training tables.
        setup.hybrid_alpha = setup._fit_alpha_full_protocol(train[-holdout:])
        return setup

    def _fit_alpha_full_protocol(
        self,
        holdout: Sequence[AnnotatedTable],
        grid: Sequence[float] = (0.0, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0),
    ) -> float:
        """Grid-search alpha maximising mean NDCG of the hybrid
        full-list ranking over held-out annotated tables."""
        cached = []
        for annotated in holdout:
            n = len(annotated.nodes)
            if n < 2:
                continue
            po_positions = np.empty(n)
            po_positions[np.asarray(self.partial_order_full_ranking(annotated))] = (
                np.arange(1, n + 1)
            )
            ltr_positions = np.empty(n)
            ltr_positions[np.asarray(self.ltr_full_ranking(annotated))] = (
                np.arange(1, n + 1)
            )
            cached.append(
                (po_positions, ltr_positions, annotated.annotation.relevance)
            )
        best_alpha, best_score = 1.0, -1.0
        for alpha in grid:
            scores = []
            for po_positions, ltr_positions, relevance in cached:
                order = list(
                    np.argsort(ltr_positions + alpha * po_positions, kind="stable")
                )
                scores.append(ndcg_with_exponential_gain(order, relevance))
            mean_score = float(np.mean(scores)) if scores else 0.0
            if mean_score > best_score:
                best_alpha, best_score = float(alpha), mean_score
        return best_alpha

    # ------------------------------------------------------------------
    # Pipeline-faithful full-list orderings (the Figure 11 protocol)
    # ------------------------------------------------------------------
    @property
    def decision_tree(self) -> VisualizationRecognizer:
        return self.recognizers["decision_tree"]

    def partial_order_full_ranking(
        self, annotated: AnnotatedTable
    ) -> List[int]:
        """The partial-order pipeline's ordering of *all* candidates.

        As in Section IV-C, the trained classifier first decides the
        valid charts; the dominance graph ranks those; candidates the
        classifier rejected trail the list.
        """
        keep = self.decision_tree.predict(annotated.nodes)
        valid_idx = [i for i, k in enumerate(keep) if k]
        invalid_idx = [i for i, k in enumerate(keep) if not k]
        sub_order = self.partial_order.rank([annotated.nodes[i] for i in valid_idx])
        return [valid_idx[j] for j in sub_order] + invalid_idx

    def ltr_full_ranking(self, annotated: AnnotatedTable) -> List[int]:
        """Learning-to-rank's ordering: it "must evaluate every
        visualization" (Section VI-D) — no classifier pre-filter."""
        return self.ltr.rank(annotated.nodes)

    def hybrid_full_ranking(self, annotated: AnnotatedTable) -> List[int]:
        """HybridRank over the two full-list positions (Section IV-D)."""
        n = len(annotated.nodes)
        po_positions = np.empty(n)
        po_positions[np.asarray(self.partial_order_full_ranking(annotated))] = (
            np.arange(1, n + 1)
        )
        ltr_positions = np.empty(n)
        ltr_positions[np.asarray(self.ltr_full_ranking(annotated))] = np.arange(
            1, n + 1
        )
        combined = ltr_positions + self.hybrid_alpha * po_positions
        return list(np.argsort(combined, kind="stable"))
