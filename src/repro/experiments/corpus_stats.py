"""Corpus statistics experiments: Table III and Table IV.

Table III summarises the 42-dataset corpus (tuple/column ranges, type
mixes); Table IV lists the ten testing datasets with their number of
good charts under the ground truth.
"""

from __future__ import annotations

from typing import Dict, List

from ..corpus.benchmark import AnnotatedTable, corpus_statistics
from .common import ExperimentSetup

__all__ = ["table3", "table4"]


def table3(setup: ExperimentSetup) -> Dict[str, object]:
    """Corpus statistics over all 42 annotated datasets."""
    return corpus_statistics(setup.train + setup.test)


def table4(setup: ExperimentSetup) -> List[Dict[str, object]]:
    """Per-testing-dataset rows: name, #-tuples, #-columns, #-charts.

    ``#-charts`` counts ground-truth *good* visualizations, matching the
    paper's note that "the last column, #-charts, refers to good
    visualizations".
    """
    rows = []
    for index, annotated in enumerate(setup.test, start=1):
        rows.append(
            {
                "no": f"X{index}",
                "name": annotated.name,
                "#-tuples": annotated.table.num_rows,
                "#-columns": annotated.table.num_columns,
                "#-charts": annotated.annotation.num_good,
            }
        )
    return rows
