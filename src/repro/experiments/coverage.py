"""Coverage experiment: Table VI (and the Figure 9 screenshot scenario).

For each use case D1-D9, run the trained DeepEye pipeline and report the
smallest k at which the top-k results cover every chart the use case's
publisher actually used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.enumeration import EnumerationConfig, enumerate_candidates
from ..corpus.usecases import UseCase, coverage_k, use_cases
from .common import ExperimentSetup

__all__ = ["CoverageRow", "table6", "figure9_top_results"]


@dataclass
class CoverageRow:
    """One row of Table VI."""

    usecase: str
    num_published: int
    covered_at_k: Optional[int]
    candidates: int

    @property
    def covered(self) -> bool:
        return self.covered_at_k is not None


def _pipeline_ranking(setup: ExperimentSetup, table):
    """Full candidate ranking via the production pipeline: rule-based
    enumeration, classifier filter, partial-order ranking."""
    nodes = enumerate_candidates(table, "rules", EnumerationConfig(orderings="canonical"))
    keep = setup.decision_tree.predict(nodes)
    valid = [n for n, k in zip(nodes, keep) if k]
    rejected = [n for n, k in zip(nodes, keep) if not k]
    order = setup.partial_order.rank(valid)
    return [valid[i] for i in order] + rejected, len(nodes)


def table6(
    setup: ExperimentSetup,
    cases: Optional[List[UseCase]] = None,
    scale: float = 0.2,
) -> List[CoverageRow]:
    """Coverage of the published charts of each use case."""
    cases = cases if cases is not None else use_cases(scale=scale, oracle=setup.oracle)
    rows = []
    for case in cases:
        ranked, num_candidates = _pipeline_ranking(setup, case.table)
        rows.append(
            CoverageRow(
                usecase=case.name,
                num_published=case.num_published,
                covered_at_k=coverage_k(case, ranked),
                candidates=num_candidates,
            )
        )
    return rows


def figure9_top_results(
    setup: ExperimentSetup,
    scale: float = 0.2,
    k: int = 6,
) -> List[str]:
    """The first page (top-6) for D3 Flight Statistics — the paper's
    Figure 9 screenshot — as chart descriptions."""
    d3 = use_cases(scale=scale, oracle=setup.oracle)[2]
    ranked, _ = _pipeline_ranking(setup, d3.table)
    return [node.describe() for node in ranked[:k]]
