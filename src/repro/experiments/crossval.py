"""Cross-validation over the 42-table corpus (Section VI's side claim).

The paper notes "We also conducted cross validation and got similar
results."  This module runs k-fold CV at the *table* level — folds
split whole datasets, never charts of one dataset, so each fold tests
on tables the models never saw — and reports per-model recognition
F-measure per fold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.recognition import VisualizationRecognizer
from ..corpus.benchmark import AnnotatedTable
from ..ml.metrics import precision_recall_f1

__all__ = ["CrossValResult", "cross_validate_recognition"]


@dataclass
class CrossValResult:
    """Per-fold, per-model F-measures plus the aggregate view."""

    folds: List[Dict[str, float]]

    def mean_f1(self, model: str) -> float:
        """Mean F-measure of one model across folds."""
        return float(np.mean([fold[model] for fold in self.folds]))

    def winner(self) -> str:
        """The model with the best mean F-measure."""
        models = self.folds[0].keys()
        return max(models, key=self.mean_f1)


def cross_validate_recognition(
    annotated: Sequence[AnnotatedTable],
    n_folds: int = 5,
    models: Sequence[str] = ("bayes", "svm", "decision_tree"),
    seed: int = 0,
) -> CrossValResult:
    """Table-level k-fold CV of the recognition classifiers.

    Each fold trains every model on the other folds' tables and scores
    precision/recall/F on the held-out tables' charts (pooled).
    """
    if len(annotated) < n_folds:
        raise ValueError(
            f"need at least {n_folds} tables for {n_folds}-fold CV, "
            f"got {len(annotated)}"
        )
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(annotated))
    folds = np.array_split(order, n_folds)

    results: List[Dict[str, float]] = []
    for fold_index in range(n_folds):
        test_ids = set(folds[fold_index].tolist())
        train_tables = [
            annotated[i] for i in range(len(annotated)) if i not in test_ids
        ]
        test_tables = [annotated[i] for i in sorted(test_ids)]

        train_nodes = [n for a in train_tables for n in a.nodes]
        train_labels = [l for a in train_tables for l in a.annotation.labels]
        test_nodes = [n for a in test_tables for n in a.nodes]
        test_labels = np.asarray(
            [l for a in test_tables for l in a.annotation.labels]
        )

        fold_result: Dict[str, float] = {}
        for model in models:
            recognizer = VisualizationRecognizer(model=model)
            recognizer.fit(train_nodes, train_labels)
            predictions = recognizer.predict(test_nodes)
            fold_result[model] = precision_recall_f1(test_labels, predictions)["f1"]
        results.append(fold_result)
    return CrossValResult(folds=results)
