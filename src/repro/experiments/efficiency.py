"""Efficiency experiment: Figure 12.

End-to-end latency of the four pipeline configurations on each testing
dataset — enumeration {exhaustive E, rule-based R} x selection
{learning-to-rank L, partial order P} — with the per-phase breakdown
the paper annotates on each bar.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.enumeration import EnumerationConfig
from ..core.selection import select_top_k
from ..dataset.table import Table
from .common import ExperimentSetup

__all__ = ["ConfigTiming", "figure12", "CONFIGURATIONS"]

#: (label, enumeration mode, ranker) — the four Figure 12 bars.
CONFIGURATIONS = (
    ("EL", "exhaustive", "learning_to_rank"),
    ("EP", "exhaustive", "partial_order"),
    ("RL", "rules", "learning_to_rank"),
    ("RP", "rules", "partial_order"),
)


@dataclass
class ConfigTiming:
    """One bar of Figure 12: total seconds + phase shares."""

    label: str
    dataset: str
    total_seconds: float
    enumerate_seconds: float
    select_seconds: float
    candidates: int
    valid: int

    @property
    def enumerate_fraction(self) -> float:
        return self.enumerate_seconds / self.total_seconds if self.total_seconds else 0.0

    @property
    def select_fraction(self) -> float:
        return self.select_seconds / self.total_seconds if self.total_seconds else 0.0


def figure12(
    setup: ExperimentSetup,
    tables: Optional[List[Table]] = None,
    k: int = 10,
) -> List[ConfigTiming]:
    """Time the four configurations on each table.

    Uses the setup's trained decision tree for recognition and LambdaMART
    for L-mode selection, exactly as the online pipeline would.
    """
    tables = tables if tables is not None else [a.table for a in setup.test]
    results: List[ConfigTiming] = []
    for table in tables:
        for label, enumeration, ranker in CONFIGURATIONS:
            start = time.perf_counter()
            outcome = select_top_k(
                table,
                k=k,
                enumeration=enumeration,
                ranker=ranker,
                recognizer=setup.decision_tree,
                ltr=setup.ltr if ranker == "learning_to_rank" else None,
                config=EnumerationConfig(),
            )
            total = time.perf_counter() - start
            results.append(
                ConfigTiming(
                    label=label,
                    dataset=table.name,
                    total_seconds=total,
                    enumerate_seconds=outcome.timings.get("enumerate", 0.0),
                    select_seconds=(
                        outcome.timings.get("recognize", 0.0)
                        + outcome.timings.get("rank", 0.0)
                    ),
                    candidates=outcome.candidates,
                    valid=outcome.valid,
                )
            )
    return results
