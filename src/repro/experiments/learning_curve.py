"""Label-budget learning curves for recognition.

The paper's ground truth cost 100 students labelling 33,412 charts; a
natural follow-up question is how much of that budget the decision tree
actually needs.  :func:`recognition_learning_curve` trains each model on
nested random subsamples of the training charts and scores F-measure on
the untouched testing datasets — the curve that tells an adopter how
much labelling to commission.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..core.recognition import VisualizationRecognizer
from ..corpus.benchmark import AnnotatedTable
from ..ml.metrics import precision_recall_f1

__all__ = ["LearningCurvePoint", "recognition_learning_curve"]

DEFAULT_FRACTIONS = (0.05, 0.1, 0.25, 0.5, 1.0)


@dataclass(frozen=True)
class LearningCurvePoint:
    """One curve point: a label budget and per-model test F-measures."""

    fraction: float
    num_labels: int
    f1_per_model: Dict[str, float]


def recognition_learning_curve(
    train: Sequence[AnnotatedTable],
    test: Sequence[AnnotatedTable],
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    models: Sequence[str] = ("bayes", "svm", "decision_tree"),
    seed: int = 0,
) -> List[LearningCurvePoint]:
    """F-measure on the test tables vs training-label budget.

    Subsamples are *nested* (a larger budget contains every smaller
    one) and stratified enough by construction: sampling uniformly from
    the pooled charts preserves the corpus' good/bad mix in expectation.
    Budgets too small to contain both classes are skipped.
    """
    train_nodes = [n for a in train for n in a.nodes]
    train_labels = np.asarray([l for a in train for l in a.annotation.labels])
    test_nodes = [n for a in test for n in a.nodes]
    test_labels = np.asarray([l for a in test for l in a.annotation.labels])
    if len(train_nodes) == 0 or len(test_nodes) == 0:
        raise ValueError("need non-empty train and test corpora")

    rng = np.random.default_rng(seed)
    order = rng.permutation(len(train_nodes))

    points: List[LearningCurvePoint] = []
    for fraction in sorted(fractions):
        budget = max(2, int(round(fraction * len(train_nodes))))
        chosen = order[:budget]
        labels = train_labels[chosen]
        if len(np.unique(labels)) < 2:
            continue  # a budget too tiny to contain both classes
        nodes = [train_nodes[i] for i in chosen]
        f1_per_model: Dict[str, float] = {}
        for model in models:
            recognizer = VisualizationRecognizer(model=model)
            recognizer.fit(nodes, list(labels))
            predictions = recognizer.predict(test_nodes)
            f1_per_model[model] = precision_recall_f1(
                test_labels, predictions
            )["f1"]
        points.append(
            LearningCurvePoint(
                fraction=float(fraction),
                num_labels=budget,
                f1_per_model=f1_per_model,
            )
        )
    return points
