"""Ranking experiments: Figure 11(a)-(e).

NDCG of the three selection engines — expert partial order (with the
classifier pre-filter, as in Section IV-C), learning-to-rank (which
must score every candidate), and HybridRank — over the ten testing
datasets, overall and restricted per chart type.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..language.ast import ChartType
from .common import ExperimentSetup, ndcg_with_exponential_gain

__all__ = ["figure11", "figure11_by_chart", "METHODS"]

METHODS = ("partial_order", "learning_to_rank", "hybrid")


def _full_ranking(setup: ExperimentSetup, method: str, annotated) -> List[int]:
    if method == "partial_order":
        return setup.partial_order_full_ranking(annotated)
    if method == "learning_to_rank":
        return setup.ltr_full_ranking(annotated)
    return setup.hybrid_full_ranking(annotated)


def figure11(setup: ExperimentSetup) -> Dict[str, List[float]]:
    """NDCG per method per testing dataset (Figure 11(a)).

    Returns ``{method: [ndcg for each test table, in X1..X10 order]}``.
    """
    result: Dict[str, List[float]] = {m: [] for m in METHODS}
    for annotated in setup.test:
        relevance = annotated.annotation.relevance
        for method in METHODS:
            order = _full_ranking(setup, method, annotated)
            result[method].append(
                ndcg_with_exponential_gain(order, relevance)
            )
    return result


def figure11_by_chart(
    setup: ExperimentSetup,
) -> Dict[str, Dict[str, List[float]]]:
    """NDCG per chart type (Figures 11(b)-(e)).

    The full-list ranking of each method is restricted to nodes of one
    chart type (order preserved) and scored against that type's gains.
    Returns ``{chart: {method: [ndcg per table]}}``.
    """
    result: Dict[str, Dict[str, List[float]]] = {
        chart.value: {m: [] for m in METHODS} for chart in ChartType
    }
    for annotated in setup.test:
        relevance = np.asarray(annotated.annotation.relevance)
        chart_of = [node.chart for node in annotated.nodes]
        orders = {
            method: _full_ranking(setup, method, annotated) for method in METHODS
        }
        for chart in ChartType:
            member = [i for i, c in enumerate(chart_of) if c is chart]
            if len(member) < 2:
                continue
            member_set = set(member)
            sub_relevance = {i: relevance[i] for i in member}
            for method in METHODS:
                sub_order = [i for i in orders[method] if i in member_set]
                gains_in_order = [sub_relevance[i] for i in sub_order]
                # Re-index into a dense list for the NDCG helper.
                result[chart.value][method].append(
                    ndcg_with_exponential_gain(
                        list(range(len(gains_in_order))), gains_in_order
                    )
                )
    return result
