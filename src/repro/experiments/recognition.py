"""Recognition experiments: Figure 10, Table VII, Table VIII.

* Figure 10 — average precision / recall / F-measure of Bayes, SVM and
  decision tree over the ten testing datasets.
* Table VII — the same three metrics broken down by chart type.
* Table VIII — F-measure per dataset x chart type x model.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..language.ast import ChartType
from ..ml.metrics import precision_recall_f1
from .common import ExperimentSetup

__all__ = ["figure10", "table7", "table8", "MODEL_LABELS"]

MODEL_LABELS = {"bayes": "Bayes", "svm": "SVM", "decision_tree": "DT"}


def _per_table_metrics(
    setup: ExperimentSetup, model: str, chart: ChartType = None
) -> List[Dict[str, float]]:
    """P/R/F per test table, optionally restricted to one chart type."""
    recognizer = setup.recognizers[model]
    rows = []
    for annotated in setup.test:
        nodes = annotated.nodes
        labels = annotated.annotation.labels
        if chart is not None:
            pairs = [
                (node, label)
                for node, label in zip(nodes, labels)
                if node.chart is chart
            ]
            if not pairs:
                continue
            nodes = [p[0] for p in pairs]
            labels = [p[1] for p in pairs]
        predictions = recognizer.predict(nodes)
        rows.append(precision_recall_f1(np.asarray(labels), predictions))
    return rows


def figure10(setup: ExperimentSetup) -> Dict[str, Dict[str, float]]:
    """Average precision/recall/F-measure per model over X1-X10.

    Returns ``{model: {precision, recall, f1}}`` — the three bar groups
    of the paper's Figure 10.
    """
    result = {}
    for model in setup.recognizers:
        rows = _per_table_metrics(setup, model)
        result[model] = {
            metric: float(np.mean([row[metric] for row in rows]))
            for metric in ("precision", "recall", "f1")
        }
    return result


def table7(setup: ExperimentSetup) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Average effectiveness per chart type (B/L/P/S) per model.

    Returns ``{chart: {model: {precision, recall, f1}}}``.
    """
    result: Dict[str, Dict[str, Dict[str, float]]] = {}
    for chart in ChartType:
        result[chart.value] = {}
        for model in setup.recognizers:
            rows = _per_table_metrics(setup, model, chart)
            if not rows:
                continue
            result[chart.value][model] = {
                metric: float(np.mean([row[metric] for row in rows]))
                for metric in ("precision", "recall", "f1")
            }
    return result


def table8(setup: ExperimentSetup) -> Dict[str, Dict[str, Dict[str, float]]]:
    """F-measure per dataset x chart type x model.

    Returns ``{dataset: {chart: {model: f1}}}`` — the body of the
    paper's Table VIII.
    """
    result: Dict[str, Dict[str, Dict[str, float]]] = {}
    for annotated in setup.test:
        by_chart: Dict[str, Dict[str, float]] = {}
        for chart in ChartType:
            pairs = [
                (node, label)
                for node, label in zip(annotated.nodes, annotated.annotation.labels)
                if node.chart is chart
            ]
            if not pairs:
                continue
            nodes = [p[0] for p in pairs]
            labels = np.asarray([p[1] for p in pairs])
            by_chart[chart.value] = {
                model: precision_recall_f1(
                    labels, recognizer.predict(nodes)
                )["f1"]
                for model, recognizer in setup.recognizers.items()
            }
        result[annotated.name] = by_chart
    return result
