"""One-shot reproduction report: run every experiment, write Markdown.

:func:`run_reproduction` executes all Section VI experiments against a
freshly built setup and returns a structured result;
:func:`write_markdown_report` renders it as a single Markdown document —
the programmatic counterpart of EXPERIMENTS.md, usable from the
``examples/reproduce_paper.py`` script or any notebook.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from .common import ExperimentSetup
from .corpus_stats import table3, table4
from .coverage import CoverageRow, table6
from .efficiency import ConfigTiming, figure12
from .ranking import METHODS, figure11
from .recognition import MODEL_LABELS, figure10, table7

__all__ = ["ReproductionResult", "run_reproduction", "write_markdown_report"]


@dataclass
class ReproductionResult:
    """Everything one reproduction run measured."""

    setup: ExperimentSetup
    corpus_stats: Dict
    testing_datasets: List[Dict]
    recognition: Dict[str, Dict[str, float]]
    recognition_by_chart: Dict[str, Dict[str, Dict[str, float]]]
    ranking_ndcg: Dict[str, List[float]]
    coverage: List[CoverageRow]
    efficiency: List[ConfigTiming]
    elapsed_seconds: float

    # -- headline shape checks (the paper's claims) --------------------
    def decision_tree_wins(self) -> bool:
        """Figure 10's claim: DT has the best recognition F-measure."""
        f1 = {m: v["f1"] for m, v in self.recognition.items()}
        return f1["decision_tree"] >= max(f1["bayes"], f1["svm"]) - 1e-9

    def partial_order_beats_ltr(self) -> bool:
        """Figure 11's claim: partial order >= learning-to-rank NDCG."""
        means = {m: float(np.mean(v)) for m, v in self.ranking_ndcg.items()}
        return means["partial_order"] >= means["learning_to_rank"] - 0.02

    def rules_beat_exhaustive(self) -> bool:
        """Figure 12's claim: rule pruning is faster for both selectors."""
        by_config: Dict[str, float] = {}
        for row in self.efficiency:
            by_config[row.label] = by_config.get(row.label, 0.0) + row.total_seconds
        return (
            by_config.get("RP", 0.0) < by_config.get("EP", float("inf"))
            and by_config.get("RL", 0.0) < by_config.get("EL", float("inf"))
        )

    def shape_summary(self) -> Dict[str, bool]:
        """{claim: holds} for each headline shape."""
        return {
            "decision tree wins recognition": self.decision_tree_wins(),
            "partial order >= learning-to-rank": self.partial_order_beats_ltr(),
            "rule pruning beats exhaustive": self.rules_beat_exhaustive(),
        }


def run_reproduction(
    train_scale: float = 0.06,
    test_scale: float = 0.015,
    seed: int = 0,
    usecase_scale: float = 0.08,
    setup: Optional[ExperimentSetup] = None,
) -> ReproductionResult:
    """Run every experiment at the given scales (smaller = faster)."""
    start = time.perf_counter()
    setup = setup or ExperimentSetup.build(
        train_scale=train_scale,
        test_scale=test_scale,
        seed=seed,
        max_nodes_per_table=120,
        ltr_estimators=40,
    )
    return ReproductionResult(
        setup=setup,
        corpus_stats=table3(setup),
        testing_datasets=table4(setup),
        recognition=figure10(setup),
        recognition_by_chart=table7(setup),
        ranking_ndcg=figure11(setup),
        coverage=table6(setup, scale=usecase_scale),
        efficiency=figure12(setup, tables=[a.table for a in setup.test]),
        elapsed_seconds=time.perf_counter() - start,
    )


def _md_table(header: List[str], rows: List[List]) -> List[str]:
    lines = ["| " + " | ".join(str(h) for h in header) + " |"]
    lines.append("|" + "---|" * len(header))
    for row in rows:
        lines.append("| " + " | ".join(str(c) for c in row) + " |")
    return lines


def write_markdown_report(
    result: ReproductionResult, path: Optional[Union[str, Path]] = None
) -> str:
    """Render the result as Markdown; optionally write it to ``path``."""
    lines: List[str] = ["# DeepEye reproduction report", ""]
    lines.append(
        f"_Full run in {result.elapsed_seconds:.0f}s; "
        f"hybrid alpha = {result.setup.hybrid_alpha}._"
    )

    lines += ["", "## Headline shapes", ""]
    lines += _md_table(
        ["claim", "holds"],
        [[claim, "yes" if ok else "NO"] for claim, ok in result.shape_summary().items()],
    )

    lines += ["", "## Corpus (Tables III / IV)", ""]
    stats = result.corpus_stats
    lines += _md_table(
        ["datasets", "good charts", "bad charts", "comparisons"],
        [[stats["num_datasets"], stats["good_charts"], stats["bad_charts"],
          stats["comparisons"]]],
    )
    lines.append("")
    lines += _md_table(
        ["no", "name", "#-tuples", "#-cols", "#-charts"],
        [
            [r["no"], r["name"], r["#-tuples"], r["#-columns"], r["#-charts"]]
            for r in result.testing_datasets
        ],
    )

    lines += ["", "## Recognition (Figure 10)", ""]
    lines += _md_table(
        ["model", "precision", "recall", "F-measure"],
        [
            [MODEL_LABELS[m], f"{v['precision']:.3f}", f"{v['recall']:.3f}",
             f"{v['f1']:.3f}"]
            for m, v in result.recognition.items()
        ],
    )

    lines += ["", "## Ranking NDCG (Figure 11a)", ""]
    lines += _md_table(
        ["method"] + [f"X{i}" for i in range(1, len(result.setup.test) + 1)] + ["mean"],
        [
            [m]
            + [f"{v:.2f}" for v in result.ranking_ndcg[m]]
            + [f"{float(np.mean(result.ranking_ndcg[m])):.3f}"]
            for m in METHODS
        ],
    )

    lines += ["", "## Use-case coverage (Table VI)", ""]
    lines += _md_table(
        ["use case", "#-published", "covered at k"],
        [
            [row.usecase, row.num_published, row.covered_at_k or "not covered"]
            for row in result.coverage
        ],
    )

    lines += ["", "## Efficiency (Figure 12)", ""]
    lines += _md_table(
        ["dataset", "config", "ms", "candidates", "valid"],
        [
            [row.dataset[:24], row.label, round(1000 * row.total_seconds, 1),
             row.candidates, row.valid]
            for row in result.efficiency
        ],
    )

    text = "\n".join(lines) + "\n"
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text
