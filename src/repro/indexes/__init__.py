"""Indexing structures for dominance queries (range tree, Fenwick index)."""

from .fenwick2d import Fenwick2D
from .range_tree import FenwickDominanceIndex, RangeTree2D

__all__ = ["Fenwick2D", "FenwickDominanceIndex", "RangeTree2D"]
