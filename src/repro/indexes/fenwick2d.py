"""2-D Fenwick (binary indexed) tree over aggregate values.

Supports point updates ``add(x, y, count, value)`` and dominance-prefix
queries ``query(x, y) -> (count, value_sum)`` over all added points with
``x_i <= x`` and ``y_i <= y``, in O(log^2 n) each.  Coordinates come
from universes fixed at construction (rank compression).

This powers the edge-free weight-aware ranking: the paper's score

    S(v) = sum over dominated u of [w(v, u) + S(u)]

rewrites, with t(v) the mean of v's three factors, as

    S(v) = |D(v)| * t(v) - sum over D(v) of (t(u) - S(u)),

so a sweep in ascending factor order needs exactly the (count, sum)
dominance aggregates this structure provides — no O(n^2) edge list.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence, Tuple

__all__ = ["Fenwick2D"]


class Fenwick2D:
    """Fenwick tree of Fenwick trees over compressed (x, y) ranks."""

    def __init__(self, x_universe: Sequence[float], y_universe: Sequence[float]) -> None:
        self._xs = sorted(set(float(v) for v in x_universe))
        self._ys = sorted(set(float(v) for v in y_universe))
        self._nx = len(self._xs)
        self._ny = len(self._ys)
        # counts[i][j] and sums[i][j] are the inner-Fenwick cells of the
        # outer cell i.  Row 0 is unused (Fenwick trees are 1-based).
        self._counts: List[List[float]] = [
            [0.0] * (self._ny + 1) for _ in range(self._nx + 1)
        ]
        self._sums: List[List[float]] = [
            [0.0] * (self._ny + 1) for _ in range(self._nx + 1)
        ]

    def _x_rank(self, x: float) -> int:
        position = bisect.bisect_left(self._xs, float(x))
        if position >= self._nx or self._xs[position] != float(x):
            raise KeyError(f"x={x!r} not in the index universe")
        return position + 1

    def _y_rank(self, y: float) -> int:
        position = bisect.bisect_left(self._ys, float(y))
        if position >= self._ny or self._ys[position] != float(y):
            raise KeyError(f"y={y!r} not in the index universe")
        return position + 1

    def add(self, x: float, y: float, count: float, value: float) -> None:
        """Record a point carrying ``count`` (usually 1) and ``value``."""
        i = self._x_rank(x)
        j0 = self._y_rank(y)
        while i <= self._nx:
            counts_row = self._counts[i]
            sums_row = self._sums[i]
            j = j0
            while j <= self._ny:
                counts_row[j] += count
                sums_row[j] += value
                j += j & (-j)
            i += i & (-i)

    def query(self, x: float, y: float) -> Tuple[float, float]:
        """(total count, total value) over points with x_i <= x, y_i <= y.

        The query coordinates need not belong to the universes.
        """
        i = bisect.bisect_right(self._xs, float(x))
        j0 = bisect.bisect_right(self._ys, float(y))
        count = 0.0
        total = 0.0
        while i > 0:
            counts_row = self._counts[i]
            sums_row = self._sums[i]
            j = j0
            while j > 0:
                count += counts_row[j]
                total += sums_row[j]
                j -= j & (-j)
            i -= i & (-i)
        return count, total
