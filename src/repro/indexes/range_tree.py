"""Dominance-reporting indexes for partial-order graph construction.

Section IV-C notes the dominance graph "can also utilize the range-tree
based indexing method" [de Berg et al.].  Two structures live here:

* :class:`RangeTree2D` — a classic static 2-D range tree: a balanced
  binary tree over x with each node storing its subtree's points sorted
  by y.  Supports "report points with x <= qx and y <= qy" queries.
* :class:`FenwickDominanceIndex` — an *incremental* 2-D dominance
  reporter: a Fenwick (binary indexed) tree over compressed x ranks
  whose cells hold y-sorted lists.  The graph builder sweeps nodes in
  ascending-M order, querying then inserting, which turns 3-D dominance
  into 2-D queries.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

__all__ = ["RangeTree2D", "FenwickDominanceIndex"]


class _RangeTreeNode:
    __slots__ = ("lo", "hi", "left", "right", "sorted_y")

    def __init__(self, lo: int, hi: int) -> None:
        self.lo = lo
        self.hi = hi
        self.left: Optional["_RangeTreeNode"] = None
        self.right: Optional["_RangeTreeNode"] = None
        self.sorted_y: List[Tuple[float, int]] = []


class RangeTree2D:
    """Static 2-D range tree over points ``(x, y)`` with integer ids.

    Build: O(n log n).  Query ``report(qx, qy)``: all ids with
    ``x <= qx`` and ``y <= qy`` in O(log^2 n + k).
    """

    def __init__(self, points: Sequence[Tuple[float, float, int]]) -> None:
        """``points`` is a sequence of (x, y, id) triples."""
        self._points = sorted(points, key=lambda p: (p[0], p[1]))
        self._xs = [p[0] for p in self._points]
        self.root = self._build(0, len(self._points)) if self._points else None

    def _build(self, lo: int, hi: int) -> _RangeTreeNode:
        node = _RangeTreeNode(lo, hi)
        node.sorted_y = sorted((p[1], p[2]) for p in self._points[lo:hi])
        if hi - lo > 1:
            mid = (lo + hi) // 2
            node.left = self._build(lo, mid)
            node.right = self._build(mid, hi)
        return node

    def report(self, qx: float, qy: float) -> List[int]:
        """Ids of all points with x <= qx and y <= qy."""
        if self.root is None:
            return []
        # The x-prefix [0, upper) covers every point with x <= qx.
        upper = bisect.bisect_right(self._xs, qx)
        result: List[int] = []
        self._collect(self.root, upper, qy, result)
        return result

    def _collect(
        self, node: _RangeTreeNode, upper: int, qy: float, out: List[int]
    ) -> None:
        if node.lo >= upper:
            return
        if node.hi <= upper:
            # Whole subtree is inside the x-range: binary search on y.
            cut = bisect.bisect_right(node.sorted_y, (qy, float("inf")))
            out.extend(identifier for _, identifier in node.sorted_y[:cut])
            return
        if node.left is not None:
            self._collect(node.left, upper, qy, out)
            self._collect(node.right, upper, qy, out)

    def __len__(self) -> int:
        return len(self._points)


class FenwickDominanceIndex:
    """Incremental "report all inserted points dominated by (x, y)" index.

    x coordinates must come from a universe fixed at construction (they
    are rank-compressed); y is unconstrained.  ``insert`` is
    O(log n * log m) amortised, ``report`` O(log n * (log m + k)).
    """

    def __init__(self, x_universe: Sequence[float]) -> None:
        self._ranks = sorted(set(float(x) for x in x_universe))
        size = len(self._ranks)
        self._cells: List[List[Tuple[float, int]]] = [[] for _ in range(size + 1)]
        self._size = size

    def _rank(self, x: float) -> int:
        """1-based rank of x in the universe; raises on unknown values."""
        position = bisect.bisect_left(self._ranks, float(x))
        if position >= len(self._ranks) or self._ranks[position] != float(x):
            raise KeyError(f"x={x!r} not in the index universe")
        return position + 1

    def insert(self, x: float, y: float, identifier: int) -> None:
        """Insert a point; every Fenwick cell covering its rank records it."""
        index = self._rank(x)
        while index <= self._size:
            bisect.insort(self._cells[index], (float(y), identifier))
            index += index & (-index)

    def report(self, x: float, y: float) -> List[int]:
        """Ids of inserted points with x_i <= x and y_i <= y."""
        prefix = bisect.bisect_right(self._ranks, float(x))
        result: List[int] = []
        index = prefix
        while index > 0:
            cell = self._cells[index]
            cut = bisect.bisect_right(cell, (float(y), float("inf")))
            result.extend(identifier for _, identifier in cell[:cut])
            index -= index & (-index)
        return result
