"""The DeepEye visualization language: AST, parser, and executor."""

from .aggregation import aggregate, allowed_aggregates
from .ast import (
    AggregateOp,
    BinByGranularity,
    BinByUDF,
    BinGranularity,
    BinIntoBuckets,
    ChartType,
    GroupBy,
    OrderBy,
    OrderTarget,
    Transform,
    VisQuery,
)
from .binning import (
    DEFAULT_NUM_BUCKETS,
    Bucket,
    TransformResult,
    assign_buckets,
    bin_numeric,
    bin_temporal,
    bin_udf,
    group_categorical,
    use_reference_kernels,
)
from .executor import (
    ChartData,
    apply_transform,
    as_float_tuple,
    as_str_tuple,
    execute,
)
from .parser import ParsedQuery, parse_query
from .validate import validate_query

__all__ = [
    "AggregateOp",
    "BinByGranularity",
    "BinByUDF",
    "BinGranularity",
    "BinIntoBuckets",
    "ChartType",
    "GroupBy",
    "OrderBy",
    "OrderTarget",
    "Transform",
    "VisQuery",
    "Bucket",
    "DEFAULT_NUM_BUCKETS",
    "TransformResult",
    "assign_buckets",
    "bin_numeric",
    "bin_temporal",
    "bin_udf",
    "group_categorical",
    "use_reference_kernels",
    "aggregate",
    "allowed_aggregates",
    "ChartData",
    "apply_transform",
    "as_float_tuple",
    "as_str_tuple",
    "execute",
    "ParsedQuery",
    "parse_query",
    "validate_query",
]
