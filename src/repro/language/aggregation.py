"""Aggregation operators: AGG = {SUM, AVG, CNT} (Section II-A).

Binning and grouping categorize rows; aggregation interprets each
category by summarising the Y values that fall into it.
"""

from __future__ import annotations

import time as _time
from typing import Optional

import numpy as np

from ..dataset.column import Column, ColumnType
from ..errors import ValidationError
from ..obs.kernels import KERNEL_STATS
from .ast import AggregateOp

__all__ = ["aggregate", "allowed_aggregates"]


def allowed_aggregates(y_type: ColumnType) -> tuple:
    """The aggregate ops valid for a Y column of the given type.

    Per the transformation rules (Section V-A): numerical Y admits all of
    {AVG, SUM, CNT}; any other type only admits CNT.
    """
    if y_type is ColumnType.NUMERICAL:
        return (AggregateOp.AVG, AggregateOp.SUM, AggregateOp.CNT)
    return (AggregateOp.CNT,)


def aggregate(
    op: AggregateOp,
    assignment: np.ndarray,
    num_buckets: int,
    y: Optional[Column] = None,
) -> np.ndarray:
    """Aggregate Y per bucket.

    Parameters
    ----------
    op:
        The aggregation operator.
    assignment:
        ``assignment[i]`` is the bucket index of row ``i`` (from
        :func:`repro.language.binning.assign_buckets`).
    num_buckets:
        Total number of distinct buckets.
    y:
        The Y column; required for SUM and AVG, ignored for CNT.

    Returns
    -------
    numpy.ndarray
        One aggregated value per bucket, in bucket order.  Empty buckets
        (possible only when ``num_buckets`` exceeds the assigned range)
        aggregate to 0.
    """
    assignment = np.asarray(assignment, dtype=np.intp)
    start = _time.perf_counter()
    counts = np.bincount(assignment, minlength=num_buckets).astype(np.float64)

    if op is AggregateOp.CNT:
        KERNEL_STATS.record(
            "count_scan", len(assignment), num_buckets,
            _time.perf_counter() - start,
        )
        return counts

    if y is None:
        raise ValidationError(f"{op.value} requires a Y column")
    if y.ctype is not ColumnType.NUMERICAL:
        raise ValidationError(
            f"{op.value} requires a numerical Y column, got "
            f"{y.ctype.value} column {y.name!r}"
        )
    if len(y.values) != len(assignment):
        raise ValidationError(
            f"Y column has {len(y.values)} rows but assignment has "
            f"{len(assignment)}"
        )

    sums = np.bincount(
        assignment, weights=y.values.astype(np.float64), minlength=num_buckets
    )
    if op is AggregateOp.SUM:
        KERNEL_STATS.record(
            "y_scan", len(assignment), num_buckets,
            _time.perf_counter() - start,
        )
        return sums
    # AVG: guard empty buckets against division by zero.
    with np.errstate(invalid="ignore", divide="ignore"):
        means = np.where(counts > 0, sums / counts, 0.0)
    KERNEL_STATS.record(
        "y_scan", len(assignment), num_buckets, _time.perf_counter() - start
    )
    return means
