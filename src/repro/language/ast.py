"""Abstract syntax of the DeepEye visualization language (Section II-B).

A query has three mandatory clauses and two optional ones::

    VISUALIZE <type>
    SELECT    <X'>, <Y'>
    FROM      <table>
    TRANSFORM (BIN X BY <granularity> | BIN X INTO <n> | GROUP BY X)
    ORDER BY  (X | Y) [DESC]

The AST is a tree of frozen dataclasses so queries hash, compare, and can
be used as dictionary keys by the enumerator and the selectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional, Tuple

__all__ = [
    "ChartType",
    "AggregateOp",
    "BinGranularity",
    "Transform",
    "BinByGranularity",
    "BinIntoBuckets",
    "BinByUDF",
    "GroupBy",
    "OrderTarget",
    "OrderBy",
    "VisQuery",
]


class ChartType(str, Enum):
    """The four chart types the paper studies (Section II-A)."""

    BAR = "bar"
    LINE = "line"
    PIE = "pie"
    SCATTER = "scatter"


class AggregateOp(str, Enum):
    """Aggregations applied to Y after binning/grouping X: AGG = {SUM, AVG, CNT}."""

    SUM = "SUM"
    AVG = "AVG"
    CNT = "CNT"


class BinGranularity(str, Enum):
    """The seven temporal binning granularities of the TRANSFORM clause."""

    MINUTE = "MINUTE"
    HOUR = "HOUR"
    DAY = "DAY"
    WEEK = "WEEK"
    MONTH = "MONTH"
    QUARTER = "QUARTER"
    YEAR = "YEAR"


class Transform:
    """Marker base class for TRANSFORM clauses."""

    __slots__ = ()


@dataclass(frozen=True)
class BinByGranularity(Transform):
    """``BIN X BY {MINUTE, ..., YEAR}`` — temporal binning."""

    column: str
    granularity: BinGranularity

    def describe(self) -> str:
        """The clause in the paper's textual syntax."""
        return f"BIN {self.column} BY {self.granularity.value}"


@dataclass(frozen=True)
class BinIntoBuckets(Transform):
    """``BIN X INTO N`` — numeric binning into ``n`` equal-width buckets."""

    column: str
    n: int

    def describe(self) -> str:
        """The clause in the paper's textual syntax."""
        return f"BIN {self.column} INTO {self.n}"


@dataclass(frozen=True)
class BinByUDF(Transform):
    """``BIN X BY UDF(X)`` — user-defined bucketing.

    ``udf`` maps a raw value to a bucket label; ``udf_name`` identifies the
    function so two queries with the same named UDF compare equal.
    """

    column: str
    udf_name: str
    udf: Callable[[float], object] = field(compare=False, hash=False, repr=False)

    def describe(self) -> str:
        """The clause in the paper's textual syntax."""
        return f"BIN {self.column} BY UDF({self.udf_name})"


@dataclass(frozen=True)
class GroupBy(Transform):
    """``GROUP BY X`` — grouping by the distinct values of a column."""

    column: str

    def describe(self) -> str:
        """The clause in the paper's textual syntax."""
        return f"GROUP BY {self.column}"


class OrderTarget(str, Enum):
    """Which selected column an ORDER BY sorts — X' or Y' (never both)."""

    X = "X"
    Y = "Y"


@dataclass(frozen=True)
class OrderBy:
    """``ORDER BY X|Y [DESC]``."""

    target: OrderTarget
    descending: bool = False

    def describe(self) -> str:
        """The clause in the paper's textual syntax."""
        suffix = " DESC" if self.descending else ""
        return f"ORDER BY {self.target.value}{suffix}"


@dataclass(frozen=True)
class VisQuery:
    """One complete visualization query ``Q`` such that ``Q(D)`` is a chart.

    Attributes
    ----------
    chart:
        The VISUALIZE clause — one of bar/line/pie/scatter.
    x, y:
        The SELECT clause's source columns.  ``y`` may equal ``x`` for the
        single-column case (e.g. a histogram: ``BIN X``, ``CNT(X)``).
    transform:
        The optional TRANSFORM clause; ``None`` visualizes raw data.
    aggregate:
        The aggregation applied to ``y`` per bin/group; only meaningful
        when ``transform`` is present.
    order:
        The optional ORDER BY clause.
    """

    chart: ChartType
    x: str
    y: str
    transform: Optional[Transform] = None
    aggregate: Optional[AggregateOp] = None
    order: Optional[OrderBy] = None

    def __post_init__(self) -> None:
        if (self.transform is None) != (self.aggregate is None):
            raise ValueError(
                "TRANSFORM and aggregation go together: binning/grouping X "
                "requires an aggregate over Y, and vice versa"
            )

    @property
    def columns(self) -> Tuple[str, ...]:
        """The distinct source columns referenced by the query."""
        return (self.x,) if self.x == self.y else (self.x, self.y)

    def select_clause(self) -> str:
        """The SELECT line, with the aggregate wrapped around Y."""
        y_expr = f"{self.aggregate.value}({self.y})" if self.aggregate else self.y
        return f"SELECT {self.x}, {y_expr}"

    def to_text(self, table_name: str = "D") -> str:
        """Render the query in the paper's textual syntax (Figure 2)."""
        lines = [
            f"VISUALIZE {self.chart.value}",
            self.select_clause(),
            f"FROM {table_name}",
        ]
        if self.transform is not None:
            lines.append(self.transform.describe())
        if self.order is not None:
            lines.append(self.order.describe())
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_text()
