"""Binning and grouping: the TRANSFORM operators of Section II-A.

Binning maps every row of a column to a *bucket key*; grouping maps it to
its categorical value.  The executor then aggregates Y over rows sharing
a key.  Bucket keys carry a sortable ``sort_key`` and a human-readable
``label`` so charts render meaningfully.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..dataset.column import EPOCH, Column, ColumnType
from ..errors import ValidationError
from .ast import BinGranularity

__all__ = [
    "Bucket",
    "DEFAULT_NUM_BUCKETS",
    "bin_temporal",
    "bin_numeric",
    "bin_udf",
    "group_categorical",
    "assign_buckets",
]

#: Default bucket count for ``BIN X`` with no explicit target (the paper's
#: "default buckets" case in the 9 binning options).
DEFAULT_NUM_BUCKETS = 10


@dataclass(frozen=True)
class Bucket:
    """One bin/group of the transformed x-axis.

    ``sort_key`` orders buckets on a scale axis; ``label`` is what a chart
    would print on the tick; ``value`` is a numeric representative used
    when the transformed axis is treated as numeric (e.g. correlation of
    X' and Y').
    """

    sort_key: float
    label: str
    value: float


def _quarter(month: int) -> int:
    return (month - 1) // 3 + 1


#: For each granularity: (key function over datetime, label function).
#: Binning by HOUR puts all rows with the same hour-of-day in one bucket
#: (the paper's Figure 1(c): "the rows with the same hour are in the same
#: bucket"); DAY bins by calendar date; WEEK by ISO week; etc.
_TEMPORAL_KEYS: Dict[BinGranularity, Tuple[Callable, Callable]] = {
    BinGranularity.MINUTE: (lambda d: d.minute, lambda d: f"{d.minute:02d}"),
    BinGranularity.HOUR: (lambda d: d.hour, lambda d: f"{d.hour:02d}:00"),
    BinGranularity.DAY: (
        lambda d: d.timetuple().tm_yday + d.year * 1000,
        lambda d: d.strftime("%Y-%m-%d"),
    ),
    BinGranularity.WEEK: (
        lambda d: d.isocalendar()[1] + d.isocalendar()[0] * 100,
        lambda d: f"{d.isocalendar()[0]}-W{d.isocalendar()[1]:02d}",
    ),
    BinGranularity.MONTH: (
        lambda d: d.month + d.year * 100,
        lambda d: d.strftime("%Y-%m"),
    ),
    BinGranularity.QUARTER: (
        lambda d: _quarter(d.month) + d.year * 10,
        lambda d: f"{d.year}-Q{_quarter(d.month)}",
    ),
    BinGranularity.YEAR: (lambda d: d.year, lambda d: str(d.year)),
}


def bin_temporal(column: Column, granularity: BinGranularity) -> List[Bucket]:
    """Assign each row of a temporal column to a granularity bucket.

    Returns one :class:`Bucket` per row (row order preserved); equal
    buckets compare equal so the executor can group on them.
    """
    if column.ctype is not ColumnType.TEMPORAL:
        raise ValidationError(
            f"BIN BY {granularity.value} requires a temporal column, "
            f"got {column.ctype.value} column {column.name!r}"
        )
    key_fn, label_fn = _TEMPORAL_KEYS[granularity]
    buckets = []
    for seconds in column.values:
        moment = EPOCH + _dt.timedelta(seconds=float(seconds))
        key = float(key_fn(moment))
        buckets.append(Bucket(sort_key=key, label=label_fn(moment), value=key))
    return buckets


def bin_numeric(column: Column, n: int = DEFAULT_NUM_BUCKETS) -> List[Bucket]:
    """Assign each row of a numeric column to one of ``n`` equal-width bins.

    Uses consecutive intervals ``[lo, lo+w), [lo+w, lo+2w), ...`` as in the
    paper's "bin1 [0, 10), bin2 [10, 20)" example.  A constant column
    collapses into a single bucket.
    """
    if column.ctype is not ColumnType.NUMERICAL:
        raise ValidationError(
            f"BIN INTO requires a numerical column, got "
            f"{column.ctype.value} column {column.name!r}"
        )
    if n < 1:
        raise ValidationError(f"BIN INTO requires n >= 1, got {n}")
    values = column.values
    if len(values) == 0:
        return []
    lo, hi = float(np.min(values)), float(np.max(values))
    if hi <= lo:
        label = f"[{lo:g}, {lo:g}]"
        return [Bucket(0.0, label, lo) for _ in values]
    width = (hi - lo) / n
    indices = np.clip(((values - lo) / width).astype(int), 0, n - 1)
    buckets = []
    for idx in indices:
        left = lo + idx * width
        right = left + width
        mid = (left + right) / 2.0
        buckets.append(
            Bucket(sort_key=float(idx), label=f"[{left:g}, {right:g})", value=mid)
        )
    return buckets


def bin_udf(column: Column, udf: Callable[[float], object]) -> List[Bucket]:
    """Assign rows to buckets through a user-defined function.

    The UDF receives the raw value and returns a bucket label; labels are
    ordered by first appearance of their minimum input value so that a
    monotone UDF (e.g. sign splits) yields a sensibly ordered axis.
    """
    labels = [str(udf(v)) for v in column.values]
    representative: Dict[str, float] = {}
    if column.ctype is ColumnType.CATEGORICAL:
        for i, label in enumerate(labels):
            representative.setdefault(label, float(i))
    else:
        for label, raw in zip(labels, column.values):
            raw = float(raw)
            if label not in representative or raw < representative[label]:
                representative[label] = raw
    return [
        Bucket(sort_key=representative[label], label=label, value=representative[label])
        for label in labels
    ]


def group_categorical(column: Column) -> List[Bucket]:
    """``GROUP BY X`` — one bucket per distinct value, first-appearance order."""
    if not column.ctype.is_groupable:
        raise ValidationError(
            f"GROUP BY requires a categorical or temporal column, got "
            f"{column.ctype.value} column {column.name!r}"
        )
    order: Dict[object, int] = {}
    for value in column.values:
        if value not in order:
            order[value] = len(order)
    return [
        Bucket(sort_key=float(order[v]), label=str(v), value=float(order[v]))
        for v in column.values
    ]


def assign_buckets(buckets: Sequence[Bucket]) -> Tuple[List[Bucket], np.ndarray]:
    """Deduplicate per-row buckets into distinct buckets + row assignment.

    Returns ``(distinct, assignment)`` where ``distinct`` is sorted by
    ``sort_key`` and ``assignment[i]`` is the index into ``distinct`` of
    row ``i``'s bucket.
    """
    distinct: Dict[Tuple[float, str], int] = {}
    ordered: List[Bucket] = []
    assignment = np.empty(len(buckets), dtype=np.intp)
    for i, bucket in enumerate(buckets):
        key = (bucket.sort_key, bucket.label)
        if key not in distinct:
            distinct[key] = len(ordered)
            ordered.append(bucket)
        assignment[i] = distinct[key]
    order = sorted(range(len(ordered)), key=lambda j: ordered[j].sort_key)
    remap = np.empty(len(ordered), dtype=np.intp)
    for new_pos, old_pos in enumerate(order):
        remap[old_pos] = new_pos
    return [ordered[j] for j in order], remap[assignment]
