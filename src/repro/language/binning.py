"""Binning and grouping: the TRANSFORM operators of Section II-A.

Binning maps every row of a column to a *bucket*; grouping maps it to
its categorical value.  The executor then aggregates Y over rows sharing
a bucket.  Buckets carry a sortable ``sort_key`` and a human-readable
``label`` so charts render meaningfully.

The kernels here are **vectorized and columnar**: each transform is a
handful of NumPy passes that produce a compact :class:`TransformResult`
— the distinct buckets (labels / sort keys / numeric representatives as
parallel arrays, formatted once per *distinct* bucket) plus one
``intp`` assignment array mapping every row to its bucket.  Nothing on
the hot path allocates a per-row Python object: temporal binning runs
on ``datetime64`` arithmetic, numeric binning builds only ``n`` bucket
descriptors from exact ``np.linspace`` edges, and categorical grouping
and UDF dedup go through ``np.unique(..., return_inverse=True)`` with
first-appearance order preserved.

The original row-at-a-time implementations survive as the
``_reference_*`` functions — the oracles the differential tests and
``benchmarks/bench_kernels.py`` compare the vectorized kernels against
(outputs are identical bucket-for-bucket) — and
:func:`use_reference_kernels` temporarily routes the executor through
them for A/B measurement.

Every kernel invocation is accounted in
:data:`repro.obs.kernels.KERNEL_STATS` (calls / rows / buckets /
seconds per kernel) so traces and metrics can split transform time from
aggregation time.
"""

from __future__ import annotations

import datetime as _dt
import math as _math
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..dataset.column import EPOCH, Column, ColumnType
from ..errors import ValidationError
from ..obs.kernels import KERNEL_STATS
from .ast import BinGranularity

__all__ = [
    "Bucket",
    "TransformResult",
    "TRANSFORM_KERNELS",
    "DEFAULT_NUM_BUCKETS",
    "bin_temporal",
    "bin_numeric",
    "bin_udf",
    "group_categorical",
    "assign_buckets",
    "use_reference_kernels",
]

#: Default bucket count for ``BIN X`` with no explicit target (the paper's
#: "default buckets" case in the 9 binning options).
DEFAULT_NUM_BUCKETS = 10

#: The kernel names the transform layer reports into
#: :data:`~repro.obs.kernels.KERNEL_STATS` (the aggregation layer adds
#: ``count_scan`` / ``y_scan``).
TRANSFORM_KERNELS: Tuple[str, ...] = (
    "bin_temporal",
    "bin_numeric",
    "bin_udf",
    "group_categorical",
)


@dataclass(frozen=True)
class Bucket:
    """One bin/group of the transformed x-axis.

    ``sort_key`` orders buckets on a scale axis; ``label`` is what a chart
    would print on the tick; ``value`` is a numeric representative used
    when the transformed axis is treated as numeric (e.g. correlation of
    X' and Y').
    """

    sort_key: float
    label: str
    value: float


class TransformResult:
    """Compact columnar result of one TRANSFORM kernel.

    Holds the *distinct* buckets as three parallel arrays plus the
    per-row assignment — the representation the whole serving stack
    (executor, enumeration context, shared-scan engine, transform-level
    cache) threads around, so a transform over a million rows costs a
    million ``intp`` entries and a few dozen bucket descriptors rather
    than a million ``Bucket`` objects.

    Attributes
    ----------
    labels:
        Tick label per distinct bucket, in ``sort_key`` order.
    sort_keys:
        ``float64`` sort key per distinct bucket (ascending).
    values:
        ``float64`` numeric representative per distinct bucket.
    assignment:
        ``intp`` array, one entry per source row, indexing into the
        distinct buckets.

    Unpacking compatibility: ``buckets, assignment = result`` yields the
    materialised :class:`Bucket` tuple and the assignment array, the
    shape :func:`repro.language.executor.apply_transform` has always
    returned.  ``buckets`` and :attr:`values_tuple` are built lazily and
    cached (and dropped on pickling, so cache entries and cross-process
    shipments carry only the compact arrays).
    """

    __slots__ = (
        "labels", "sort_keys", "values", "assignment",
        "_buckets", "_values_tuple",
    )

    def __init__(self, labels, sort_keys, values, assignment) -> None:
        self.labels: Tuple[str, ...] = tuple(labels)
        self.sort_keys = np.asarray(sort_keys, dtype=np.float64)
        self.values = np.asarray(values, dtype=np.float64)
        self.assignment = np.asarray(assignment, dtype=np.intp)
        self._buckets = None
        self._values_tuple = None

    # -- sizes ----------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        """Number of distinct buckets (``len(labels)``)."""
        return len(self.labels)

    @property
    def num_rows(self) -> int:
        """Number of source rows (``len(assignment)``)."""
        return len(self.assignment)

    # -- lazy views -----------------------------------------------------
    @property
    def buckets(self) -> Tuple[Bucket, ...]:
        """The distinct buckets as :class:`Bucket` objects (lazy, cached)."""
        if self._buckets is None:
            self._buckets = tuple(
                Bucket(sort_key=key, label=label, value=value)
                for key, label, value in zip(
                    self.sort_keys.tolist(), self.labels, self.values.tolist()
                )
            )
        return self._buckets

    @property
    def values_tuple(self) -> Tuple[float, ...]:
        """The numeric representatives as a tuple of Python floats —
        the ready-made ``ChartData.x_values`` (lazy, cached, shared by
        every chart built over this transform)."""
        if self._values_tuple is None:
            self._values_tuple = tuple(self.values.tolist())
        return self._values_tuple

    # -- protocol -------------------------------------------------------
    def __iter__(self) -> Iterator:
        return iter((self.buckets, self.assignment))

    def __eq__(self, other) -> bool:
        if not isinstance(other, TransformResult):
            return NotImplemented
        return (
            self.labels == other.labels
            and np.array_equal(self.sort_keys, other.sort_keys, equal_nan=True)
            and np.array_equal(self.values, other.values, equal_nan=True)
            and np.array_equal(self.assignment, other.assignment)
        )

    __hash__ = None  # mutable ndarray payload

    def __getstate__(self):
        return (self.labels, self.sort_keys, self.values, self.assignment)

    def __setstate__(self, state) -> None:
        self.labels, self.sort_keys, self.values, self.assignment = state
        self._buckets = None
        self._values_tuple = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransformResult(buckets={self.num_buckets}, "
            f"rows={self.num_rows})"
        )

    @classmethod
    def empty(cls) -> "TransformResult":
        """The zero-bucket, zero-row result (empty column)."""
        return cls((), (), (), np.empty(0, dtype=np.intp))


# ----------------------------------------------------------------------
# Shared helpers (one formatting point per label family)
# ----------------------------------------------------------------------
def _quarter(month: int) -> int:
    return (month - 1) // 3 + 1


#: For each granularity: (key function over datetime, label function).
#: Binning by HOUR puts all rows with the same hour-of-day in one bucket
#: (the paper's Figure 1(c): "the rows with the same hour are in the same
#: bucket"); DAY bins by calendar date; WEEK by ISO week; etc.  The
#: vectorized kernel reproduces the key functions in ``datetime64``
#: arithmetic and calls the label function once per *distinct* bucket.
_TEMPORAL_KEYS: Dict[BinGranularity, Tuple[Callable, Callable]] = {
    BinGranularity.MINUTE: (lambda d: d.minute, lambda d: f"{d.minute:02d}"),
    BinGranularity.HOUR: (lambda d: d.hour, lambda d: f"{d.hour:02d}:00"),
    BinGranularity.DAY: (
        lambda d: d.timetuple().tm_yday + d.year * 1000,
        lambda d: d.strftime("%Y-%m-%d"),
    ),
    BinGranularity.WEEK: (
        lambda d: d.isocalendar()[1] + d.isocalendar()[0] * 100,
        lambda d: f"{d.isocalendar()[0]}-W{d.isocalendar()[1]:02d}",
    ),
    BinGranularity.MONTH: (
        lambda d: d.month + d.year * 100,
        lambda d: d.strftime("%Y-%m"),
    ),
    BinGranularity.QUARTER: (
        lambda d: _quarter(d.month) + d.year * 10,
        lambda d: f"{d.year}-Q{_quarter(d.month)}",
    ),
    BinGranularity.YEAR: (lambda d: d.year, lambda d: str(d.year)),
}


def _require_temporal(column: Column, granularity: BinGranularity) -> None:
    if column.ctype is not ColumnType.TEMPORAL:
        raise ValidationError(
            f"BIN BY {granularity.value} requires a temporal column, "
            f"got {column.ctype.value} column {column.name!r}"
        )


def _require_numeric(column: Column, n: int) -> None:
    if column.ctype is not ColumnType.NUMERICAL:
        raise ValidationError(
            f"BIN INTO requires a numerical column, got "
            f"{column.ctype.value} column {column.name!r}"
        )
    if n < 1:
        raise ValidationError(f"BIN INTO requires n >= 1, got {n}")


def _require_finite(column: Column, operation: str) -> None:
    """Binning needs a totally ordered domain; NaN/inf rows have no bin."""
    if len(column.values) and not np.isfinite(column.values).all():
        raise ValidationError(
            f"{operation} requires finite values, but column "
            f"{column.name!r} contains NaN or infinite rows"
        )


def _numeric_edges(lo: float, hi: float, n: int) -> np.ndarray:
    """The ``n + 1`` shared bin edges of ``BIN INTO n`` over ``[lo, hi]``.

    ``np.linspace`` is the single source of edge values: adjacent labels
    share the *same* float (no ``lo + idx * width`` re-accumulation, so
    no ``[0.2, 0.30000000000000004)`` next to ``[0.3, 0.4)``) and the
    last right edge is exactly ``hi``.
    """
    return np.linspace(lo, hi, n + 1)


def _interval_label(left: float, right: float) -> str:
    """``[left, right)`` formatted the one way every caller shares."""
    return f"[{left:g}, {right:g})"


def _point_label(value: float) -> str:
    """The degenerate single-point interval of a constant column."""
    return f"[{value:g}, {value:g}]"


def _moment(seconds: float) -> _dt.datetime:
    """Decode one epoch-seconds value (the per-distinct-bucket path)."""
    return EPOCH + _dt.timedelta(seconds=float(seconds))


# ----------------------------------------------------------------------
# Vectorized kernels
# ----------------------------------------------------------------------
def _temporal_keys_columnar(
    values: np.ndarray, granularity: BinGranularity
) -> np.ndarray:
    """Per-row integer bucket keys via ``datetime64`` arithmetic.

    Reproduces the ``_TEMPORAL_KEYS`` key functions exactly: fractional
    seconds round to microseconds half-to-even (``timedelta``'s
    convention) and unit downcasts floor toward -inf, so pre-epoch
    timestamps land in the same calendar buckets as the row-wise path.
    """
    micros = np.rint(values * 1e6).astype(np.int64)
    seconds = micros // 1_000_000
    dt64 = seconds.astype("datetime64[s]")
    if granularity is BinGranularity.MINUTE:
        minutes = dt64.astype("datetime64[m]")
        return (minutes - dt64.astype("datetime64[h]")).astype(np.int64)
    if granularity is BinGranularity.HOUR:
        hours = dt64.astype("datetime64[h]")
        return (hours - dt64.astype("datetime64[D]")).astype(np.int64)
    days = dt64.astype("datetime64[D]")
    if granularity is BinGranularity.DAY:
        years = days.astype("datetime64[Y]")
        yday = (days - years.astype("datetime64[D]")).astype(np.int64) + 1
        return yday + (years.astype(np.int64) + 1970) * 1000
    if granularity is BinGranularity.WEEK:
        # ISO week/year of a date = week/year of the Thursday of its
        # Monday-based week (1970-01-01 was a Thursday, hence the +3).
        day_numbers = days.astype(np.int64)
        thursdays = (
            day_numbers - (day_numbers + 3) % 7 + 3
        ).astype("datetime64[D]")
        iso_years = thursdays.astype("datetime64[Y]")
        thu_yday = (
            thursdays - iso_years.astype("datetime64[D]")
        ).astype(np.int64) + 1
        weeks = (thu_yday - 1) // 7 + 1
        return weeks + (iso_years.astype(np.int64) + 1970) * 100
    months_since_epoch = dt64.astype("datetime64[M]").astype(np.int64)
    year = months_since_epoch // 12 + 1970
    month = months_since_epoch % 12 + 1
    if granularity is BinGranularity.MONTH:
        return month + year * 100
    if granularity is BinGranularity.QUARTER:
        return (month - 1) // 3 + 1 + year * 10
    return year  # BinGranularity.YEAR


def bin_temporal(
    column: Column, granularity: BinGranularity
) -> TransformResult:
    """Bin a temporal column by calendar granularity, columnar.

    One ``datetime64`` key pass over the rows, one ``np.unique`` to
    dedupe, and one label formatting per *distinct* bucket (via a
    representative row, so labels match the row-wise oracle
    byte-for-byte).  Buckets come out sorted by key.
    """
    _require_temporal(column, granularity)
    start = _time.perf_counter()
    values = column.values
    if len(values) == 0:
        result = TransformResult.empty()
    else:
        _require_finite(column, f"BIN BY {granularity.value}")
        keys = _temporal_keys_columnar(values, granularity)
        distinct, first_rows, assignment = np.unique(
            keys, return_index=True, return_inverse=True
        )
        label_fn = _TEMPORAL_KEYS[granularity][1]
        labels = tuple(
            label_fn(_moment(values[row])) for row in first_rows
        )
        sort_keys = distinct.astype(np.float64)
        result = TransformResult(labels, sort_keys, sort_keys, assignment)
    KERNEL_STATS.record(
        "bin_temporal", len(values), result.num_buckets,
        _time.perf_counter() - start,
    )
    return result


def bin_numeric(
    column: Column, n: int = DEFAULT_NUM_BUCKETS
) -> TransformResult:
    """Bin a numeric column into ``n`` equal-width intervals, columnar.

    Uses consecutive intervals ``[lo, lo+w), [lo+w, lo+2w), ...`` as in
    the paper's "bin1 [0, 10), bin2 [10, 20)" example; a constant column
    collapses into a single bucket.  Only the (at most ``n``) occupied
    buckets are materialised, with labels derived from the shared
    :func:`np.linspace` edges.
    """
    _require_numeric(column, n)
    start = _time.perf_counter()
    values = column.values
    if len(values) == 0:
        result = TransformResult.empty()
    else:
        _require_finite(column, "BIN INTO")
        lo, hi = float(np.min(values)), float(np.max(values))
        if hi <= lo:
            result = TransformResult(
                (_point_label(lo),), (0.0,), (lo,),
                np.zeros(len(values), dtype=np.intp),
            )
        else:
            width = (hi - lo) / n
            indices = np.clip(
                ((values - lo) / width).astype(np.int64), 0, n - 1
            )
            occupied, assignment = np.unique(indices, return_inverse=True)
            edges = _numeric_edges(lo, hi, n)
            lefts = edges[occupied]
            rights = edges[occupied + 1]
            labels = tuple(
                _interval_label(left, right)
                for left, right in zip(lefts.tolist(), rights.tolist())
            )
            result = TransformResult(
                labels, occupied.astype(np.float64),
                (lefts + rights) / 2.0, assignment,
            )
    KERNEL_STATS.record(
        "bin_numeric", len(values), result.num_buckets,
        _time.perf_counter() - start,
    )
    return result


def bin_udf(column: Column, udf: Callable[[float], object]) -> TransformResult:
    """Bucket rows through a user-defined function, columnar dedup.

    The UDF itself runs once per row (it is an opaque Python callable),
    but everything after — dedup, representative selection, ordering,
    assignment — is array work.  Labels are ordered by the minimum input
    value mapping to them (first-appearance index for categorical
    columns), so a monotone UDF yields a sensibly ordered axis; ties
    keep first-appearance order.
    """
    start = _time.perf_counter()
    raw = column.values
    if len(raw) == 0:
        result = TransformResult.empty()
    else:
        labels_per_row = np.asarray(
            [str(udf(value)) for value in raw], dtype=object
        )
        distinct, first_rows, inverse = np.unique(
            labels_per_row, return_index=True, return_inverse=True
        )
        if column.ctype is ColumnType.CATEGORICAL:
            representatives = first_rows.astype(np.float64)
        else:
            numeric = np.asarray(raw, dtype=np.float64)
            representatives = np.full(len(distinct), np.inf)
            np.fmin.at(representatives, inverse, numeric)
            # A label whose first row is NaN keeps NaN (the row-wise
            # oracle never replaces it: no value compares below NaN).
            first_is_nan = np.isnan(numeric[first_rows])
            if first_is_nan.any():
                representatives[first_is_nan] = np.nan
        order = np.lexsort((first_rows, representatives))
        rank = np.empty(len(order), dtype=np.intp)
        rank[order] = np.arange(len(order), dtype=np.intp)
        sort_keys = representatives[order]
        result = TransformResult(
            tuple(distinct[order].tolist()), sort_keys, sort_keys,
            rank[inverse],
        )
    KERNEL_STATS.record(
        "bin_udf", len(raw), result.num_buckets, _time.perf_counter() - start
    )
    return result


def group_categorical(column: Column) -> TransformResult:
    """``GROUP BY X`` — one bucket per distinct value, first-appearance
    order, columnar."""
    if not column.ctype.is_groupable:
        raise ValidationError(
            f"GROUP BY requires a categorical or temporal column, got "
            f"{column.ctype.value} column {column.name!r}"
        )
    if column.ctype is ColumnType.TEMPORAL:
        # NaN values neither equal nor hash like themselves; a NaN row
        # has no well-defined group.
        _require_finite(column, "GROUP BY")
    start = _time.perf_counter()
    values = column.values
    if len(values) == 0:
        result = TransformResult.empty()
    else:
        distinct, first_rows, inverse = np.unique(
            values, return_index=True, return_inverse=True
        )
        order = np.argsort(first_rows, kind="stable")
        rank = np.empty(len(order), dtype=np.intp)
        rank[order] = np.arange(len(order), dtype=np.intp)
        labels = tuple(str(distinct[j]) for j in order)
        sort_keys = np.arange(len(order), dtype=np.float64)
        result = TransformResult(labels, sort_keys, sort_keys, rank[inverse])
    KERNEL_STATS.record(
        "group_categorical", len(values), result.num_buckets,
        _time.perf_counter() - start,
    )
    return result


def assign_buckets(buckets: Sequence[Bucket]) -> TransformResult:
    """Deduplicate a per-row :class:`Bucket` sequence into the compact form.

    The row-wise combiner behind the ``_reference_*`` oracles (and any
    external caller still producing per-row buckets): distinct buckets
    come out sorted by ``sort_key`` with first-appearance order among
    ties and NaN keys last, exactly as the vectorized kernels emit them.
    (Plain ``sorted`` on keys containing NaN depends on comparison
    order; the explicit NaN-last rule makes it deterministic.)
    """
    seen: Dict[Tuple[float, str], int] = {}
    ordered: List[Bucket] = []
    assignment = np.empty(len(buckets), dtype=np.intp)
    for i, bucket in enumerate(buckets):
        key = (bucket.sort_key, bucket.label)
        if key not in seen:
            seen[key] = len(ordered)
            ordered.append(bucket)
        assignment[i] = seen[key]
    order = sorted(
        range(len(ordered)),
        key=lambda j: (_math.isnan(ordered[j].sort_key), ordered[j].sort_key),
    )
    remap = np.empty(len(ordered), dtype=np.intp)
    for new_pos, old_pos in enumerate(order):
        remap[old_pos] = new_pos
    sorted_buckets = [ordered[j] for j in order]
    return TransformResult(
        [b.label for b in sorted_buckets],
        [b.sort_key for b in sorted_buckets],
        [b.value for b in sorted_buckets],
        remap[assignment] if len(buckets) else assignment,
    )


# ----------------------------------------------------------------------
# Row-wise reference oracles (the pre-vectorization implementations)
# ----------------------------------------------------------------------
def _reference_bin_temporal(
    column: Column, granularity: BinGranularity
) -> List[Bucket]:
    """Row-at-a-time temporal binning: one ``datetime`` + one
    :class:`Bucket` per row.  Oracle for the differential tests."""
    _require_temporal(column, granularity)
    _require_finite(column, f"BIN BY {granularity.value}")
    key_fn, label_fn = _TEMPORAL_KEYS[granularity]
    buckets = []
    for seconds in column.values:
        moment = _moment(seconds)
        key = float(key_fn(moment))
        buckets.append(Bucket(sort_key=key, label=label_fn(moment), value=key))
    return buckets


def _reference_bin_numeric(
    column: Column, n: int = DEFAULT_NUM_BUCKETS
) -> List[Bucket]:
    """Row-at-a-time numeric binning (same shared edges and labels)."""
    _require_numeric(column, n)
    values = column.values
    if len(values) == 0:
        return []
    _require_finite(column, "BIN INTO")
    lo, hi = float(np.min(values)), float(np.max(values))
    if hi <= lo:
        return [Bucket(0.0, _point_label(lo), lo) for _ in values]
    width = (hi - lo) / n
    indices = np.clip(((values - lo) / width).astype(np.int64), 0, n - 1)
    edges = _numeric_edges(lo, hi, n)
    buckets = []
    for idx in indices:
        left = float(edges[idx])
        right = float(edges[idx + 1])
        buckets.append(
            Bucket(
                sort_key=float(idx),
                label=_interval_label(left, right),
                value=(left + right) / 2.0,
            )
        )
    return buckets


def _reference_bin_udf(
    column: Column, udf: Callable[[float], object]
) -> List[Bucket]:
    """Row-at-a-time UDF bucketing with dict-based representatives."""
    labels = [str(udf(v)) for v in column.values]
    representative: Dict[str, float] = {}
    if column.ctype is ColumnType.CATEGORICAL:
        for i, label in enumerate(labels):
            representative.setdefault(label, float(i))
    else:
        for label, raw in zip(labels, column.values):
            raw = float(raw)
            if label not in representative or raw < representative[label]:
                representative[label] = raw
    return [
        Bucket(sort_key=representative[label], label=label, value=representative[label])
        for label in labels
    ]


def _reference_group_categorical(column: Column) -> List[Bucket]:
    """Row-at-a-time grouping with a first-appearance dict."""
    if not column.ctype.is_groupable:
        raise ValidationError(
            f"GROUP BY requires a categorical or temporal column, got "
            f"{column.ctype.value} column {column.name!r}"
        )
    if column.ctype is ColumnType.TEMPORAL:
        _require_finite(column, "GROUP BY")
    order: Dict[object, int] = {}
    for value in column.values:
        if value not in order:
            order[value] = len(order)
    return [
        Bucket(sort_key=float(order[v]), label=str(v), value=float(order[v]))
        for v in column.values
    ]


def _timed_reference(name: str, kernel: Callable) -> Callable:
    """Wrap a row-wise oracle to emit the compact form + kernel stats."""

    def runner(column: Column, *args) -> TransformResult:
        start = _time.perf_counter()
        result = assign_buckets(kernel(column, *args))
        KERNEL_STATS.record(
            f"reference_{name}", len(column.values), result.num_buckets,
            _time.perf_counter() - start,
        )
        return result

    runner.__name__ = name
    return runner


#: name -> vectorized kernel, the executor's dispatch surface.
_VECTORIZED_KERNELS: Dict[str, Callable] = {
    "bin_temporal": bin_temporal,
    "bin_numeric": bin_numeric,
    "bin_udf": bin_udf,
    "group_categorical": group_categorical,
}

_REFERENCE_COMPACT: Dict[str, Callable] = {
    "bin_temporal": _timed_reference("bin_temporal", _reference_bin_temporal),
    "bin_numeric": _timed_reference("bin_numeric", _reference_bin_numeric),
    "bin_udf": _timed_reference("bin_udf", _reference_bin_udf),
    "group_categorical": _timed_reference(
        "group_categorical", _reference_group_categorical
    ),
}


@contextmanager
def use_reference_kernels() -> Iterator[None]:
    """Route :func:`repro.language.executor.apply_transform` through the
    row-wise reference oracles while the context is active.

    For differential tests and the ``bench_kernels`` A/B measurement
    only — the oracles produce identical results, orders of magnitude
    slower.  Swaps this module's public kernel names, which the executor
    resolves per call; direct ``from ... import bin_temporal`` bindings
    held elsewhere keep pointing at the vectorized kernels.
    """
    previous = {name: globals()[name] for name in _VECTORIZED_KERNELS}
    globals().update(_REFERENCE_COMPACT)
    try:
        yield
    finally:
        globals().update(previous)
