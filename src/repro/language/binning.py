"""Binning and grouping: the TRANSFORM operators of Section II-A.

Binning maps every row of a column to a *bucket*; grouping maps it to
its categorical value.  The executor then aggregates Y over rows sharing
a bucket.  Buckets carry a sortable ``sort_key`` and a human-readable
``label`` so charts render meaningfully.

The kernels here are **vectorized and columnar**: each transform is a
handful of NumPy passes that produce a compact :class:`TransformResult`
— the distinct buckets (labels / sort keys / numeric representatives as
parallel arrays, formatted once per *distinct* bucket) plus one
``intp`` assignment array mapping every row to its bucket.  Nothing on
the hot path allocates a per-row Python object: temporal binning runs
on ``datetime64`` arithmetic, numeric binning builds only ``n`` bucket
descriptors from exact ``np.linspace`` edges, and categorical grouping
and UDF dedup go through ``np.unique(..., return_inverse=True)`` with
first-appearance order preserved.

The original row-at-a-time implementations survive as the
``_reference_*`` functions — the oracles the differential tests and
``benchmarks/bench_kernels.py`` compare the vectorized kernels against
(outputs are identical bucket-for-bucket) — and
:func:`use_reference_kernels` temporarily routes the executor through
them for A/B measurement.

Every kernel invocation is accounted in
:data:`repro.obs.kernels.KERNEL_STATS` (calls / rows / buckets /
seconds per kernel) so traces and metrics can split transform time from
aggregation time.
"""

from __future__ import annotations

import datetime as _dt
import math as _math
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..dataset.column import EPOCH, Column, ColumnType
from ..errors import ValidationError
from ..obs.kernels import KERNEL_STATS
from .ast import BinGranularity

__all__ = [
    "Bucket",
    "TransformResult",
    "DeltaMerge",
    "TRANSFORM_KERNELS",
    "DEFAULT_NUM_BUCKETS",
    "bin_temporal",
    "bin_numeric",
    "bin_udf",
    "group_categorical",
    "merge_delta",
    "merge_group_categorical",
    "merge_bin_temporal",
    "merge_bin_numeric",
    "merge_bin_udf",
    "assign_buckets",
    "use_reference_kernels",
    "numeric_bucket_arrays",
    "numeric_bin_index_sql",
]

#: Default bucket count for ``BIN X`` with no explicit target (the paper's
#: "default buckets" case in the 9 binning options).
DEFAULT_NUM_BUCKETS = 10

#: The kernel names the transform layer reports into
#: :data:`~repro.obs.kernels.KERNEL_STATS` (the aggregation layer adds
#: ``count_scan`` / ``y_scan``).
TRANSFORM_KERNELS: Tuple[str, ...] = (
    "bin_temporal",
    "bin_numeric",
    "bin_udf",
    "group_categorical",
)


@dataclass(frozen=True)
class Bucket:
    """One bin/group of the transformed x-axis.

    ``sort_key`` orders buckets on a scale axis; ``label`` is what a chart
    would print on the tick; ``value`` is a numeric representative used
    when the transformed axis is treated as numeric (e.g. correlation of
    X' and Y').
    """

    sort_key: float
    label: str
    value: float


class TransformResult:
    """Compact columnar result of one TRANSFORM kernel.

    Holds the *distinct* buckets as three parallel arrays plus the
    per-row assignment — the representation the whole serving stack
    (executor, enumeration context, shared-scan engine, transform-level
    cache) threads around, so a transform over a million rows costs a
    million ``intp`` entries and a few dozen bucket descriptors rather
    than a million ``Bucket`` objects.

    Attributes
    ----------
    labels:
        Tick label per distinct bucket, in ``sort_key`` order.
    sort_keys:
        ``float64`` sort key per distinct bucket (ascending).
    values:
        ``float64`` numeric representative per distinct bucket.
    assignment:
        ``intp`` array, one entry per source row, indexing into the
        distinct buckets.

    Unpacking compatibility: ``buckets, assignment = result`` yields the
    materialised :class:`Bucket` tuple and the assignment array, the
    shape :func:`repro.language.executor.apply_transform` has always
    returned.  ``buckets`` and :attr:`values_tuple` are built lazily and
    cached (and dropped on pickling, so cache entries and cross-process
    shipments carry only the compact arrays).
    """

    __slots__ = (
        "labels", "sort_keys", "values", "assignment",
        "_buckets", "_values_tuple",
    )

    def __init__(self, labels, sort_keys, values, assignment) -> None:
        self.labels: Tuple[str, ...] = tuple(labels)
        self.sort_keys = np.asarray(sort_keys, dtype=np.float64)
        self.values = np.asarray(values, dtype=np.float64)
        self.assignment = np.asarray(assignment, dtype=np.intp)
        self._buckets = None
        self._values_tuple = None

    # -- sizes ----------------------------------------------------------
    @property
    def num_buckets(self) -> int:
        """Number of distinct buckets (``len(labels)``)."""
        return len(self.labels)

    @property
    def num_rows(self) -> int:
        """Number of source rows (``len(assignment)``)."""
        return len(self.assignment)

    # -- lazy views -----------------------------------------------------
    @property
    def buckets(self) -> Tuple[Bucket, ...]:
        """The distinct buckets as :class:`Bucket` objects (lazy, cached)."""
        if self._buckets is None:
            self._buckets = tuple(
                Bucket(sort_key=key, label=label, value=value)
                for key, label, value in zip(
                    self.sort_keys.tolist(), self.labels, self.values.tolist()
                )
            )
        return self._buckets

    @property
    def values_tuple(self) -> Tuple[float, ...]:
        """The numeric representatives as a tuple of Python floats —
        the ready-made ``ChartData.x_values`` (lazy, cached, shared by
        every chart built over this transform)."""
        if self._values_tuple is None:
            self._values_tuple = tuple(self.values.tolist())
        return self._values_tuple

    # -- protocol -------------------------------------------------------
    def __iter__(self) -> Iterator:
        return iter((self.buckets, self.assignment))

    def __eq__(self, other) -> bool:
        if not isinstance(other, TransformResult):
            return NotImplemented
        return (
            self.labels == other.labels
            and np.array_equal(self.sort_keys, other.sort_keys, equal_nan=True)
            and np.array_equal(self.values, other.values, equal_nan=True)
            and np.array_equal(self.assignment, other.assignment)
        )

    __hash__ = None  # mutable ndarray payload

    def __getstate__(self):
        return (self.labels, self.sort_keys, self.values, self.assignment)

    def __setstate__(self, state) -> None:
        self.labels, self.sort_keys, self.values, self.assignment = state
        self._buckets = None
        self._values_tuple = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TransformResult(buckets={self.num_buckets}, "
            f"rows={self.num_rows})"
        )

    @classmethod
    def empty(cls) -> "TransformResult":
        """The zero-bucket, zero-row result (empty column)."""
        return cls((), (), (), np.empty(0, dtype=np.intp))


# ----------------------------------------------------------------------
# Shared helpers (one formatting point per label family)
# ----------------------------------------------------------------------
def _quarter(month: int) -> int:
    return (month - 1) // 3 + 1


#: For each granularity: (key function over datetime, label function).
#: Binning by HOUR puts all rows with the same hour-of-day in one bucket
#: (the paper's Figure 1(c): "the rows with the same hour are in the same
#: bucket"); DAY bins by calendar date; WEEK by ISO week; etc.  The
#: vectorized kernel reproduces the key functions in ``datetime64``
#: arithmetic and calls the label function once per *distinct* bucket.
_TEMPORAL_KEYS: Dict[BinGranularity, Tuple[Callable, Callable]] = {
    BinGranularity.MINUTE: (lambda d: d.minute, lambda d: f"{d.minute:02d}"),
    BinGranularity.HOUR: (lambda d: d.hour, lambda d: f"{d.hour:02d}:00"),
    BinGranularity.DAY: (
        lambda d: d.timetuple().tm_yday + d.year * 1000,
        lambda d: d.strftime("%Y-%m-%d"),
    ),
    BinGranularity.WEEK: (
        lambda d: d.isocalendar()[1] + d.isocalendar()[0] * 100,
        lambda d: f"{d.isocalendar()[0]}-W{d.isocalendar()[1]:02d}",
    ),
    BinGranularity.MONTH: (
        lambda d: d.month + d.year * 100,
        lambda d: d.strftime("%Y-%m"),
    ),
    BinGranularity.QUARTER: (
        lambda d: _quarter(d.month) + d.year * 10,
        lambda d: f"{d.year}-Q{_quarter(d.month)}",
    ),
    BinGranularity.YEAR: (lambda d: d.year, lambda d: str(d.year)),
}


def _require_temporal(column: Column, granularity: BinGranularity) -> None:
    if column.ctype is not ColumnType.TEMPORAL:
        raise ValidationError(
            f"BIN BY {granularity.value} requires a temporal column, "
            f"got {column.ctype.value} column {column.name!r}"
        )


def _require_numeric(column: Column, n: int) -> None:
    if column.ctype is not ColumnType.NUMERICAL:
        raise ValidationError(
            f"BIN INTO requires a numerical column, got "
            f"{column.ctype.value} column {column.name!r}"
        )
    if n < 1:
        raise ValidationError(f"BIN INTO requires n >= 1, got {n}")


def _require_finite(column: Column, operation: str) -> None:
    """Binning needs a totally ordered domain; NaN/inf rows have no bin."""
    if len(column.values) and not np.isfinite(column.values).all():
        raise ValidationError(
            f"{operation} requires finite values, but column "
            f"{column.name!r} contains NaN or infinite rows"
        )


def _numeric_edges(lo: float, hi: float, n: int) -> np.ndarray:
    """The ``n + 1`` shared bin edges of ``BIN INTO n`` over ``[lo, hi]``.

    ``np.linspace`` is the single source of edge values: adjacent labels
    share the *same* float (no ``lo + idx * width`` re-accumulation, so
    no ``[0.2, 0.30000000000000004)`` next to ``[0.3, 0.4)``) and the
    last right edge is exactly ``hi``.
    """
    return np.linspace(lo, hi, n + 1)


def _interval_label(left: float, right: float) -> str:
    """``[left, right)`` formatted the one way every caller shares.

    ``+ 0.0`` folds IEEE negative zero into positive zero so an
    all ``-0.0`` column labels as ``[0, 0]`` on every path (sqlite
    normalises ``-0.0`` on the way through, numpy keeps it)."""
    return f"[{left + 0.0:g}, {right + 0.0:g})"


def _point_label(value: float) -> str:
    """The degenerate single-point interval of a constant column."""
    value += 0.0
    return f"[{value:g}, {value:g}]"


def _moment(seconds: float) -> _dt.datetime:
    """Decode one epoch-seconds value (the per-distinct-bucket path)."""
    return EPOCH + _dt.timedelta(seconds=float(seconds))


# ----------------------------------------------------------------------
# Signature -> SQL translation (sqlite GROUP BY pushdown)
# ----------------------------------------------------------------------
def numeric_bucket_arrays(
    lo: float, hi: float, n: int, occupied=None
) -> Tuple[Tuple[str, ...], Sequence[float], Sequence[float]]:
    """``(labels, sort_keys, values)`` for the occupied ``BIN INTO n``
    buckets over ``[lo, hi]``.

    This is the single source of bucket labels shared by the
    :func:`bin_numeric` kernel and the sqlite GROUP BY pushdown: both
    derive labels from the same :func:`_numeric_edges` ``np.linspace``
    call, so a pushdown that only ever sees bucket *indices* from SQL
    still produces byte-identical labels, sort keys, and midpoint
    values.  ``occupied`` is the sorted array of occupied bucket
    indices; ``None`` means all ``n`` (the degenerate ``hi <= lo`` case
    ignores it and returns the single point bucket).
    """
    if hi <= lo:
        return (_point_label(lo),), (0.0,), (lo,)
    if occupied is None:
        occupied = np.arange(n, dtype=np.int64)
    else:
        occupied = np.asarray(occupied, dtype=np.int64)
    edges = _numeric_edges(lo, hi, n)
    lefts = edges[occupied]
    rights = edges[occupied + 1]
    labels = tuple(
        _interval_label(left, right)
        for left, right in zip(lefts.tolist(), rights.tolist())
    )
    return labels, occupied.astype(np.float64), (lefts + rights) / 2.0


def numeric_bin_index_sql(expr: str, lo: float, hi: float, n: int) -> str:
    """A SQL expression computing :func:`bin_numeric`'s bucket index.

    Mirrors the kernel arithmetic exactly for IEEE-754 doubles:
    ``(v - lo) / width`` evaluates identically in sqlite's C doubles
    and numpy's float64 (same two correctly rounded operations on the
    same operands — ``repr`` round-trips the Python floats into decimal
    literals sqlite parses back to the identical doubles), ``CAST AS
    INTEGER`` truncates toward zero like ``astype(np.int64)``, and the
    scalar ``MIN``/``MAX`` pair is ``np.clip(..., 0, n - 1)``.  Only
    valid for ``hi > lo`` over finite inputs — the same precondition as
    the kernel's non-degenerate branch.
    """
    width = (hi - lo) / n
    return (
        f"MIN(MAX(CAST((({expr}) - ({lo!r})) / ({width!r}) AS INTEGER), 0), "
        f"{n - 1})"
    )


# ----------------------------------------------------------------------
# Vectorized kernels
# ----------------------------------------------------------------------
def _temporal_keys_columnar(
    values: np.ndarray, granularity: BinGranularity
) -> np.ndarray:
    """Per-row integer bucket keys via ``datetime64`` arithmetic.

    Reproduces the ``_TEMPORAL_KEYS`` key functions exactly: fractional
    seconds round to microseconds half-to-even (``timedelta``'s
    convention) and unit downcasts floor toward -inf, so pre-epoch
    timestamps land in the same calendar buckets as the row-wise path.
    """
    micros = np.rint(values * 1e6).astype(np.int64)
    seconds = micros // 1_000_000
    dt64 = seconds.astype("datetime64[s]")
    if granularity is BinGranularity.MINUTE:
        minutes = dt64.astype("datetime64[m]")
        return (minutes - dt64.astype("datetime64[h]")).astype(np.int64)
    if granularity is BinGranularity.HOUR:
        hours = dt64.astype("datetime64[h]")
        return (hours - dt64.astype("datetime64[D]")).astype(np.int64)
    days = dt64.astype("datetime64[D]")
    if granularity is BinGranularity.DAY:
        years = days.astype("datetime64[Y]")
        yday = (days - years.astype("datetime64[D]")).astype(np.int64) + 1
        return yday + (years.astype(np.int64) + 1970) * 1000
    if granularity is BinGranularity.WEEK:
        # ISO week/year of a date = week/year of the Thursday of its
        # Monday-based week (1970-01-01 was a Thursday, hence the +3).
        day_numbers = days.astype(np.int64)
        thursdays = (
            day_numbers - (day_numbers + 3) % 7 + 3
        ).astype("datetime64[D]")
        iso_years = thursdays.astype("datetime64[Y]")
        thu_yday = (
            thursdays - iso_years.astype("datetime64[D]")
        ).astype(np.int64) + 1
        weeks = (thu_yday - 1) // 7 + 1
        return weeks + (iso_years.astype(np.int64) + 1970) * 100
    months_since_epoch = dt64.astype("datetime64[M]").astype(np.int64)
    year = months_since_epoch // 12 + 1970
    month = months_since_epoch % 12 + 1
    if granularity is BinGranularity.MONTH:
        return month + year * 100
    if granularity is BinGranularity.QUARTER:
        return (month - 1) // 3 + 1 + year * 10
    return year  # BinGranularity.YEAR


def bin_temporal(
    column: Column, granularity: BinGranularity
) -> TransformResult:
    """Bin a temporal column by calendar granularity, columnar.

    One ``datetime64`` key pass over the rows, one ``np.unique`` to
    dedupe, and one label formatting per *distinct* bucket (via a
    representative row, so labels match the row-wise oracle
    byte-for-byte).  Buckets come out sorted by key.
    """
    _require_temporal(column, granularity)
    start = _time.perf_counter()
    values = column.values
    if len(values) == 0:
        result = TransformResult.empty()
    else:
        _require_finite(column, f"BIN BY {granularity.value}")
        keys = _temporal_keys_columnar(values, granularity)
        distinct, first_rows, assignment = np.unique(
            keys, return_index=True, return_inverse=True
        )
        label_fn = _TEMPORAL_KEYS[granularity][1]
        labels = tuple(
            label_fn(_moment(values[row])) for row in first_rows
        )
        sort_keys = distinct.astype(np.float64)
        result = TransformResult(labels, sort_keys, sort_keys, assignment)
    KERNEL_STATS.record(
        "bin_temporal", len(values), result.num_buckets,
        _time.perf_counter() - start,
    )
    return result


def bin_numeric(
    column: Column, n: int = DEFAULT_NUM_BUCKETS
) -> TransformResult:
    """Bin a numeric column into ``n`` equal-width intervals, columnar.

    Uses consecutive intervals ``[lo, lo+w), [lo+w, lo+2w), ...`` as in
    the paper's "bin1 [0, 10), bin2 [10, 20)" example; a constant column
    collapses into a single bucket.  Only the (at most ``n``) occupied
    buckets are materialised, with labels derived from the shared
    :func:`np.linspace` edges.
    """
    _require_numeric(column, n)
    start = _time.perf_counter()
    values = column.values
    if len(values) == 0:
        result = TransformResult.empty()
    else:
        _require_finite(column, "BIN INTO")
        lo, hi = float(np.min(values)), float(np.max(values))
        if hi <= lo:
            labels, sort_keys, mids = numeric_bucket_arrays(lo, hi, n)
            result = TransformResult(
                labels, sort_keys, mids,
                np.zeros(len(values), dtype=np.intp),
            )
        else:
            width = (hi - lo) / n
            indices = np.clip(
                ((values - lo) / width).astype(np.int64), 0, n - 1
            )
            occupied, assignment = np.unique(indices, return_inverse=True)
            labels, sort_keys, mids = numeric_bucket_arrays(
                lo, hi, n, occupied
            )
            result = TransformResult(labels, sort_keys, mids, assignment)
    KERNEL_STATS.record(
        "bin_numeric", len(values), result.num_buckets,
        _time.perf_counter() - start,
    )
    return result


def bin_udf(column: Column, udf: Callable[[float], object]) -> TransformResult:
    """Bucket rows through a user-defined function, columnar dedup.

    The UDF itself runs once per row (it is an opaque Python callable),
    but everything after — dedup, representative selection, ordering,
    assignment — is array work.  Labels are ordered by the minimum input
    value mapping to them (first-appearance index for categorical
    columns), so a monotone UDF yields a sensibly ordered axis; ties
    keep first-appearance order.
    """
    start = _time.perf_counter()
    raw = column.values
    if len(raw) == 0:
        result = TransformResult.empty()
    else:
        labels_per_row = np.asarray(
            [str(udf(value)) for value in raw], dtype=object
        )
        distinct, first_rows, inverse = np.unique(
            labels_per_row, return_index=True, return_inverse=True
        )
        if column.ctype is ColumnType.CATEGORICAL:
            representatives = first_rows.astype(np.float64)
        else:
            numeric = np.asarray(raw, dtype=np.float64)
            representatives = np.full(len(distinct), np.inf)
            np.fmin.at(representatives, inverse, numeric)
            # A label whose first row is NaN keeps NaN (the row-wise
            # oracle never replaces it: no value compares below NaN).
            first_is_nan = np.isnan(numeric[first_rows])
            if first_is_nan.any():
                representatives[first_is_nan] = np.nan
        order = np.lexsort((first_rows, representatives))
        rank = np.empty(len(order), dtype=np.intp)
        rank[order] = np.arange(len(order), dtype=np.intp)
        sort_keys = representatives[order]
        result = TransformResult(
            tuple(distinct[order].tolist()), sort_keys, sort_keys,
            rank[inverse],
        )
    KERNEL_STATS.record(
        "bin_udf", len(raw), result.num_buckets, _time.perf_counter() - start
    )
    return result


def group_categorical(column: Column) -> TransformResult:
    """``GROUP BY X`` — one bucket per distinct value, first-appearance
    order, columnar."""
    if not column.ctype.is_groupable:
        raise ValidationError(
            f"GROUP BY requires a categorical or temporal column, got "
            f"{column.ctype.value} column {column.name!r}"
        )
    if column.ctype is ColumnType.TEMPORAL:
        # NaN values neither equal nor hash like themselves; a NaN row
        # has no well-defined group.
        _require_finite(column, "GROUP BY")
    start = _time.perf_counter()
    values = column.values
    if len(values) == 0:
        result = TransformResult.empty()
    else:
        distinct, first_rows, inverse = np.unique(
            values, return_index=True, return_inverse=True
        )
        order = np.argsort(first_rows, kind="stable")
        rank = np.empty(len(order), dtype=np.intp)
        rank[order] = np.arange(len(order), dtype=np.intp)
        labels = tuple(str(distinct[j]) for j in order)
        sort_keys = np.arange(len(order), dtype=np.float64)
        result = TransformResult(labels, sort_keys, sort_keys, rank[inverse])
    KERNEL_STATS.record(
        "group_categorical", len(values), result.num_buckets,
        _time.perf_counter() - start,
    )
    return result


# ----------------------------------------------------------------------
# Append-delta merge paths (incremental TransformResult maintenance)
# ----------------------------------------------------------------------
@dataclass
class DeltaMerge:
    """Outcome of merging an appended row chunk into a kernel result.

    ``result`` is the transform over the *grown* column, bit-identical
    to rerunning the kernel from scratch.  ``old_positions`` maps each
    old bucket index to its merged index, and ``delta_assignment`` maps
    each appended row to its merged bucket — together exactly what an
    aggregate maintainer needs to scatter old per-bucket sums into the
    new layout and continue the fold over only the new rows.  When the
    merge was impossible (numeric bin edges moved because the appended
    chunk extended the column's range) the kernel reran over the full
    column instead: ``rebuilt`` is True and both mappings are ``None``.
    """

    result: TransformResult
    old_positions: "np.ndarray | None"
    delta_assignment: "np.ndarray | None"
    old_buckets: int
    rebuilt: bool = False

    @property
    def new_buckets(self) -> int:
        """Bucket-count change (can be negative after a rebuild)."""
        return self.result.num_buckets - self.old_buckets

    @property
    def remapped(self) -> bool:
        """True when old bucket indices shifted in the merged layout."""
        if self.old_positions is None:
            return True
        return bool(
            (
                self.old_positions
                != np.arange(len(self.old_positions), dtype=np.intp)
            ).any()
        )


def _unchanged_merge(old: TransformResult) -> DeltaMerge:
    """The empty-chunk merge: nothing moves."""
    return DeltaMerge(
        result=old,
        old_positions=np.arange(old.num_buckets, dtype=np.intp),
        delta_assignment=np.empty(0, dtype=np.intp),
        old_buckets=old.num_buckets,
    )


def _fresh_merge(result: TransformResult) -> DeltaMerge:
    """Merging into a zero-row result: the delta *is* the result."""
    return DeltaMerge(
        result=result,
        old_positions=np.empty(0, dtype=np.intp),
        delta_assignment=result.assignment,
        old_buckets=0,
    )


def _record_merge(name: str, rows: int, result: TransformResult, start: float) -> None:
    KERNEL_STATS.record(
        name, rows, result.num_buckets, _time.perf_counter() - start
    )


def merge_group_categorical(
    old: TransformResult, delta_column: Column
) -> DeltaMerge:
    """Merge appended rows into a ``GROUP BY`` result.

    First-appearance order makes this the cheapest merge: old bucket
    indices never shift, new labels append at the end in their
    delta-first-appearance order, and the old assignment is reused
    as-is.
    """
    if old.num_rows == 0:
        return _fresh_merge(group_categorical(delta_column))
    if len(delta_column.values) == 0:
        # Validate like the kernel would, even with nothing to do.
        if not delta_column.ctype.is_groupable:
            raise ValidationError(
                f"GROUP BY requires a categorical or temporal column, got "
                f"{delta_column.ctype.value} column {delta_column.name!r}"
            )
        return _unchanged_merge(old)
    start = _time.perf_counter()
    delta = group_categorical(delta_column)
    slot_of = {label: j for j, label in enumerate(old.labels)}
    mapping = np.empty(delta.num_buckets, dtype=np.intp)
    appended_labels: List[str] = []
    for j, label in enumerate(delta.labels):
        slot = slot_of.get(label)
        if slot is None:
            mapping[j] = old.num_buckets + len(appended_labels)
            appended_labels.append(label)
        else:
            mapping[j] = slot
    total = old.num_buckets + len(appended_labels)
    sort_keys = np.arange(total, dtype=np.float64)
    delta_assignment = mapping[delta.assignment]
    merged = TransformResult(
        old.labels + tuple(appended_labels),
        sort_keys,
        sort_keys,
        np.concatenate([old.assignment, delta_assignment]),
    )
    out = DeltaMerge(
        result=merged,
        old_positions=np.arange(old.num_buckets, dtype=np.intp),
        delta_assignment=delta_assignment,
        old_buckets=old.num_buckets,
    )
    _record_merge(
        "merge_group_categorical", len(delta_column.values), merged, start
    )
    return out


def merge_bin_temporal(
    old: TransformResult, delta_column: Column, granularity: BinGranularity
) -> DeltaMerge:
    """Merge appended rows into a ``BIN BY <granularity>`` result.

    New calendar keys can interleave with old ones (buckets are sorted
    by key), so the old assignment is remapped through a positions
    gather — an ``O(old rows)`` intp pass, still far cheaper than
    re-binning, and labels are formatted only for new distinct buckets
    (each label is a pure function of its bucket key, so representative
    choice cannot change it).
    """
    _require_temporal(delta_column, granularity)
    if old.num_rows == 0:
        return _fresh_merge(bin_temporal(delta_column, granularity))
    if len(delta_column.values) == 0:
        return _unchanged_merge(old)
    start = _time.perf_counter()
    _require_finite(delta_column, f"BIN BY {granularity.value}")
    delta_keys = _temporal_keys_columnar(delta_column.values, granularity)
    d_distinct, d_first, d_inverse = np.unique(
        delta_keys, return_index=True, return_inverse=True
    )
    # Calendar keys are small integers; the float64 sort_keys round-trip
    # exactly.
    old_keys = old.sort_keys.astype(np.int64)
    merged_keys = np.union1d(old_keys, d_distinct)
    old_positions = np.searchsorted(merged_keys, old_keys).astype(np.intp)
    delta_positions = np.searchsorted(merged_keys, d_distinct).astype(np.intp)
    labels: List[str] = [None] * len(merged_keys)  # type: ignore[list-item]
    for pos, label in zip(old_positions.tolist(), old.labels):
        labels[pos] = label
    label_fn = _TEMPORAL_KEYS[granularity][1]
    for j, pos in enumerate(delta_positions.tolist()):
        if labels[pos] is None:
            labels[pos] = label_fn(_moment(delta_column.values[d_first[j]]))
    sort_keys = merged_keys.astype(np.float64)
    delta_assignment = delta_positions[d_inverse]
    merged = TransformResult(
        tuple(labels),
        sort_keys,
        sort_keys,
        np.concatenate([old_positions[old.assignment], delta_assignment]),
    )
    out = DeltaMerge(
        result=merged,
        old_positions=old_positions,
        delta_assignment=delta_assignment,
        old_buckets=old.num_buckets,
    )
    _record_merge(
        "merge_bin_temporal", len(delta_column.values), merged, start
    )
    return out


def merge_bin_numeric(
    old: TransformResult,
    full_column: Column,
    delta_column: Column,
    n: int = DEFAULT_NUM_BUCKETS,
    old_min: "float | None" = None,
    old_max: "float | None" = None,
) -> DeltaMerge:
    """Merge appended rows into a ``BIN INTO n`` result.

    Equal-width edges depend on the column's global ``[lo, hi]``, which
    the compact result does not preserve exactly — callers that track
    the pre-append min/max pass them via ``old_min``/``old_max``
    (otherwise they are recomputed from the full column's old-row
    prefix).  While the appended chunk stays inside the old range the
    merge is incremental with the exact kernel arithmetic; a chunk that
    extends the range moves every edge, so the kernel reruns over the
    full column (``rebuilt=True``).
    """
    _require_numeric(delta_column, n)
    if old.num_rows == 0:
        return _fresh_merge(bin_numeric(full_column, n))
    if len(delta_column.values) == 0:
        return _unchanged_merge(old)
    if old.num_rows + len(delta_column.values) != len(full_column.values):
        raise ValidationError(
            f"delta merge size mismatch: {old.num_rows} old rows + "
            f"{len(delta_column.values)} appended != "
            f"{len(full_column.values)} total"
        )
    start = _time.perf_counter()
    _require_finite(delta_column, "BIN INTO")
    if old_min is None or old_max is None:
        prefix = full_column.values[: old.num_rows]
        old_min, old_max = float(np.min(prefix)), float(np.max(prefix))
    lo, hi = float(old_min), float(old_max)
    delta_values = delta_column.values
    d_lo = float(np.min(delta_values))
    d_hi = float(np.max(delta_values))
    if hi <= lo:
        # Old column was constant (single point bucket).
        if d_lo == lo and d_hi == lo:
            merged = TransformResult(
                old.labels,
                old.sort_keys,
                old.values,
                np.concatenate(
                    [old.assignment, np.zeros(len(delta_values), dtype=np.intp)]
                ),
            )
            out = DeltaMerge(
                result=merged,
                old_positions=np.zeros(1, dtype=np.intp),
                delta_assignment=np.zeros(len(delta_values), dtype=np.intp),
                old_buckets=1,
            )
            _record_merge("merge_bin_numeric", len(delta_values), merged, start)
            return out
        result = bin_numeric(full_column, n)
        return DeltaMerge(
            result=result,
            old_positions=None,
            delta_assignment=None,
            old_buckets=old.num_buckets,
            rebuilt=True,
        )
    if d_lo < lo or d_hi > hi:
        # Range grew: every edge moves, incremental merge impossible.
        result = bin_numeric(full_column, n)
        return DeltaMerge(
            result=result,
            old_positions=None,
            delta_assignment=None,
            old_buckets=old.num_buckets,
            rebuilt=True,
        )
    # In-range chunk: the kernel's exact index arithmetic over only the
    # new rows, then a sorted union of occupied buckets.
    width = (hi - lo) / n
    indices = np.clip(((delta_values - lo) / width).astype(np.int64), 0, n - 1)
    d_occupied, d_inverse = np.unique(indices, return_inverse=True)
    old_occupied = old.sort_keys.astype(np.int64)
    merged_occupied = np.union1d(old_occupied, d_occupied)
    old_positions = np.searchsorted(merged_occupied, old_occupied).astype(np.intp)
    delta_positions = np.searchsorted(merged_occupied, d_occupied).astype(np.intp)
    edges = _numeric_edges(lo, hi, n)
    lefts = edges[merged_occupied]
    rights = edges[merged_occupied + 1]
    labels: List[str] = [None] * len(merged_occupied)  # type: ignore[list-item]
    for pos, label in zip(old_positions.tolist(), old.labels):
        labels[pos] = label
    for pos in delta_positions.tolist():
        if labels[pos] is None:
            labels[pos] = _interval_label(
                float(lefts[pos]), float(rights[pos])
            )
    delta_assignment = delta_positions[d_inverse]
    merged = TransformResult(
        tuple(labels),
        merged_occupied.astype(np.float64),
        (lefts + rights) / 2.0,
        np.concatenate([old_positions[old.assignment], delta_assignment]),
    )
    out = DeltaMerge(
        result=merged,
        old_positions=old_positions,
        delta_assignment=delta_assignment,
        old_buckets=old.num_buckets,
    )
    _record_merge("merge_bin_numeric", len(delta_values), merged, start)
    return out


def merge_bin_udf(
    old: TransformResult,
    full_column: Column,
    delta_column: Column,
    udf: Callable[[float], object],
) -> DeltaMerge:
    """Merge appended rows into a ``BIN BY UDF`` result.

    The UDF runs only over the new rows.  Representatives merge by the
    kernel's exact rules: an existing label's representative is the min
    over its non-NaN inputs unless its (old) first row was NaN, in
    which case NaN sticks; a label first seen in the delta takes its
    delta-local representative with the first-row-NaN rule applied at
    its global first appearance.  Labels reorder by (representative,
    first-appearance) exactly as the kernel's lexsort would.
    """
    if old.num_rows == 0:
        return _fresh_merge(bin_udf(full_column, udf))
    raw = delta_column.values
    if len(raw) == 0:
        return _unchanged_merge(old)
    start = _time.perf_counter()
    old_n = old.num_rows
    labels_delta = np.asarray([str(udf(value)) for value in raw], dtype=object)
    d_distinct, d_first, d_inverse = np.unique(
        labels_delta, return_index=True, return_inverse=True
    )
    # Old per-bucket first-appearance rows, recovered from the
    # assignment (one intp pass over the old rows).
    old_first = np.full(old.num_buckets, old_n, dtype=np.intp)
    np.minimum.at(
        old_first, old.assignment, np.arange(old_n, dtype=np.intp)
    )
    categorical = delta_column.ctype is ColumnType.CATEGORICAL
    if not categorical:
        numeric = np.asarray(raw, dtype=np.float64)
        d_min = np.full(len(d_distinct), np.inf)
        np.fmin.at(d_min, d_inverse, numeric)
        d_first_is_nan = np.isnan(numeric[d_first])
    reps = np.array(old.sort_keys, dtype=np.float64, copy=True)
    slot_of = {label: j for j, label in enumerate(old.labels)}
    mapping = np.empty(len(d_distinct), dtype=np.intp)
    new_labels: List[str] = []
    new_reps: List[float] = []
    new_first: List[int] = []
    for j, label in enumerate(d_distinct.tolist()):
        slot = slot_of.get(label)
        if slot is None:
            mapping[j] = old.num_buckets + len(new_labels)
            new_labels.append(label)
            if categorical:
                new_reps.append(float(old_n + d_first[j]))
            elif d_first_is_nan[j]:
                new_reps.append(np.nan)
            else:
                new_reps.append(float(d_min[j]))
            new_first.append(old_n + int(d_first[j]))
        else:
            mapping[j] = slot
            if not categorical and not np.isnan(reps[slot]):
                reps[slot] = np.fmin(reps[slot], d_min[j])
    all_reps = np.concatenate([reps, np.asarray(new_reps, dtype=np.float64)])
    all_first = np.concatenate(
        [old_first, np.asarray(new_first, dtype=np.intp)]
    )
    all_labels = old.labels + tuple(new_labels)
    order = np.lexsort((all_first, all_reps))
    rank = np.empty(len(order), dtype=np.intp)
    rank[order] = np.arange(len(order), dtype=np.intp)
    sort_keys = all_reps[order]
    delta_assignment = rank[mapping[d_inverse]]
    merged = TransformResult(
        tuple(all_labels[j] for j in order),
        sort_keys,
        sort_keys,
        np.concatenate([rank[old.assignment], delta_assignment]),
    )
    out = DeltaMerge(
        result=merged,
        old_positions=rank[: old.num_buckets],
        delta_assignment=delta_assignment,
        old_buckets=old.num_buckets,
    )
    _record_merge("merge_bin_udf", len(raw), merged, start)
    return out


def merge_delta(
    transform,
    old: TransformResult,
    full_column: Column,
    delta_column: Column,
    old_min: "float | None" = None,
    old_max: "float | None" = None,
) -> DeltaMerge:
    """Dispatch an append-delta merge by transform AST node.

    ``full_column`` is the grown column (old rows + appended chunk) and
    ``delta_column`` just the chunk; ``old_min``/``old_max`` feed the
    numeric-bin edge check (see :func:`merge_bin_numeric`).  The merged
    :class:`TransformResult` is always bit-identical to rerunning the
    matching kernel over ``full_column`` — the differential property
    ``tests/test_kernels_delta.py`` fuzzes.
    """
    from .ast import BinByGranularity, BinByUDF, BinIntoBuckets, GroupBy

    if old.num_rows + len(delta_column.values) != len(full_column.values):
        raise ValidationError(
            f"delta merge size mismatch: {old.num_rows} old rows + "
            f"{len(delta_column.values)} appended != "
            f"{len(full_column.values)} total"
        )
    if isinstance(transform, GroupBy):
        return merge_group_categorical(old, delta_column)
    if isinstance(transform, BinByGranularity):
        return merge_bin_temporal(old, delta_column, transform.granularity)
    if isinstance(transform, BinIntoBuckets):
        return merge_bin_numeric(
            old, full_column, delta_column, transform.n, old_min, old_max
        )
    if isinstance(transform, BinByUDF):
        return merge_bin_udf(old, full_column, delta_column, transform.udf)
    raise ValidationError(
        f"no delta merge for transform {type(transform).__name__}"
    )


def assign_buckets(buckets: Sequence[Bucket]) -> TransformResult:
    """Deduplicate a per-row :class:`Bucket` sequence into the compact form.

    The row-wise combiner behind the ``_reference_*`` oracles (and any
    external caller still producing per-row buckets): distinct buckets
    come out sorted by ``sort_key`` with first-appearance order among
    ties and NaN keys last, exactly as the vectorized kernels emit them.
    (Plain ``sorted`` on keys containing NaN depends on comparison
    order; the explicit NaN-last rule makes it deterministic.)
    """
    seen: Dict[Tuple[float, str], int] = {}
    ordered: List[Bucket] = []
    assignment = np.empty(len(buckets), dtype=np.intp)
    for i, bucket in enumerate(buckets):
        key = (bucket.sort_key, bucket.label)
        if key not in seen:
            seen[key] = len(ordered)
            ordered.append(bucket)
        assignment[i] = seen[key]
    order = sorted(
        range(len(ordered)),
        key=lambda j: (_math.isnan(ordered[j].sort_key), ordered[j].sort_key),
    )
    remap = np.empty(len(ordered), dtype=np.intp)
    for new_pos, old_pos in enumerate(order):
        remap[old_pos] = new_pos
    sorted_buckets = [ordered[j] for j in order]
    return TransformResult(
        [b.label for b in sorted_buckets],
        [b.sort_key for b in sorted_buckets],
        [b.value for b in sorted_buckets],
        remap[assignment] if len(buckets) else assignment,
    )


# ----------------------------------------------------------------------
# Row-wise reference oracles (the pre-vectorization implementations)
# ----------------------------------------------------------------------
def _reference_bin_temporal(
    column: Column, granularity: BinGranularity
) -> List[Bucket]:
    """Row-at-a-time temporal binning: one ``datetime`` + one
    :class:`Bucket` per row.  Oracle for the differential tests."""
    _require_temporal(column, granularity)
    _require_finite(column, f"BIN BY {granularity.value}")
    key_fn, label_fn = _TEMPORAL_KEYS[granularity]
    buckets = []
    for seconds in column.values:
        moment = _moment(seconds)
        key = float(key_fn(moment))
        buckets.append(Bucket(sort_key=key, label=label_fn(moment), value=key))
    return buckets


def _reference_bin_numeric(
    column: Column, n: int = DEFAULT_NUM_BUCKETS
) -> List[Bucket]:
    """Row-at-a-time numeric binning (same shared edges and labels)."""
    _require_numeric(column, n)
    values = column.values
    if len(values) == 0:
        return []
    _require_finite(column, "BIN INTO")
    lo, hi = float(np.min(values)), float(np.max(values))
    if hi <= lo:
        return [Bucket(0.0, _point_label(lo), lo) for _ in values]
    width = (hi - lo) / n
    indices = np.clip(((values - lo) / width).astype(np.int64), 0, n - 1)
    edges = _numeric_edges(lo, hi, n)
    buckets = []
    for idx in indices:
        left = float(edges[idx])
        right = float(edges[idx + 1])
        buckets.append(
            Bucket(
                sort_key=float(idx),
                label=_interval_label(left, right),
                value=(left + right) / 2.0,
            )
        )
    return buckets


def _reference_bin_udf(
    column: Column, udf: Callable[[float], object]
) -> List[Bucket]:
    """Row-at-a-time UDF bucketing with dict-based representatives."""
    labels = [str(udf(v)) for v in column.values]
    representative: Dict[str, float] = {}
    if column.ctype is ColumnType.CATEGORICAL:
        for i, label in enumerate(labels):
            representative.setdefault(label, float(i))
    else:
        for label, raw in zip(labels, column.values):
            raw = float(raw)
            if label not in representative or raw < representative[label]:
                representative[label] = raw
    return [
        Bucket(sort_key=representative[label], label=label, value=representative[label])
        for label in labels
    ]


def _reference_group_categorical(column: Column) -> List[Bucket]:
    """Row-at-a-time grouping with a first-appearance dict."""
    if not column.ctype.is_groupable:
        raise ValidationError(
            f"GROUP BY requires a categorical or temporal column, got "
            f"{column.ctype.value} column {column.name!r}"
        )
    if column.ctype is ColumnType.TEMPORAL:
        _require_finite(column, "GROUP BY")
    order: Dict[object, int] = {}
    for value in column.values:
        if value not in order:
            order[value] = len(order)
    return [
        Bucket(sort_key=float(order[v]), label=str(v), value=float(order[v]))
        for v in column.values
    ]


def _timed_reference(name: str, kernel: Callable) -> Callable:
    """Wrap a row-wise oracle to emit the compact form + kernel stats."""

    def runner(column: Column, *args) -> TransformResult:
        start = _time.perf_counter()
        result = assign_buckets(kernel(column, *args))
        KERNEL_STATS.record(
            f"reference_{name}", len(column.values), result.num_buckets,
            _time.perf_counter() - start,
        )
        return result

    runner.__name__ = name
    return runner


#: name -> vectorized kernel, the executor's dispatch surface.
_VECTORIZED_KERNELS: Dict[str, Callable] = {
    "bin_temporal": bin_temporal,
    "bin_numeric": bin_numeric,
    "bin_udf": bin_udf,
    "group_categorical": group_categorical,
}

_REFERENCE_COMPACT: Dict[str, Callable] = {
    "bin_temporal": _timed_reference("bin_temporal", _reference_bin_temporal),
    "bin_numeric": _timed_reference("bin_numeric", _reference_bin_numeric),
    "bin_udf": _timed_reference("bin_udf", _reference_bin_udf),
    "group_categorical": _timed_reference(
        "group_categorical", _reference_group_categorical
    ),
}


@contextmanager
def use_reference_kernels() -> Iterator[None]:
    """Route :func:`repro.language.executor.apply_transform` through the
    row-wise reference oracles while the context is active.

    For differential tests and the ``bench_kernels`` A/B measurement
    only — the oracles produce identical results, orders of magnitude
    slower.  Swaps this module's public kernel names, which the executor
    resolves per call; direct ``from ... import bin_temporal`` bindings
    held elsewhere keep pointing at the vectorized kernels.
    """
    previous = {name: globals()[name] for name in _VECTORIZED_KERNELS}
    globals().update(_REFERENCE_COMPACT)
    try:
        yield
    finally:
        globals().update(previous)
