"""Query execution: evaluate ``Q(D)`` to produce chart data.

The executor turns a :class:`~repro.language.ast.VisQuery` plus a
:class:`~repro.dataset.table.Table` into :class:`ChartData` — the
(x, y) series a renderer would plot and the transformed-column
statistics (``|X'|``, ``d(X')``, ``d(Y')``) the ranking factors need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..dataset.column import Column, ColumnType
from ..dataset.table import Table
from ..errors import ExecutionError, ValidationError
from .aggregation import aggregate
from .ast import (
    AggregateOp,
    BinByGranularity,
    BinByUDF,
    BinIntoBuckets,
    ChartType,
    GroupBy,
    OrderBy,
    OrderTarget,
    Transform,
    VisQuery,
)
from . import binning as _binning
from .binning import TransformResult

__all__ = [
    "ChartData",
    "execute",
    "apply_transform",
    "as_float_tuple",
    "as_str_tuple",
]


def as_float_tuple(values) -> Tuple[float, ...]:
    """The one array→``Tuple[float, ...]`` conversion point.

    ``ndarray.tolist()`` converts in C, so building a series from a
    kernel's array costs one pass instead of a per-row
    ``tuple(float(v) for ...)`` comprehension.
    """
    return tuple(np.asarray(values, dtype=np.float64).tolist())


def as_str_tuple(values) -> Tuple[str, ...]:
    """The one array→``Tuple[str, ...]`` conversion point (labels)."""
    return tuple(str(v) for v in values)


@dataclass(frozen=True)
class ChartData:
    """The materialised result of one visualization query.

    Attributes
    ----------
    query:
        The query that produced this data.
    x_labels:
        Tick labels for the x-axis, one per point.
    x_values:
        Numeric representatives of the x points (bucket sort keys /
        midpoints, or raw values when no transform applied).
    y_values:
        The y series, one per point.
    x_is_discrete:
        True when the x-axis is categorical-like (grouped or categorical
        raw data) rather than a continuous scale.
    source_rows:
        ``|X|`` — the number of source tuples the query consumed.
    """

    query: VisQuery
    x_labels: Tuple[str, ...]
    x_values: Tuple[float, ...]
    y_values: Tuple[float, ...]
    x_is_discrete: bool
    source_rows: int

    # -- transformed-column statistics used by ranking factors ---------
    @property
    def transformed_rows(self) -> int:
        """``|X'|`` — cardinality of the transformed data (points plotted)."""
        return len(self.x_values)

    @property
    def distinct_x(self) -> int:
        """``d(X')`` — distinct transformed x values.

        Falls back to ``x_values`` when labels were elided (continuous
        raw series built by the enumeration fast path carry no labels).
        """
        if self.x_labels:
            return len(set(self.x_labels))
        return len(set(self.x_values))

    @property
    def distinct_y(self) -> int:
        """``d(Y')`` — distinct transformed y values."""
        return len(set(self.y_values))

    @property
    def y_min(self) -> float:
        return float(min(self.y_values)) if self.y_values else 0.0

    @property
    def y_max(self) -> float:
        return float(max(self.y_values)) if self.y_values else 0.0

    def is_empty(self) -> bool:
        """True when the query produced no points at all."""
        return len(self.y_values) == 0


def apply_transform(transform: Transform, table: Table) -> TransformResult:
    """Evaluate a TRANSFORM clause into the compact columnar form.

    Returns a :class:`~repro.language.binning.TransformResult` (distinct
    buckets as parallel arrays + per-row assignment); unpacking it as
    ``buckets, assignment = apply_transform(...)`` still works.  Kernels
    are resolved through the :mod:`~repro.language.binning` module per
    call so :func:`~repro.language.binning.use_reference_kernels` can
    swap in the row-wise oracles.
    """
    if isinstance(transform, GroupBy):
        return _binning.group_categorical(table.column(transform.column))
    if isinstance(transform, BinByGranularity):
        return _binning.bin_temporal(
            table.column(transform.column), transform.granularity
        )
    if isinstance(transform, BinIntoBuckets):
        return _binning.bin_numeric(table.column(transform.column), transform.n)
    if isinstance(transform, BinByUDF):
        return _binning.bin_udf(table.column(transform.column), transform.udf)
    raise ValidationError(f"unknown transform {transform!r}")


def _raw_series(query: VisQuery, table: Table) -> ChartData:
    """No TRANSFORM: plot the raw (X, Y) pairs."""
    x_col = table.column(query.x)
    y_col = table.column(query.y)
    if y_col.ctype is not ColumnType.NUMERICAL:
        raise ValidationError(
            f"y-axis column {query.y!r} must be numerical when no "
            f"aggregation is applied"
        )
    if x_col.ctype is ColumnType.CATEGORICAL:
        labels = as_str_tuple(x_col.values)
        x_values = as_float_tuple(np.arange(len(labels)))
        discrete = True
    else:
        x_values = as_float_tuple(x_col.values)
        labels = tuple(f"{v:g}" for v in x_values)
        discrete = False
    return ChartData(
        query=query,
        x_labels=labels,
        x_values=x_values,
        y_values=as_float_tuple(y_col.values),
        x_is_discrete=discrete,
        source_rows=table.num_rows,
    )


def _ordered(data: ChartData, order: Optional[OrderBy]) -> ChartData:
    """Apply the ORDER BY clause by permuting the chart points."""
    if order is None or data.is_empty():
        return data
    if order.target is OrderTarget.X:
        keys = np.asarray(data.x_values, dtype=np.float64)
    else:
        keys = np.asarray(data.y_values, dtype=np.float64)
    permutation = np.argsort(keys, kind="stable")
    if order.descending:
        permutation = permutation[::-1]
    return ChartData(
        query=data.query,
        x_labels=tuple(data.x_labels[i] for i in permutation),
        x_values=tuple(data.x_values[i] for i in permutation),
        y_values=tuple(data.y_values[i] for i in permutation),
        x_is_discrete=data.x_is_discrete,
        source_rows=data.source_rows,
    )


def execute(query: VisQuery, table: Table) -> ChartData:
    """Evaluate ``Q(D)``: transform, aggregate, order, and package.

    Raises
    ------
    ValidationError
        When the query is semantically invalid for the table's types.
    ExecutionError
        When evaluation fails despite a valid query (e.g. empty table for
        a chart that needs data).
    """
    if query.x not in table or query.y not in table:
        missing = query.x if query.x not in table else query.y
        raise ValidationError(
            f"query references column {missing!r} absent from table "
            f"{table.name!r}"
        )
    if table.num_rows == 0:
        raise ExecutionError(f"table {table.name!r} is empty")

    if query.transform is None:
        return _ordered(_raw_series(query, table), query.order)

    transform_col = getattr(query.transform, "column", None)
    if transform_col != query.x:
        raise ValidationError(
            f"TRANSFORM targets {transform_col!r} but SELECT's x is {query.x!r}"
        )

    result = apply_transform(query.transform, table)
    y_col = table.column(query.y) if query.aggregate is not AggregateOp.CNT else None
    y_values = aggregate(
        query.aggregate, result.assignment, result.num_buckets, y_col
    )

    discrete = isinstance(query.transform, (GroupBy, BinByUDF))
    data = ChartData(
        query=query,
        x_labels=result.labels,
        x_values=result.values_tuple,
        y_values=as_float_tuple(y_values),
        x_is_discrete=discrete,
        source_rows=table.num_rows,
    )
    return _ordered(data, query.order)
