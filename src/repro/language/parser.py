"""Text parser for the visualization language (Figure 2 syntax).

Example accepted query (the paper's Q1)::

    VISUALIZE line
    SELECT scheduled, AVG(departure delay)
    FROM flights
    BIN scheduled BY HOUR
    ORDER BY scheduled

The parser is line-oriented and case-insensitive on keywords.  Column
names may contain spaces (as in the paper's ``departure delay``); commas
separate the two SELECT expressions.
"""

from __future__ import annotations

import re
from typing import Optional, Tuple

from ..errors import ParseError
from .ast import (
    AggregateOp,
    BinByGranularity,
    BinGranularity,
    BinIntoBuckets,
    ChartType,
    GroupBy,
    OrderBy,
    OrderTarget,
    Transform,
    VisQuery,
)

__all__ = ["parse_query", "ParsedQuery"]

_AGG_PATTERN = re.compile(
    r"^(SUM|AVG|CNT|COUNT)\s*\((?P<col>.+)\)$", re.IGNORECASE
)


class ParsedQuery:
    """A parsed query plus the FROM table name (the AST drops it)."""

    def __init__(self, query: VisQuery, table_name: str) -> None:
        self.query = query
        self.table_name = table_name


def _strip(text: str) -> str:
    return text.strip().strip('"').strip()


def _parse_select(body: str, line_no: int) -> Tuple[str, str, Optional[AggregateOp]]:
    parts = [p for p in (s.strip() for s in body.split(",")) if p]
    if len(parts) != 2:
        raise ParseError(
            f"SELECT expects exactly two expressions, got {len(parts)}", line_no
        )
    x = _strip(parts[0])
    match = _AGG_PATTERN.match(parts[1])
    if match:
        op_text = match.group(1).upper()
        op = AggregateOp.CNT if op_text == "COUNT" else AggregateOp(op_text)
        return x, _strip(match.group("col")), op
    return x, _strip(parts[1]), None


def _parse_transform(line: str, line_no: int, x: str) -> Transform:
    upper = line.upper()
    if upper.startswith("GROUP BY"):
        column = _strip(line[len("GROUP BY"):])
        return GroupBy(column or x)
    if not upper.startswith("BIN "):
        raise ParseError(f"unrecognised TRANSFORM clause: {line!r}", line_no)
    body = line[4:].strip()
    into_match = re.match(r"^(?P<col>.+?)\s+INTO\s+(?P<n>\d+)$", body, re.IGNORECASE)
    if into_match:
        return BinIntoBuckets(_strip(into_match.group("col")), int(into_match.group("n")))
    by_match = re.match(r"^(?P<col>.+?)\s+BY\s+(?P<gran>\w+)$", body, re.IGNORECASE)
    if by_match:
        gran_text = by_match.group("gran").upper()
        try:
            granularity = BinGranularity(gran_text)
        except ValueError:
            raise ParseError(
                f"unknown bin granularity {gran_text!r}; expected one of "
                f"{[g.value for g in BinGranularity]}",
                line_no,
            ) from None
        return BinByGranularity(_strip(by_match.group("col")), granularity)
    raise ParseError(f"unrecognised BIN clause: {line!r}", line_no)


def parse_query(text: str) -> ParsedQuery:
    """Parse the textual visualization language into a :class:`VisQuery`.

    Raises :class:`~repro.errors.ParseError` with the offending line
    number on malformed input.
    """
    chart: Optional[ChartType] = None
    x = y = table_name = None
    aggregate: Optional[AggregateOp] = None
    transform: Optional[Transform] = None
    order: Optional[OrderBy] = None

    lines = [ln.strip() for ln in text.strip().splitlines()]
    for line_no, line in enumerate(lines, start=1):
        if not line or line.startswith("--"):
            continue
        upper = line.upper()
        if upper.startswith("VISUALIZE"):
            kind = line[len("VISUALIZE"):].strip().lower()
            try:
                chart = ChartType(kind)
            except ValueError:
                raise ParseError(
                    f"unknown chart type {kind!r}; expected one of "
                    f"{[c.value for c in ChartType]}",
                    line_no,
                ) from None
        elif upper.startswith("SELECT"):
            x, y, aggregate = _parse_select(line[len("SELECT"):], line_no)
        elif upper.startswith("FROM"):
            table_name = _strip(line[len("FROM"):])
        elif upper.startswith("ORDER BY"):
            body = line[len("ORDER BY"):].strip()
            descending = False
            if body.upper().endswith(" DESC"):
                descending = True
                body = body[: -len(" DESC")].strip()
            elif body.upper().endswith(" ASC"):
                body = body[: -len(" ASC")].strip()
            column = _strip(body)
            if x is None or y is None:
                raise ParseError("ORDER BY must follow SELECT", line_no)
            if column == x or column.upper() == "X":
                order = OrderBy(OrderTarget.X, descending)
            elif column == y or column.upper() == "Y":
                order = OrderBy(OrderTarget.Y, descending)
            else:
                raise ParseError(
                    f"ORDER BY column {column!r} is neither selected column "
                    f"({x!r}, {y!r})",
                    line_no,
                )
        elif upper.startswith(("BIN", "GROUP BY")):
            if x is None:
                raise ParseError("TRANSFORM must follow SELECT", line_no)
            transform = _parse_transform(line, line_no, x)
        else:
            raise ParseError(f"unrecognised clause: {line!r}", line_no)

    if chart is None:
        raise ParseError("missing mandatory VISUALIZE clause")
    if x is None or y is None:
        raise ParseError("missing mandatory SELECT clause")
    if table_name is None:
        raise ParseError("missing mandatory FROM clause")
    if transform is not None and aggregate is None:
        # The language requires an aggregate with a transform; COUNT is the
        # universal default (valid for any Y type).
        aggregate = AggregateOp.CNT
    if transform is None and aggregate is not None:
        raise ParseError(
            "aggregation in SELECT requires a TRANSFORM clause (BIN/GROUP BY)"
        )

    query = VisQuery(
        chart=chart, x=x, y=y, transform=transform, aggregate=aggregate, order=order
    )
    return ParsedQuery(query, table_name)
