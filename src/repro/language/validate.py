"""Pre-execution query validation with full problem lists.

The executor raises on the *first* semantic error; interactive callers
(the CLI, notebooks) want *all* problems at once with readable
messages.  :func:`validate_query` checks a query against a table's
schema and types and returns every issue found; an empty list means the
query will execute.
"""

from __future__ import annotations

from typing import List

from ..dataset.column import ColumnType
from ..dataset.table import Table
from .ast import (
    AggregateOp,
    BinByGranularity,
    BinByUDF,
    BinIntoBuckets,
    ChartType,
    GroupBy,
    OrderBy,
    VisQuery,
)

__all__ = ["validate_query"]


def validate_query(query: VisQuery, table: Table) -> List[str]:
    """Every reason ``execute(query, table)`` would fail, as messages."""
    problems: List[str] = []

    missing = [name for name in (query.x, query.y) if name not in table]
    for name in missing:
        problems.append(
            f"column {name!r} does not exist (available: "
            f"{', '.join(table.column_names)})"
        )
    if missing:
        return problems  # type checks below need the columns

    x = table.column(query.x)
    y = table.column(query.y)

    if table.num_rows == 0:
        problems.append("the table has no rows")

    transform = query.transform
    if transform is None:
        if y.ctype is not ColumnType.NUMERICAL:
            problems.append(
                f"raw plots need a numerical y column; {query.y!r} is "
                f"{y.ctype.value}"
            )
    else:
        target = getattr(transform, "column", None)
        if target != query.x:
            problems.append(
                f"TRANSFORM targets {target!r} but SELECT's x is {query.x!r}"
            )
        if isinstance(transform, GroupBy) and not x.ctype.is_groupable:
            problems.append(
                f"cannot GROUP BY numerical column {query.x!r}; bin it instead"
            )
        if isinstance(transform, BinByGranularity) and x.ctype is not ColumnType.TEMPORAL:
            problems.append(
                f"BIN BY {transform.granularity.value} needs a temporal "
                f"column; {query.x!r} is {x.ctype.value}"
            )
        if isinstance(transform, BinIntoBuckets):
            if x.ctype is not ColumnType.NUMERICAL:
                problems.append(
                    f"BIN INTO needs a numerical column; {query.x!r} is "
                    f"{x.ctype.value}"
                )
            if transform.n < 1:
                problems.append(f"BIN INTO {transform.n}: need at least 1 bucket")
        if isinstance(transform, BinByUDF) and x.ctype is ColumnType.CATEGORICAL:
            problems.append(
                f"BIN BY UDF over categorical column {query.x!r} is not "
                f"meaningful; group it instead"
            )
        if (
            query.aggregate in (AggregateOp.AVG, AggregateOp.SUM)
            and y.ctype is not ColumnType.NUMERICAL
        ):
            problems.append(
                f"{query.aggregate.value} needs a numerical y column; "
                f"{query.y!r} is {y.ctype.value}"
            )

    if query.chart is ChartType.PIE and query.aggregate is AggregateOp.AVG:
        problems.append(
            "pie charts with AVG make no part-to-whole sense "
            "(the significance score will be zero)"
        )
    return problems
