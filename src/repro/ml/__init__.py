"""From-scratch ML substrate: trees, Bayes, SVM, boosting, LambdaMART."""

from .bayes import GaussianNaiveBayes
from .boosting import GradientBoostedRegressor
from .lambdamart import LambdaMART, RankingDataset
from .metrics import (
    accuracy,
    confusion_matrix,
    dcg_at_k,
    kendall_tau,
    ndcg_at_k,
    ndcg_of_ranking,
    precision_recall_f1,
)
from .model_selection import KFold, cross_val_score, train_test_split
from .preprocessing import OneHotEncoder, StandardScaler
from .ranknet import RankNet
from .svm import LinearSVM
from .tree import DecisionTreeClassifier, DecisionTreeRegressor, TreeNode

__all__ = [
    "GaussianNaiveBayes",
    "GradientBoostedRegressor",
    "LambdaMART",
    "RankingDataset",
    "accuracy",
    "confusion_matrix",
    "dcg_at_k",
    "kendall_tau",
    "ndcg_at_k",
    "ndcg_of_ranking",
    "precision_recall_f1",
    "KFold",
    "cross_val_score",
    "train_test_split",
    "OneHotEncoder",
    "StandardScaler",
    "RankNet",
    "LinearSVM",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "TreeNode",
]
