"""Gaussian naive Bayes classifier (the paper's "Bayes" baseline).

Each feature is modelled as an independent Gaussian per class; the
predicted class maximises the log posterior.  Variances are smoothed by
a small fraction of the largest feature variance so constant features do
not produce degenerate likelihoods.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ModelError, NotFittedError

__all__ = ["GaussianNaiveBayes"]


class GaussianNaiveBayes:
    """Naive Bayes with Gaussian likelihoods and MLE priors."""

    def __init__(self, var_smoothing: float = 1e-9) -> None:
        self.var_smoothing = var_smoothing
        self.classes_: Optional[np.ndarray] = None

    def fit(self, X, y, sample_weight=None) -> "GaussianNaiveBayes":
        """Fit per-class Gaussian likelihoods and (weighted) priors."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or len(X) != len(y):
            raise ModelError("X must be 2-D and aligned with y")
        weights = (
            np.ones(len(X))
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        self.classes_, encoded = np.unique(y, return_inverse=True)
        n_classes, n_features = len(self.classes_), X.shape[1]

        self.theta_ = np.zeros((n_classes, n_features))
        self.var_ = np.zeros((n_classes, n_features))
        self.class_log_prior_ = np.zeros(n_classes)
        total_weight = weights.sum()
        epsilon = self.var_smoothing * max(float(np.var(X, axis=0).max()), 1e-12)

        for k in range(n_classes):
            mask = encoded == k
            w = weights[mask]
            w_total = w.sum()
            if w_total <= 0:
                raise ModelError(f"class {self.classes_[k]!r} has zero total weight")
            mean = (X[mask] * w[:, None]).sum(axis=0) / w_total
            var = ((X[mask] - mean) ** 2 * w[:, None]).sum(axis=0) / w_total
            self.theta_[k] = mean
            self.var_[k] = var + epsilon
            self.class_log_prior_[k] = np.log(w_total / total_weight)
        return self

    def _joint_log_likelihood(self, X: np.ndarray) -> np.ndarray:
        log_likelihood = []
        for k in range(len(self.classes_)):
            log_det = -0.5 * np.sum(np.log(2.0 * np.pi * self.var_[k]))
            mahalanobis = -0.5 * np.sum(
                (X - self.theta_[k]) ** 2 / self.var_[k], axis=1
            )
            log_likelihood.append(self.class_log_prior_[k] + log_det + mahalanobis)
        return np.vstack(log_likelihood).T

    def predict_log_proba(self, X) -> np.ndarray:
        """Log posterior per class, normalised with log-sum-exp."""
        if self.classes_ is None:
            raise NotFittedError(type(self).__name__)
        X = np.asarray(X, dtype=np.float64)
        joint = self._joint_log_likelihood(X)
        log_norm = np.logaddexp.reduce(joint, axis=1, keepdims=True)
        return joint - log_norm

    def predict_proba(self, X) -> np.ndarray:
        """Posterior class probabilities."""
        return np.exp(self.predict_log_proba(X))

    def predict(self, X) -> np.ndarray:
        """Maximum-a-posteriori class per sample."""
        if self.classes_ is None:
            raise NotFittedError(type(self).__name__)
        X = np.asarray(X, dtype=np.float64)
        return self.classes_[np.argmax(self._joint_log_likelihood(X), axis=1)]
