"""Gradient-boosted regression trees (GBRT).

A generic least-squares boosting machine over
:class:`~repro.ml.tree.DecisionTreeRegressor` weak learners.  LambdaMART
(:mod:`repro.ml.lambdamart`) reuses the same tree ensemble mechanics but
replaces the residual target with lambda gradients, so the plain GBRT
here doubles as a readable reference implementation and as a regression
model in its own right.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..errors import ModelError, NotFittedError
from .tree import DecisionTreeRegressor

__all__ = ["GradientBoostedRegressor"]


class GradientBoostedRegressor:
    """Least-squares gradient boosting: F_m = F_{m-1} + lr * tree(residuals)."""

    def __init__(
        self,
        n_estimators: int = 100,
        learning_rate: float = 0.1,
        max_depth: int = 3,
        min_samples_leaf: int = 1,
        subsample: float = 1.0,
        random_state: Optional[int] = 0,
    ) -> None:
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be >= 1, got {n_estimators}")
        if not 0.0 < learning_rate <= 1.0:
            raise ModelError(f"learning_rate must be in (0, 1], got {learning_rate}")
        if not 0.0 < subsample <= 1.0:
            raise ModelError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.subsample = subsample
        self.random_state = random_state
        self.trees_: List[DecisionTreeRegressor] = []
        self.init_: float = 0.0

    def fit(self, X, y) -> "GradientBoostedRegressor":
        """Fit the ensemble by least-squares boosting on residuals."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or len(X) != len(y):
            raise ModelError("X must be 2-D and aligned with y")
        rng = np.random.default_rng(self.random_state)

        self.init_ = float(np.mean(y))
        predictions = np.full(len(y), self.init_)
        self.trees_ = []
        n = len(y)
        batch = max(1, int(round(self.subsample * n)))
        for _ in range(self.n_estimators):
            residuals = y - predictions
            if self.subsample < 1.0:
                chosen = rng.choice(n, size=batch, replace=False)
            else:
                chosen = np.arange(n)
            tree = DecisionTreeRegressor(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
            )
            tree.fit(X[chosen], residuals[chosen])
            self.trees_.append(tree)
            predictions += self.learning_rate * tree.predict(X)
        return self

    def predict(self, X) -> np.ndarray:
        """Ensemble prediction: init + lr * sum of tree outputs."""
        if not self.trees_:
            raise NotFittedError(type(self).__name__)
        X = np.asarray(X, dtype=np.float64)
        result = np.full(len(X), self.init_)
        for tree in self.trees_:
            result += self.learning_rate * tree.predict(X)
        return result

    def staged_predict(self, X):
        """Yield predictions after each boosting stage (for early-stopping
        diagnostics and tests of monotone training-error decrease)."""
        if not self.trees_:
            raise NotFittedError(type(self).__name__)
        X = np.asarray(X, dtype=np.float64)
        result = np.full(len(X), self.init_)
        for tree in self.trees_:
            result = result + self.learning_rate * tree.predict(X)
            yield result.copy()
