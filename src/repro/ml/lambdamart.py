"""LambdaMART learning-to-rank [Burges 2008] — the paper's LTR model.

LambdaMART combines MART (gradient-boosted regression trees) with
LambdaRank gradients: for every pair of documents (i, j) in the same
query where ``rel_i > rel_j``, a force

    lambda_ij = -sigma / (1 + exp(sigma * (s_i - s_j))) * |delta NDCG_ij|

pulls i up and pushes j down, scaled by how much swapping the two would
change the query's NDCG.  Each boosting round fits a regression tree to
the per-document lambda sums, then re-estimates each leaf with a Newton
step (sum of lambdas over sum of second derivatives).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ModelError, NotFittedError
from .metrics import ndcg_at_k
from .tree import DecisionTreeRegressor, TreeNode

__all__ = ["RankingDataset", "LambdaMART"]


@dataclass
class RankingDataset:
    """Learning-to-rank training data.

    Attributes
    ----------
    X:
        Feature matrix over all documents of all queries.
    relevance:
        Graded relevance per document (higher is better).
    query_ids:
        Query-group id per document; lambdas only form within a group.
    """

    X: np.ndarray
    relevance: np.ndarray
    query_ids: np.ndarray

    def __post_init__(self) -> None:
        self.X = np.asarray(self.X, dtype=np.float64)
        self.relevance = np.asarray(self.relevance, dtype=np.float64)
        self.query_ids = np.asarray(self.query_ids)
        if not (len(self.X) == len(self.relevance) == len(self.query_ids)):
            raise ModelError("X, relevance and query_ids must be aligned")

    def groups(self) -> List[np.ndarray]:
        """Document-index arrays, one per query group."""
        order: dict = {}
        for i, qid in enumerate(self.query_ids):
            order.setdefault(qid, []).append(i)
        return [np.asarray(idx, dtype=np.intp) for idx in order.values()]


def _ideal_dcg(relevance: np.ndarray, k: Optional[int]) -> float:
    ideal = np.sort(relevance)[::-1]
    if k is not None:
        ideal = ideal[:k]
    if len(ideal) == 0:
        return 0.0
    discounts = np.log2(np.arange(2, len(ideal) + 2))
    return float(np.sum((2.0**ideal - 1.0) / discounts))


class LambdaMART:
    """Gradient-boosted ranker optimising NDCG through lambda gradients."""

    def __init__(
        self,
        n_estimators: int = 150,
        learning_rate: float = 0.1,
        max_depth: int = 4,
        min_samples_leaf: int = 1,
        sigma: float = 1.0,
        ndcg_k: Optional[int] = None,
        random_state: Optional[int] = 0,
    ) -> None:
        if n_estimators < 1:
            raise ModelError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.sigma = sigma
        self.ndcg_k = ndcg_k
        self.random_state = random_state
        self.trees_: List[DecisionTreeRegressor] = []

    # ------------------------------------------------------------------
    def _lambdas_for_group(
        self, scores: np.ndarray, relevance: np.ndarray
    ) -> tuple:
        """Per-document lambda (gradient) and w (second derivative) sums.

        Fully vectorised over the n x n pair matrix: ``force[i, j]`` is
        the pull on i from the pair (i better than j), zero elsewhere.
        """
        n = len(scores)
        lambdas = np.zeros(n)
        hessians = np.zeros(n)
        ideal = _ideal_dcg(relevance, self.ndcg_k)
        if ideal <= 0 or n < 2:
            return lambdas, hessians

        # Rank positions under the current scores (0-indexed).
        order = np.argsort(-scores, kind="stable")
        rank_of = np.empty(n, dtype=np.intp)
        rank_of[order] = np.arange(n)
        discounts = 1.0 / np.log2(rank_of + 2.0)
        gains = (2.0**relevance - 1.0) / ideal

        better = relevance[:, None] > relevance[None, :]
        # |delta NDCG| of swapping the pair's positions.
        delta = np.abs(
            (gains[:, None] - gains[None, :])
            * (discounts[:, None] - discounts[None, :])
        )
        score_diff = np.clip(scores[:, None] - scores[None, :], -60, 60)
        rho = 1.0 / (1.0 + np.exp(self.sigma * score_diff))
        force = np.where(better, self.sigma * delta * rho, 0.0)
        hess = self.sigma * force * (1.0 - rho)

        lambdas = force.sum(axis=1) - force.sum(axis=0)
        hessians = hess.sum(axis=1) + hess.sum(axis=0)
        return lambdas, hessians

    def fit(self, data: RankingDataset) -> "LambdaMART":
        """Boost regression trees on lambda gradients over the groups."""
        X = data.X
        groups = data.groups()
        scores = np.zeros(len(X))
        self.trees_ = []

        for _ in range(self.n_estimators):
            lambdas = np.zeros(len(X))
            hessians = np.zeros(len(X))
            for idx in groups:
                g_lambda, g_hess = self._lambdas_for_group(
                    scores[idx], data.relevance[idx]
                )
                lambdas[idx] = g_lambda
                hessians[idx] = g_hess

            tree = DecisionTreeRegressor(
                max_depth=self.max_depth, min_samples_leaf=self.min_samples_leaf
            )
            tree.fit(X, lambdas)

            # Newton re-estimation: each leaf outputs
            # sum(lambda) / sum(hessian) over the samples it captured.
            leaves = tree.apply(X)
            leaf_sums: dict = {}
            for leaf, lam, hess in zip(leaves, lambdas, hessians):
                key = id(leaf)
                acc = leaf_sums.setdefault(key, [leaf, 0.0, 0.0])
                acc[1] += lam
                acc[2] += hess
            for leaf, lam_sum, hess_sum in leaf_sums.values():
                newton = lam_sum / hess_sum if hess_sum > 1e-12 else 0.0
                leaf.value = np.asarray([newton])

            self.trees_.append(tree)
            scores += self.learning_rate * tree.predict(X)
        return self

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        """Ranking scores; higher means the model ranks the item better."""
        if not self.trees_:
            raise NotFittedError(type(self).__name__)
        X = np.asarray(X, dtype=np.float64)
        scores = np.zeros(len(X))
        for tree in self.trees_:
            scores += self.learning_rate * tree.predict(X)
        return scores

    def rank(self, X) -> np.ndarray:
        """Indices of items, best first, under the model's scores."""
        return np.argsort(-self.predict(X), kind="stable")

    def ndcg(self, X, relevance, k: Optional[int] = None) -> float:
        """NDCG of the model's ranking of ``X`` against ``relevance``."""
        relevance = np.asarray(relevance, dtype=np.float64)
        order = self.rank(X)
        return ndcg_at_k(relevance[order], k=k or self.ndcg_k)
