"""Evaluation metrics used in the paper's Section VI.

Classification: precision / recall / F-measure (Figures 10, Tables VII
and VIII).  Ranking: normalized discounted cumulative gain (NDCG),
the measure behind Figure 11.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ModelError

__all__ = [
    "accuracy",
    "precision_recall_f1",
    "confusion_matrix",
    "dcg_at_k",
    "ndcg_at_k",
    "ndcg_of_ranking",
    "kendall_tau",
]


def _aligned(y_true, y_pred):
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if len(y_true) != len(y_pred):
        raise ModelError(
            f"y_true has {len(y_true)} items but y_pred has {len(y_pred)}"
        )
    if len(y_true) == 0:
        raise ModelError("cannot score empty predictions")
    return y_true, y_pred


def accuracy(y_true, y_pred) -> float:
    """Fraction of exactly matching predictions."""
    y_true, y_pred = _aligned(y_true, y_pred)
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, positive=True) -> Dict[str, int]:
    """Binary confusion counts: tp / fp / tn / fn for the positive label."""
    y_true, y_pred = _aligned(y_true, y_pred)
    true_pos = y_true == positive
    pred_pos = y_pred == positive
    return {
        "tp": int(np.sum(true_pos & pred_pos)),
        "fp": int(np.sum(~true_pos & pred_pos)),
        "tn": int(np.sum(~true_pos & ~pred_pos)),
        "fn": int(np.sum(true_pos & ~pred_pos)),
    }


def precision_recall_f1(y_true, y_pred, positive=True) -> Dict[str, float]:
    """Precision, recall and F-measure of the positive class.

    Degenerate denominators (no predicted / no actual positives) score 0,
    matching the convention of standard toolkits.
    """
    counts = confusion_matrix(y_true, y_pred, positive)
    tp, fp, fn = counts["tp"], counts["fp"], counts["fn"]
    precision = tp / (tp + fp) if tp + fp > 0 else 0.0
    recall = tp / (tp + fn) if tp + fn > 0 else 0.0
    f1 = (
        2.0 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return {"precision": precision, "recall": recall, "f1": f1}


def dcg_at_k(gains: Sequence[float], k: Optional[int] = None) -> float:
    """Discounted cumulative gain: sum of gain_i / log2(i + 1), 1-indexed."""
    gains = np.asarray(gains, dtype=np.float64)
    if k is not None:
        gains = gains[:k]
    if len(gains) == 0:
        return 0.0
    discounts = np.log2(np.arange(2, len(gains) + 2))
    return float(np.sum(gains / discounts))


def ndcg_at_k(gains_in_rank_order: Sequence[float], k: Optional[int] = None) -> float:
    """NDCG: DCG of the produced order divided by the ideal DCG.

    ``gains_in_rank_order[i]`` is the true relevance of the item the
    system placed at position ``i``.  Returns 1.0 for a perfect ranking
    and 1.0 (by convention) when all gains are zero.
    """
    gains = np.asarray(gains_in_rank_order, dtype=np.float64)
    ideal = np.sort(gains)[::-1]
    ideal_dcg = dcg_at_k(ideal, k)
    if ideal_dcg <= 0:
        return 1.0
    return dcg_at_k(gains, k) / ideal_dcg


def ndcg_of_ranking(
    predicted_order: Sequence[int],
    relevance: Sequence[float],
    k: Optional[int] = None,
) -> float:
    """NDCG of an explicit item ordering against per-item relevance.

    ``predicted_order`` lists item indices best-first; ``relevance[j]`` is
    item ``j``'s graded relevance.
    """
    relevance = np.asarray(relevance, dtype=np.float64)
    gains = [relevance[i] for i in predicted_order]
    remaining = [relevance[j] for j in range(len(relevance)) if j not in set(predicted_order)]
    # Items the ranker dropped count as zero-gain tail positions.
    gains.extend([0.0] * len(remaining))
    ideal = np.sort(relevance)[::-1]
    ideal_dcg = dcg_at_k(ideal, k)
    if ideal_dcg <= 0:
        return 1.0
    return dcg_at_k(gains, k) / ideal_dcg


def kendall_tau(order_a: Sequence[int], order_b: Sequence[int]) -> float:
    """Kendall rank correlation between two permutations of the same items.

    Used by tests and ablations to compare ranking engines; 1.0 means
    identical order, -1.0 fully reversed.
    """
    items = list(order_a)
    if sorted(items) != sorted(order_b):
        raise ModelError("orders must be permutations of the same items")
    position_b = {item: i for i, item in enumerate(order_b)}
    n = len(items)
    if n < 2:
        return 1.0
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            delta = position_b[items[i]] - position_b[items[j]]
            if delta < 0:
                concordant += 1
            elif delta > 0:
                discordant += 1
    total = n * (n - 1) / 2
    return (concordant - discordant) / total
