"""Train/test splitting and cross-validation helpers.

The paper trains on 32 datasets and tests on 10, and also reports that
"cross validation ... got similar results"; these utilities support both
protocols for the from-scratch models.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ModelError

__all__ = ["train_test_split", "KFold", "cross_val_score"]


def train_test_split(
    X,
    y,
    test_fraction: float = 0.25,
    random_state: Optional[int] = 0,
    stratify: bool = False,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Shuffle-split arrays into train and test parts.

    With ``stratify=True`` the class proportions of ``y`` are preserved
    in both parts (needed for the heavily imbalanced good/bad labels:
    2,520 good vs 30,892 bad in the paper).
    """
    X = np.asarray(X)
    y = np.asarray(y)
    if len(X) != len(y):
        raise ModelError("X and y must be aligned")
    if not 0.0 < test_fraction < 1.0:
        raise ModelError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = np.random.default_rng(random_state)

    if stratify:
        test_idx: List[int] = []
        train_idx: List[int] = []
        for cls in np.unique(y):
            members = np.flatnonzero(y == cls)
            members = members[rng.permutation(len(members))]
            n_test = max(1, int(round(test_fraction * len(members))))
            if n_test >= len(members):
                n_test = len(members) - 1
            test_idx.extend(members[:n_test])
            train_idx.extend(members[n_test:])
        train = np.asarray(sorted(train_idx))
        test = np.asarray(sorted(test_idx))
    else:
        permutation = rng.permutation(len(X))
        n_test = max(1, int(round(test_fraction * len(X))))
        test = permutation[:n_test]
        train = permutation[n_test:]
    return X[train], X[test], y[train], y[test]


class KFold:
    """K-fold cross-validation index generator."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state: Optional[int] = 0) -> None:
        if n_splits < 2:
            raise ModelError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, n_samples: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``(train_indices, test_indices)`` pairs."""
        if n_samples < self.n_splits:
            raise ModelError(
                f"cannot split {n_samples} samples into {self.n_splits} folds"
            )
        indices = np.arange(n_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.random_state)
            indices = rng.permutation(n_samples)
        folds = np.array_split(indices, self.n_splits)
        for i in range(self.n_splits):
            test = folds[i]
            train = np.concatenate([folds[j] for j in range(self.n_splits) if j != i])
            yield np.sort(train), np.sort(test)


def cross_val_score(
    model_factory: Callable[[], object],
    X,
    y,
    scorer: Callable[[Sequence, Sequence], float],
    n_splits: int = 5,
    random_state: Optional[int] = 0,
) -> List[float]:
    """Fit a fresh model per fold and score it on the held-out fold.

    ``model_factory`` builds an unfitted model exposing ``fit``/``predict``;
    ``scorer(y_true, y_pred)`` returns a float.
    """
    X = np.asarray(X)
    y = np.asarray(y)
    scores = []
    for train, test in KFold(n_splits, random_state=random_state).split(len(X)):
        model = model_factory()
        model.fit(X[train], y[train])
        predictions = model.predict(X[test])
        scores.append(float(scorer(y[test], predictions)))
    return scores
