"""Feature preprocessing: standardisation and categorical encoding.

The recognition feature vector mixes continuous statistics (cardinality,
ratios, correlation) with categorical codes (column types, chart type).
SVM and Bayes need standardized continuous inputs; the encoders here
turn the mixed vector into a pure numeric matrix deterministically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ModelError, NotFittedError

__all__ = ["StandardScaler", "OneHotEncoder", "polynomial_features"]


def polynomial_features(X, degree: int = 2) -> np.ndarray:
    """Degree-2 polynomial expansion: [x, x_i * x_j for i <= j].

    A cheap explicit feature map that lets a *linear* model (the Pegasos
    SVM) express pairwise interactions and squared terms — the standard
    trick when a kernel machine is too slow and the input is low-
    dimensional.  Only degree 2 is supported.
    """
    if degree != 2:
        raise ModelError(f"only degree=2 is supported, got {degree}")
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ModelError(f"X must be 2-D, got shape {X.shape}")
    n, d = X.shape
    blocks = [X]
    for i in range(d):
        blocks.append(X[:, i:] * X[:, i : i + 1])
    return np.hstack(blocks)


class StandardScaler:
    """Zero-mean unit-variance scaling, with constant columns left at 0."""

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.scale_: Optional[np.ndarray] = None

    def fit(self, X) -> "StandardScaler":
        """Learn per-feature means and scales."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ModelError(f"X must be 2-D, got shape {X.shape}")
        self.mean_ = X.mean(axis=0)
        std = X.std(axis=0)
        self.scale_ = np.where(std > 1e-12, std, 1.0)
        return self

    def transform(self, X) -> np.ndarray:
        """Apply the learned standardisation."""
        if self.mean_ is None:
            raise NotFittedError(type(self).__name__)
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        """Fit on ``X`` and return its standardised form."""
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        """Undo :meth:`transform` back to the original units."""
        if self.mean_ is None:
            raise NotFittedError(type(self).__name__)
        X = np.asarray(X, dtype=np.float64)
        return X * self.scale_ + self.mean_


class OneHotEncoder:
    """One-hot encoding of string/categorical feature columns.

    Unknown categories at transform time encode as the all-zero vector
    rather than raising, because test datasets may contain chart/type
    combinations absent from training.
    """

    def __init__(self) -> None:
        self.categories_: Optional[List[List[str]]] = None
        self._index: Optional[List[Dict[str, int]]] = None

    def fit(self, columns: Sequence[Sequence[str]]) -> "OneHotEncoder":
        """``columns`` is a list of per-feature value sequences."""
        self.categories_ = [sorted(set(map(str, col))) for col in columns]
        self._index = [
            {cat: i for i, cat in enumerate(cats)} for cats in self.categories_
        ]
        return self

    def transform(self, columns: Sequence[Sequence[str]]) -> np.ndarray:
        """One-hot encode the given per-feature value sequences."""
        if self.categories_ is None:
            raise NotFittedError(type(self).__name__)
        if len(columns) != len(self.categories_):
            raise ModelError(
                f"expected {len(self.categories_)} categorical columns, "
                f"got {len(columns)}"
            )
        blocks = []
        for values, cats, index in zip(columns, self.categories_, self._index):
            block = np.zeros((len(values), len(cats)))
            for row, value in enumerate(map(str, values)):
                position = index.get(value)
                if position is not None:
                    block[row, position] = 1.0
            blocks.append(block)
        return np.hstack(blocks) if blocks else np.zeros((0, 0))

    def fit_transform(self, columns: Sequence[Sequence[str]]) -> np.ndarray:
        """Fit the categories and encode in one call."""
        return self.fit(columns).transform(columns)
