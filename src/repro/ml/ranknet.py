"""RankNet [Burges et al. 2005] — pairwise neural learning-to-rank.

The paper's learning-to-rank citation [10] is RankNet: a scoring
network f(x) trained so that for each within-query pair with
``rel_i > rel_j`` the probability

    P(i > j) = sigmoid(f(x_i) - f(x_j))

matches the observed preference, by minimising pairwise cross-entropy.
This implementation is a one-hidden-layer tanh MLP with manual
backpropagation over mini-batches of preference pairs — small, exact,
and dependency-free.  LambdaMART (:mod:`repro.ml.lambdamart`) remains
the primary ranker; RankNet exists for the model-family ablation.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import ModelError, NotFittedError
from .lambdamart import RankingDataset

__all__ = ["RankNet"]


class RankNet:
    """One-hidden-layer RankNet with pairwise cross-entropy loss."""

    def __init__(
        self,
        hidden_units: int = 16,
        learning_rate: float = 0.02,
        epochs: int = 40,
        batch_pairs: int = 128,
        l2: float = 1e-4,
        random_state: Optional[int] = 0,
    ) -> None:
        if hidden_units < 1:
            raise ModelError(f"hidden_units must be >= 1, got {hidden_units}")
        if epochs < 1:
            raise ModelError(f"epochs must be >= 1, got {epochs}")
        self.hidden_units = hidden_units
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_pairs = batch_pairs
        self.l2 = l2
        self.random_state = random_state
        self._fitted = False

    # ------------------------------------------------------------------
    def _forward(self, X: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Returns (hidden activations, scalar scores)."""
        hidden = np.tanh(X @ self.W1_ + self.b1_)
        scores = hidden @ self.W2_ + self.b2_
        return hidden, scores.ravel()

    @staticmethod
    def _pairs_of(relevance: np.ndarray, indices: np.ndarray) -> List[Tuple[int, int]]:
        pairs = []
        for a_pos in range(len(indices)):
            for b_pos in range(len(indices)):
                i, j = indices[a_pos], indices[b_pos]
                if relevance[i] > relevance[j]:
                    pairs.append((i, j))
        return pairs

    def fit(self, data: RankingDataset) -> "RankNet":
        """Train on all within-group preference pairs by mini-batch SGD."""
        X = np.asarray(data.X, dtype=np.float64)
        n_features = X.shape[1]
        rng = np.random.default_rng(self.random_state)

        # Standardise internally (the network is scale-sensitive).
        self._mean = X.mean(axis=0)
        std = X.std(axis=0)
        self._scale = np.where(std > 1e-12, std, 1.0)
        Z = (X - self._mean) / self._scale

        limit = 1.0 / np.sqrt(n_features)
        self.W1_ = rng.uniform(-limit, limit, size=(n_features, self.hidden_units))
        self.b1_ = np.zeros(self.hidden_units)
        self.W2_ = rng.uniform(-0.5, 0.5, size=(self.hidden_units, 1))
        self.b2_ = 0.0

        all_pairs: List[Tuple[int, int]] = []
        for group in data.groups():
            all_pairs.extend(self._pairs_of(data.relevance, group))
        if not all_pairs:
            self._fitted = True
            return self
        pairs = np.asarray(all_pairs, dtype=np.intp)

        for _ in range(self.epochs):
            order = rng.permutation(len(pairs))
            for start in range(0, len(pairs), self.batch_pairs):
                batch = pairs[order[start : start + self.batch_pairs]]
                winners, losers = batch[:, 0], batch[:, 1]

                hidden_w, score_w = self._forward(Z[winners])
                hidden_l, score_l = self._forward(Z[losers])
                # d(loss)/d(score_diff) for -log sigmoid(diff).
                diff = np.clip(score_w - score_l, -60, 60)
                gradient = -1.0 / (1.0 + np.exp(diff))  # shape (batch,)

                # Backprop through both branches (winner +g, loser -g).
                self._backward(Z[winners], hidden_w, gradient)
                self._backward(Z[losers], hidden_l, -gradient)
        self._fitted = True
        return self

    def _backward(self, Z: np.ndarray, hidden: np.ndarray, gradient: np.ndarray) -> None:
        """One SGD step for one branch of the pair loss."""
        batch = len(Z)
        if batch == 0:
            return
        g = gradient[:, None]  # (batch, 1)
        grad_W2 = hidden.T @ g / batch + self.l2 * self.W2_
        grad_b2 = float(g.mean())
        # dL/dhidden = g * W2^T ; through tanh: * (1 - hidden^2).
        d_hidden = (g @ self.W2_.T) * (1.0 - hidden**2)
        grad_W1 = Z.T @ d_hidden / batch + self.l2 * self.W1_
        grad_b1 = d_hidden.mean(axis=0)

        self.W2_ -= self.learning_rate * grad_W2
        self.b2_ -= self.learning_rate * grad_b2
        self.W1_ -= self.learning_rate * grad_W1
        self.b1_ -= self.learning_rate * grad_b1

    # ------------------------------------------------------------------
    def predict(self, X) -> np.ndarray:
        """Ranking scores; higher means ranked better."""
        if not self._fitted:
            raise NotFittedError(type(self).__name__)
        X = np.asarray(X, dtype=np.float64)
        Z = (X - self._mean) / self._scale
        return self._forward(Z)[1]

    def rank(self, X) -> np.ndarray:
        """Item indices best-first."""
        return np.argsort(-self.predict(X), kind="stable")
