"""Linear soft-margin SVM trained with Pegasos (the paper's SVM baseline).

Pegasos [Shalev-Shwartz et al. 2007] is projected stochastic sub-gradient
descent on the primal hinge-loss objective::

    min_w  (lambda/2) ||w||^2 + (1/n) sum max(0, 1 - y_i <w, x_i>)

It needs no QP solver, converges in O(1/(lambda * epsilon)) iterations,
and on standardized features matches library linear SVMs closely — which
is all the recognition benchmark requires.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ModelError, NotFittedError

__all__ = ["LinearSVM"]


class LinearSVM:
    """Binary linear SVM with hinge loss.

    Class labels may be arbitrary; internally they map to {-1, +1}.
    ``decision_function`` exposes the signed margin so the classifier can
    be thresholded or calibrated downstream.
    """

    def __init__(
        self,
        lam: float = 1e-3,
        epochs: int = 30,
        random_state: Optional[int] = 0,
        fit_intercept: bool = True,
    ) -> None:
        if lam <= 0:
            raise ModelError(f"lam must be > 0, got {lam}")
        if epochs < 1:
            raise ModelError(f"epochs must be >= 1, got {epochs}")
        self.lam = lam
        self.epochs = epochs
        self.random_state = random_state
        self.fit_intercept = fit_intercept
        self.w_: Optional[np.ndarray] = None
        self.b_: float = 0.0

    def fit(self, X, y, sample_weight=None) -> "LinearSVM":
        """Run Pegasos SGD on the (weighted) hinge-loss objective."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or len(X) != len(y):
            raise ModelError("X must be 2-D and aligned with y")
        self.classes_ = np.unique(y)
        if len(self.classes_) != 2:
            raise ModelError(
                f"LinearSVM is binary; got {len(self.classes_)} classes"
            )
        signs = np.where(y == self.classes_[1], 1.0, -1.0)
        weights = (
            np.ones(len(X))
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        # Weighted sampling keeps the expected sub-gradient equal to the
        # weighted objective's gradient.
        probabilities = weights / weights.sum()

        rng = np.random.default_rng(self.random_state)
        n, d = X.shape
        w = np.zeros(d)
        b = 0.0
        t = 0
        total_steps = self.epochs * n
        order = rng.choice(n, size=total_steps, p=probabilities)
        for i in order:
            t += 1
            eta = 1.0 / (self.lam * t)
            margin = signs[i] * (X[i] @ w + b)
            w *= 1.0 - eta * self.lam
            if margin < 1.0:
                w += eta * signs[i] * X[i]
                if self.fit_intercept:
                    b += eta * signs[i]
            # Projection onto the ball of radius 1/sqrt(lambda).
            norm = np.linalg.norm(w)
            radius = 1.0 / np.sqrt(self.lam)
            if norm > radius:
                w *= radius / norm
        self.w_, self.b_ = w, b
        return self

    def decision_function(self, X) -> np.ndarray:
        """Signed distance to the separating hyperplane."""
        if self.w_ is None:
            raise NotFittedError(type(self).__name__)
        X = np.asarray(X, dtype=np.float64)
        return X @ self.w_ + self.b_

    def predict(self, X) -> np.ndarray:
        """Predicted class labels (ties break toward the negative class)."""
        scores = self.decision_function(X)
        return np.where(scores > 0, self.classes_[1], self.classes_[0])
