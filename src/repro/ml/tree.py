"""CART decision trees, implemented from scratch on numpy.

The paper uses a decision tree [Quinlan 1986] as the winning binary
classifier for visualization recognition, and LambdaMART's weak learners
are regression trees — so both a classifier and a regressor live here.

Split search is the standard sort-and-scan: for each feature, candidate
thresholds are midpoints between consecutive distinct sorted values, and
prefix sums over the sorted order give every split's impurity in O(n)
after the O(n log n) sort.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..errors import ModelError, NotFittedError

__all__ = ["TreeNode", "DecisionTreeClassifier", "DecisionTreeRegressor"]


@dataclass
class TreeNode:
    """A node of a fitted tree.

    Internal nodes route ``x[feature] <= threshold`` left, else right.
    Leaves carry ``value``: class probabilities for classification, the
    mean target for regression.
    """

    feature: int = -1
    threshold: float = 0.0
    left: Optional["TreeNode"] = None
    right: Optional["TreeNode"] = None
    value: Optional[np.ndarray] = None
    n_samples: int = 0
    impurity: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def depth(self) -> int:
        """Height of the subtree rooted here (a single leaf has depth 0)."""
        if self.is_leaf:
            return 0
        return 1 + max(self.left.depth(), self.right.depth())

    def count_leaves(self) -> int:
        """Number of leaves in the subtree rooted here."""
        if self.is_leaf:
            return 1
        return self.left.count_leaves() + self.right.count_leaves()


def _validate_xy(X, y) -> Tuple[np.ndarray, np.ndarray]:
    X = np.asarray(X, dtype=np.float64)
    y = np.asarray(y)
    if X.ndim != 2:
        raise ModelError(f"X must be 2-D, got shape {X.shape}")
    if len(X) != len(y):
        raise ModelError(f"X has {len(X)} rows but y has {len(y)}")
    if len(X) == 0:
        raise ModelError("cannot fit on an empty dataset")
    return X, y


class _BaseTree:
    """Shared growth machinery for classifier and regressor trees."""

    def __init__(
        self,
        max_depth: int = 12,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        max_features: Optional[int] = None,
        random_state: Optional[int] = None,
    ) -> None:
        if max_depth < 1:
            raise ModelError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise ModelError(f"min_samples_leaf must be >= 1, got {min_samples_leaf}")
        self.max_depth = max_depth
        self.min_samples_split = max(2, min_samples_split)
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.random_state = random_state
        self.root_: Optional[TreeNode] = None
        self.n_features_: int = 0

    # -- subclass hooks -------------------------------------------------
    def _leaf_value(self, target: np.ndarray, weights: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _node_impurity(self, target: np.ndarray, weights: np.ndarray) -> float:
        raise NotImplementedError

    def _best_split_for_feature(
        self, order: np.ndarray, values: np.ndarray, target: np.ndarray, weights: np.ndarray
    ) -> Tuple[float, float]:
        """Return (impurity decrease proxy, threshold) for one feature.

        Larger first element is better; ``-inf`` means no valid split.
        """
        raise NotImplementedError

    # -- growth ---------------------------------------------------------
    def _fit_tree(self, X: np.ndarray, target: np.ndarray, weights: np.ndarray) -> None:
        self.n_features_ = X.shape[1]
        self._rng = np.random.default_rng(self.random_state)
        indices = np.arange(len(X))
        self.root_ = self._grow(X, target, weights, indices, depth=0)

    def _grow(
        self,
        X: np.ndarray,
        target: np.ndarray,
        weights: np.ndarray,
        indices: np.ndarray,
        depth: int,
    ) -> TreeNode:
        node_target = target[indices]
        node_weights = weights[indices]
        impurity = self._node_impurity(node_target, node_weights)
        node = TreeNode(
            value=self._leaf_value(node_target, node_weights),
            n_samples=len(indices),
            impurity=impurity,
        )
        if (
            depth >= self.max_depth
            or len(indices) < self.min_samples_split
            or impurity <= 1e-12
        ):
            return node

        feature_ids = np.arange(self.n_features_)
        if self.max_features is not None and self.max_features < self.n_features_:
            feature_ids = self._rng.choice(
                self.n_features_, size=self.max_features, replace=False
            )

        best_gain, best_feature, best_threshold = -np.inf, -1, 0.0
        for feature in feature_ids:
            values = X[indices, feature]
            order = np.argsort(values, kind="stable")
            gain, threshold = self._best_split_for_feature(
                order, values, node_target, node_weights
            )
            if gain > best_gain:
                best_gain, best_feature, best_threshold = gain, int(feature), threshold

        if best_feature < 0 or not np.isfinite(best_gain):
            return node

        mask = X[indices, best_feature] <= best_threshold
        left_idx, right_idx = indices[mask], indices[~mask]
        if len(left_idx) < self.min_samples_leaf or len(right_idx) < self.min_samples_leaf:
            return node

        node.feature = best_feature
        node.threshold = best_threshold
        node.left = self._grow(X, target, weights, left_idx, depth + 1)
        node.right = self._grow(X, target, weights, right_idx, depth + 1)
        return node

    def _leaf_for(self, x: np.ndarray) -> TreeNode:
        node = self.root_
        while not node.is_leaf:
            node = node.left if x[node.feature] <= node.threshold else node.right
        return node

    def _check_fitted(self) -> None:
        if self.root_ is None:
            raise NotFittedError(type(self).__name__)

    @property
    def depth_(self) -> int:
        self._check_fitted()
        return self.root_.depth()

    @property
    def n_leaves_(self) -> int:
        self._check_fitted()
        return self.root_.count_leaves()


class DecisionTreeClassifier(_BaseTree):
    """CART classifier with Gini impurity.

    Supports arbitrary hashable class labels, per-sample weights, and
    probability output.  This is the paper's recognition model (DT).
    """

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        """Grow the tree on (optionally weighted) labelled samples."""
        X, y = _validate_xy(X, y)
        self.classes_, encoded = np.unique(np.asarray(y), return_inverse=True)
        self._n_classes = len(self.classes_)
        weights = (
            np.ones(len(X))
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        self._fit_tree(X, encoded.astype(np.intp), weights)
        return self

    def _leaf_value(self, target: np.ndarray, weights: np.ndarray) -> np.ndarray:
        counts = np.bincount(target, weights=weights, minlength=self._n_classes)
        total = counts.sum()
        return counts / total if total > 0 else np.full(self._n_classes, 1.0 / self._n_classes)

    def _node_impurity(self, target: np.ndarray, weights: np.ndarray) -> float:
        counts = np.bincount(target, weights=weights, minlength=self._n_classes)
        total = counts.sum()
        if total <= 0:
            return 0.0
        p = counts / total
        return float(1.0 - (p * p).sum())

    def _best_split_for_feature(self, order, values, target, weights):
        sorted_vals = values[order]
        sorted_target = target[order]
        sorted_weights = weights[order]
        n = len(order)
        if n < 2 * self.min_samples_leaf:
            return -np.inf, 0.0

        # Weighted prefix class counts: cum[i, c] = weight of class c in
        # the first i+1 sorted samples.
        onehot = np.zeros((n, self._n_classes))
        onehot[np.arange(n), sorted_target] = sorted_weights
        cum = np.cumsum(onehot, axis=0)
        total = cum[-1]
        total_weight = total.sum()

        left = cum[:-1]
        right = total[None, :] - left
        left_weight = left.sum(axis=1)
        right_weight = total_weight - left_weight

        with np.errstate(invalid="ignore", divide="ignore"):
            gini_left = 1.0 - ((left / left_weight[:, None]) ** 2).sum(axis=1)
            gini_right = 1.0 - ((right / right_weight[:, None]) ** 2).sum(axis=1)
        weighted = (
            left_weight * np.nan_to_num(gini_left)
            + right_weight * np.nan_to_num(gini_right)
        ) / max(total_weight, 1e-12)

        positions = np.arange(1, n)
        valid = (
            (sorted_vals[1:] > sorted_vals[:-1] + 1e-12)
            & (positions >= self.min_samples_leaf)
            & (positions <= n - self.min_samples_leaf)
        )
        if not valid.any():
            return -np.inf, 0.0
        scores = np.where(valid, -weighted, -np.inf)
        best = int(np.argmax(scores))
        threshold = (sorted_vals[best] + sorted_vals[best + 1]) / 2.0
        return float(scores[best]), float(threshold)

    def predict_proba(self, X) -> np.ndarray:
        """Class-probability matrix of shape ``(n_samples, n_classes)``."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        return np.vstack([self._leaf_for(row).value for row in X])

    def predict(self, X) -> np.ndarray:
        """Most probable class per sample."""
        probabilities = self.predict_proba(X)
        return self.classes_[np.argmax(probabilities, axis=1)]


class DecisionTreeRegressor(_BaseTree):
    """CART regressor with MSE criterion (the LambdaMART weak learner)."""

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeRegressor":
        """Grow the tree minimising (weighted) squared error."""
        X, y = _validate_xy(X, y)
        target = np.asarray(y, dtype=np.float64)
        weights = (
            np.ones(len(X))
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        self._fit_tree(X, target, weights)
        return self

    def _leaf_value(self, target: np.ndarray, weights: np.ndarray) -> np.ndarray:
        total = weights.sum()
        mean = float((target * weights).sum() / total) if total > 0 else 0.0
        return np.asarray([mean])

    def _node_impurity(self, target: np.ndarray, weights: np.ndarray) -> float:
        total = weights.sum()
        if total <= 0:
            return 0.0
        mean = (target * weights).sum() / total
        return float((weights * (target - mean) ** 2).sum() / total)

    def _best_split_for_feature(self, order, values, target, weights):
        sorted_vals = values[order]
        sorted_target = target[order]
        sorted_weights = weights[order]
        n = len(order)
        if n < 2 * self.min_samples_leaf:
            return -np.inf, 0.0

        wsum = np.cumsum(sorted_weights)[:-1]
        wy = np.cumsum(sorted_weights * sorted_target)[:-1]
        total_w = sorted_weights.sum()
        total_wy = (sorted_weights * sorted_target).sum()
        right_w = total_w - wsum
        right_wy = total_wy - wy

        # Maximising between-group variance == minimising weighted MSE.
        with np.errstate(invalid="ignore", divide="ignore"):
            score = np.where(
                (wsum > 0) & (right_w > 0),
                wy**2 / np.maximum(wsum, 1e-12)
                + right_wy**2 / np.maximum(right_w, 1e-12),
                -np.inf,
            )

        positions = np.arange(1, n)
        valid = (
            (sorted_vals[1:] > sorted_vals[:-1] + 1e-12)
            & (positions >= self.min_samples_leaf)
            & (positions <= n - self.min_samples_leaf)
        )
        score = np.where(valid, score, -np.inf)
        if not np.isfinite(score).any():
            return -np.inf, 0.0
        best = int(np.argmax(score))
        threshold = (sorted_vals[best] + sorted_vals[best + 1]) / 2.0
        return float(score[best]), float(threshold)

    def predict(self, X) -> np.ndarray:
        """Predicted regression value per sample."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        return np.asarray([self._leaf_for(row).value[0] for row in X])

    def apply(self, X) -> List[TreeNode]:
        """The leaf node each sample lands in (used by LambdaMART's
        leaf-value re-estimation)."""
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        return [self._leaf_for(row) for row in X]
