"""Observability layer: tracing, metrics, and profiling substrate.

A dependency-free package the rest of the system instruments itself
with.  Three pillars:

* **tracing** (:mod:`repro.obs.trace`) — :class:`Tracer` produces
  nested :class:`Span` records (wall-clock, counters, attributes),
  exportable as nested JSON or the Chrome ``chrome://tracing``
  trace-event format;
* **metrics** (:mod:`repro.obs.metrics`) — :class:`MetricsRegistry`
  holds counters, gauges, and fixed-bucket histograms (p50/p90/p99
  summaries) with Prometheus-text and JSON exporters;
* **kernel accounting** (:mod:`repro.obs.kernels`) — the process-global
  :data:`KERNEL_STATS` ledger the columnar transform/aggregation
  kernels report calls / rows / buckets / seconds into, so traces and
  metrics can split kernel time from the rest of the enumerate phase;
* **decision events** (:mod:`repro.obs.events`) — :class:`EventLog`
  appends schema-versioned JSONL records of *what the pipeline decided*
  (requests, phases, per-rule pruning, per-chart scores, final ranks,
  cache activity), with sampling, rotation, and a reader/aggregator
  behind ``repro obs report``;
* **provenance** (:mod:`repro.obs.provenance`) —
  :class:`ChartProvenance` records explaining why each emitted chart
  landed at its rank (factors, S(v), LTR score, hybrid blend,
  recognizer verdict, dominance edges, sibling pruning);
* **drift** (:mod:`repro.obs.drift`) — golden top-k snapshots plus a
  diff classifier (identical / score_shifted / reordered / churned)
  behind ``repro obs snapshot`` / ``repro obs diff``;
* **request context** (:mod:`repro.obs.context`) — contextvars-based
  request scopes minting the ``request_id`` stamped into every span,
  event, provenance record, and metric exemplar, and the timeline
  joiner behind ``repro obs timeline``;
* **profiling** (:mod:`repro.obs.profiler`) —
  :class:`SamplingProfiler`, a low-overhead wall-clock sampler
  (``setitimer`` + ``sys._current_frames``) exporting
  flamegraph-collapsed text and speedscope JSON, span-attributed via
  the tracer's open-span stacks;
* **health** (:mod:`repro.obs.health`) — :class:`SLOMonitor` rolling
  multi-window burn-rate objectives over selection latency / errors /
  cache hits, plus :class:`RuntimeSampler` feeding process gauges
  (RSS, GC, threads, queue depths) into a registry;
* **instrumentation** — the selection pipeline
  (:func:`repro.core.selection.select_top_k`), the enumeration rules
  (per-rule pruning counters), the progressive method, and the serving
  engine (cache level counters, per-worker task latency) all accept an
  optional tracer/registry/event log; passing ``None`` keeps the
  uninstrumented fast path (overhead proven < 5% by
  ``benchmarks/bench_overhead.py``).

This package imports nothing from the rest of :mod:`repro`, so it can
be loaded from any layer without cycles.
"""

from .context import (
    RequestContext,
    build_timeline,
    current_context,
    current_request_id,
    format_timeline,
    new_request_id,
    request_scope,
    timeline_request_ids,
)
from .drift import (
    DRIFT_KINDS,
    SNAPSHOT_SCHEMA_VERSION,
    build_snapshot,
    classify_drift,
    diff_snapshots,
    entry_from_result,
    format_drift_report,
    kendall_tau,
    load_snapshot,
    node_id,
    save_snapshot,
    top_k_overlap,
)
from .events import (
    EVENT_KINDS,
    EVENT_LOG_SCHEMA_VERSION,
    EventLog,
    aggregate_events,
    format_event_report,
    read_event_log,
)
from .health import (
    SLO,
    RuntimeSampler,
    SLOMonitor,
    SLOStatus,
    read_rss_bytes,
)
from .kernels import KERNEL_SECONDS_BUCKETS, KERNEL_STATS, KernelStats
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    parse_exemplars,
    parse_prometheus_text,
)
from .profiler import SamplingProfiler, active_profiler
from .provenance import ChartProvenance, render_provenance
from .trace import Span, Tracer, maybe_span

__all__ = [
    "ChartProvenance",
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "DRIFT_KINDS",
    "EVENT_KINDS",
    "EVENT_LOG_SCHEMA_VERSION",
    "EventLog",
    "Gauge",
    "Histogram",
    "KERNEL_SECONDS_BUCKETS",
    "KERNEL_STATS",
    "KernelStats",
    "MetricsRegistry",
    "RequestContext",
    "RuntimeSampler",
    "SLO",
    "SLOMonitor",
    "SLOStatus",
    "SNAPSHOT_SCHEMA_VERSION",
    "SamplingProfiler",
    "Span",
    "Tracer",
    "active_profiler",
    "aggregate_events",
    "build_snapshot",
    "build_timeline",
    "classify_drift",
    "current_context",
    "current_request_id",
    "diff_snapshots",
    "entry_from_result",
    "format_drift_report",
    "format_event_report",
    "format_timeline",
    "global_registry",
    "kendall_tau",
    "load_snapshot",
    "maybe_span",
    "new_request_id",
    "node_id",
    "parse_exemplars",
    "parse_prometheus_text",
    "read_event_log",
    "read_rss_bytes",
    "render_provenance",
    "request_scope",
    "save_snapshot",
    "timeline_request_ids",
    "top_k_overlap",
]
