"""Observability layer: tracing, metrics, and profiling substrate.

A dependency-free package the rest of the system instruments itself
with.  Three pillars:

* **tracing** (:mod:`repro.obs.trace`) — :class:`Tracer` produces
  nested :class:`Span` records (wall-clock, counters, attributes),
  exportable as nested JSON or the Chrome ``chrome://tracing``
  trace-event format;
* **metrics** (:mod:`repro.obs.metrics`) — :class:`MetricsRegistry`
  holds counters, gauges, and fixed-bucket histograms (p50/p90/p99
  summaries) with Prometheus-text and JSON exporters;
* **kernel accounting** (:mod:`repro.obs.kernels`) — the process-global
  :data:`KERNEL_STATS` ledger the columnar transform/aggregation
  kernels report calls / rows / buckets / seconds into, so traces and
  metrics can split kernel time from the rest of the enumerate phase;
* **instrumentation** — the selection pipeline
  (:func:`repro.core.selection.select_top_k`), the enumeration rules
  (per-rule pruning counters), the progressive method, and the serving
  engine (cache level counters, per-worker task latency) all accept an
  optional tracer/registry; passing ``None`` keeps the uninstrumented
  fast path (overhead proven < 5% by ``benchmarks/bench_overhead.py``).

This package imports nothing from the rest of :mod:`repro`, so it can
be loaded from any layer without cycles.
"""

from .kernels import KERNEL_SECONDS_BUCKETS, KERNEL_STATS, KernelStats
from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    global_registry,
    parse_prometheus_text,
)
from .trace import Span, Tracer, maybe_span

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "KERNEL_SECONDS_BUCKETS",
    "KERNEL_STATS",
    "KernelStats",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "global_registry",
    "maybe_span",
    "parse_prometheus_text",
]
