"""Request-correlated telemetry: one id across spans, events, metrics.

The obs pillars each record *their* view of a run — spans know where
time went, events know what was decided, provenance knows why a chart
ranked, metrics know the fleet aggregates.  What none of them could do
before this module is answer "show me everything about *this* request":
the streams had no shared key.

A :class:`RequestContext` fixes that.  It is a contextvars-carried
envelope minted once per logical request (a ``select_top_k`` call, one
table of a batch, one incremental epoch, one CLI invocation) whose
``request_id`` every instrument stamps into its records:

* spans — :meth:`repro.obs.trace.Tracer.span` attaches a
  ``request_id`` attribute to every span opened under an active scope;
* events — :class:`repro.obs.events.EventLog` (schema v4) writes the
  id into each record's envelope;
* provenance — :class:`repro.obs.provenance.ChartProvenance` carries
  the id of the run that ranked the chart;
* metrics — counters and histograms capture **exemplars**: the last
  observation annotated with its request id, exported on the
  OpenMetrics ``# {request_id="..."} value ts`` suffix.

Scopes nest and propagate: :func:`request_scope` reuses an enclosing
scope by default (a batch worker's table-level id covers the ingest,
selection and cache activity inside it) and the plain-string
``request_id`` crosses process boundaries with the task arguments —
the batch driver mints ids in the parent, ships them to pool workers,
and the worker re-enters the scope before running the engine, so
worker-side records and parent-side records of one table agree.

The reader half, :func:`build_timeline`, joins the four streams back
into one time-ordered per-request narrative — the body of
``repro obs timeline``.

Pure stdlib; imports nothing from the rest of :mod:`repro` (the
timeline takes already-parsed records, so there is no cycle with the
modules that import this one).
"""

from __future__ import annotations

import contextvars
import itertools
import os
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

__all__ = [
    "RequestContext",
    "new_request_id",
    "current_context",
    "current_request_id",
    "request_scope",
    "build_timeline",
    "format_timeline",
    "timeline_request_ids",
]


@dataclass(frozen=True)
class RequestContext:
    """One logical request's identity, carried by a context variable.

    ``request_id`` is a plain string so the context survives pickling
    by value: cross-process callers ship the id, not the object, and
    re-enter :func:`request_scope` on the far side.  ``parent_id``
    links a nested scope (one table of a batch) to its enclosing one
    (the batch itself) when the nesting was made explicit with
    ``fresh=True``.
    """

    request_id: str
    parent_id: Optional[str] = None
    attrs: Mapping[str, Any] = field(default_factory=dict)


_REQUEST: contextvars.ContextVar[Optional[RequestContext]] = (
    contextvars.ContextVar("repro_request_context", default=None)
)

#: Per-process session prefix: ids mint as ``<session>-<pid>-<counter>``
#: so ids from a forked pool worker (same session, different pid) can
#: never collide with the parent's.
_SESSION = uuid.uuid4().hex[:8]
_COUNTER = itertools.count(1)


def new_request_id() -> str:
    """Mint a fresh process-unique request id (cheap, no RNG state)."""
    return f"{_SESSION}-{os.getpid():x}-{next(_COUNTER):06x}"


def current_context() -> Optional[RequestContext]:
    """The active :class:`RequestContext`, or ``None`` outside a scope."""
    return _REQUEST.get()


def current_request_id() -> Optional[str]:
    """The active request id, or ``None`` outside a scope."""
    context = _REQUEST.get()
    return None if context is None else context.request_id


@contextmanager
def request_scope(
    request_id: Optional[str] = None,
    fresh: bool = False,
    **attrs: Any,
) -> Iterator[RequestContext]:
    """Enter a request scope for the duration of the ``with`` block.

    * ``request_id`` given — enter a scope with exactly that id (the
      cross-process re-entry path: pool workers pass the id the parent
      minted).
    * no id, an enclosing scope active, ``fresh=False`` (default) —
      **reuse** the enclosing scope, so instrumented layers can all
      guard themselves with ``request_scope()`` without fragmenting one
      request into many ids.
    * no id otherwise — mint a new one (``fresh=True`` forces this and
      records the enclosing id as ``parent_id``; an incremental session
      uses it to give each epoch its own id).
    """
    enclosing = _REQUEST.get()
    if request_id is None and enclosing is not None and not fresh:
        yield enclosing
        return
    context = RequestContext(
        request_id=request_id or new_request_id(),
        parent_id=None if enclosing is None else enclosing.request_id,
        attrs=dict(attrs),
    )
    token = _REQUEST.set(context)
    try:
        yield context
    finally:
        _REQUEST.reset(token)


# ----------------------------------------------------------------------
# Timeline reader: join events + spans + provenance + exemplars
# ----------------------------------------------------------------------
def _flatten_trace(trace: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Per-span flat records from either trace export form.

    Accepts the nested :meth:`~repro.obs.trace.Tracer.to_dict` form
    (``{"epoch_unix", "spans": [...]}``) or the Chrome trace-event form
    (``{"traceEvents": [...], "epochUnix": ...}``); span start offsets
    rebase onto the tracer's unix epoch so they sort against event
    timestamps.
    """
    records: List[Dict[str, Any]] = []
    if "traceEvents" in trace:
        epoch = float(trace.get("epochUnix", 0.0))
        for event in trace["traceEvents"]:
            if event.get("ph") != "X":
                continue
            args = event.get("args", {})
            records.append(
                {
                    "ts": epoch + event["ts"] / 1e6,
                    "name": event["name"],
                    "duration": event.get("dur", 0.0) / 1e6,
                    "depth": 0,
                    "request_id": args.get("request_id"),
                    "attributes": dict(args),
                }
            )
        return records

    epoch = float(trace.get("epoch_unix", 0.0))

    def walk(span: Mapping[str, Any], depth: int) -> None:
        attributes = dict(span.get("attributes", {}))
        records.append(
            {
                "ts": epoch + float(span.get("start", 0.0)),
                "name": span.get("name", "?"),
                "duration": float(span.get("duration", 0.0)),
                "depth": depth,
                "request_id": attributes.get("request_id"),
                "attributes": attributes,
            }
        )
        for child in span.get("children", ()):
            walk(child, depth + 1)

    for root in trace.get("spans", ()):
        walk(root, 0)
    return records


def _event_ts(event: Mapping[str, Any]) -> float:
    """The wall-clock instant an event describes: merged worker events
    keep their original worker-side timestamp (``worker_ts``), which
    orders them where they happened rather than where they were merged."""
    return float(event.get("worker_ts", event.get("ts", 0.0)))


def build_timeline(
    events: Optional[Sequence[Mapping[str, Any]]] = None,
    trace: Optional[Mapping[str, Any]] = None,
    exemplars: Optional[Sequence[Mapping[str, Any]]] = None,
    request_id: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Join event / span / provenance / exemplar streams into one
    time-ordered list of timeline records.

    ``events`` are decision-event dicts (``read_event_log`` output or an
    :class:`~repro.obs.events.EventLog` tail) — ``score`` events, which
    carry the per-chart provenance facts, surface as the ``provenance``
    stream; ``trace`` is a trace export dict; ``exemplars`` come from
    :func:`repro.obs.metrics.parse_exemplars`.  ``request_id`` filters
    every stream to one request; ``None`` keeps everything.

    Each record has ``ts`` (unix seconds), ``stream`` (``event`` /
    ``span`` / ``provenance`` / ``exemplar``), ``request_id``, ``name``,
    and the stream's own detail fields; the list is ordered by
    ``(ts, seq)`` so same-instant event records keep their log order.
    """
    records: List[Dict[str, Any]] = []
    for event in events or ():
        rid = event.get("request_id")
        if request_id is not None and rid != request_id:
            continue
        kind = event.get("kind", "?")
        detail = {
            key: value
            for key, value in event.items()
            if key not in ("v", "seq", "ts", "worker_ts", "kind", "request_id")
        }
        records.append(
            {
                "ts": _event_ts(event),
                "seq": int(event.get("seq", 0)),
                "stream": "provenance" if kind == "score" else "event",
                "request_id": rid,
                "name": kind,
                "detail": detail,
            }
        )
    if trace is not None:
        for span in _flatten_trace(trace):
            rid = span["request_id"]
            if request_id is not None and rid != request_id:
                continue
            detail = {
                key: value
                for key, value in span["attributes"].items()
                if key != "request_id"
            }
            detail["duration"] = span["duration"]
            records.append(
                {
                    "ts": span["ts"],
                    "seq": 0,
                    "stream": "span",
                    "request_id": rid,
                    "name": span["name"],
                    "depth": span["depth"],
                    "detail": detail,
                }
            )
    for exemplar in exemplars or ():
        rid = exemplar.get("request_id")
        if request_id is not None and rid != request_id:
            continue
        records.append(
            {
                "ts": float(exemplar.get("ts", 0.0)),
                "seq": 0,
                "stream": "exemplar",
                "request_id": rid,
                "name": exemplar.get("name", "?"),
                "detail": {
                    "value": exemplar.get("value"),
                    "labels": dict(exemplar.get("labels", {})),
                },
            }
        )
    records.sort(key=lambda record: (record["ts"], record["seq"]))
    return records


def timeline_request_ids(
    events: Sequence[Mapping[str, Any]],
) -> List[str]:
    """Distinct request ids of an event stream, in first-seen order."""
    seen: Dict[str, None] = {}
    for event in events:
        rid = event.get("request_id")
        if rid is not None and rid not in seen:
            seen[rid] = None
    return list(seen)


def _detail_text(detail: Mapping[str, Any]) -> str:
    parts = []
    for key, value in detail.items():
        if isinstance(value, float):
            parts.append(f"{key}={value:.6g}")
        elif isinstance(value, (list, tuple)):
            parts.append(f"{key}=[{len(value)}]")
        elif isinstance(value, dict):
            inner = ",".join(f"{k}={v}" for k, v in value.items())
            parts.append(f"{key}={{{inner}}}")
        else:
            parts.append(f"{key}={value}")
    return " ".join(parts)


def format_timeline(records: Sequence[Mapping[str, Any]]) -> str:
    """Render a :func:`build_timeline` list as the ``repro obs
    timeline`` narrative: one aligned line per record, timestamps as
    offsets from the first record."""
    if not records:
        return "(empty timeline)\n"
    base = records[0]["ts"]
    lines = []
    for record in records:
        offset = record["ts"] - base
        indent = "  " * int(record.get("depth", 0))
        name = record["name"]
        if record["stream"] == "span":
            name = f"{indent}{name}"
        rid = record.get("request_id") or "-"
        lines.append(
            f"+{offset:9.4f}s  {record['stream']:<10} {rid:<24} "
            f"{name:<24} {_detail_text(record['detail'])}".rstrip()
        )
    return "\n".join(lines) + "\n"
