"""Golden top-k snapshots and quality-drift classification.

A ranking system's silent failure mode is not a crash — it is last
week's refactor quietly reordering someone's top-k.  This module is the
regression gate against that: ``repro obs snapshot`` serialises a
canonical per-table *fingerprint* of the current code's top-k answers
(candidate-set hash, ordered chart ids, score vectors) and ``repro obs
diff`` replays the current code against a stored snapshot, classifying
every table's drift:

========================  =============================================
``identical``             same charts, same order, same scores
``score_shifted``         same charts and order; scores moved > tol
``reordered``             same chart set, different order
``churned``               the chart *set* itself changed
``missing`` / ``added``   table absent on one side
========================  =============================================

Each comparison also reports Kendall-tau rank correlation over the
common charts and top-k overlap (Jaccard), so a diff quantifies *how
much* drift, not just that there is some.  Everything here operates on
plain dicts and duck-typed selection results — like the rest of
:mod:`repro.obs` this module imports nothing from the rest of
``repro``; the CLI supplies the replayed results.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SNAPSHOT_SCHEMA_VERSION",
    "DRIFT_KINDS",
    "node_id",
    "entry_from_result",
    "build_snapshot",
    "classify_drift",
    "diff_snapshots",
    "kendall_tau",
    "top_k_overlap",
    "load_snapshot",
    "save_snapshot",
    "format_drift_report",
]

#: Version stamped into snapshots; bump on incompatible shape changes
#: *or* on table-content fingerprint format changes (the ``fingerprint``
#: fields of snapshots written under different schema versions are not
#: comparable).  v2: the table fingerprint became compositional over
#: per-column digests (rolling-hash appends).
SNAPSHOT_SCHEMA_VERSION = 2

#: Drift classes, benign first.
DRIFT_KINDS = (
    "identical",
    "score_shifted",
    "reordered",
    "churned",
    "missing",
    "added",
)

#: Score movement below this is noise, not drift (float round-off from
#: e.g. a different summation order).
DEFAULT_SCORE_TOLERANCE = 1e-9


# ----------------------------------------------------------------------
# Snapshot construction
# ----------------------------------------------------------------------
def entry_from_result(
    table_name: str,
    fingerprint: str,
    result: Any,
    scores: Optional[Sequence[float]] = None,
) -> Dict[str, Any]:
    """One table's canonical top-k fingerprint.

    ``result`` is duck-typed (`.nodes`, `.candidates`, `.valid`,
    `.provenance`): any SelectionResult works.  ``scores`` overrides the
    per-chart score vector; by default it is pulled from the result's
    provenance records (weight-aware S(v), falling back to the LTR
    score), or omitted when neither exists.
    """
    chart_ids = [node_id(node) for node in result.nodes]
    if scores is None:
        provenance = getattr(result, "provenance", {}) or {}
        pulled: List[float] = []
        for chart_id in chart_ids:
            record = provenance.get(chart_id)
            value = None
            if record is not None:
                value = record.score if record.score is not None else record.ltr_score
            pulled.append(float(value) if value is not None else 0.0)
        scores = pulled if provenance else []
    return {
        "table": table_name,
        "fingerprint": fingerprint,
        "candidates": int(result.candidates),
        "valid": int(result.valid),
        "k": len(chart_ids),
        "chart_ids": chart_ids,
        "scores": [float(s) for s in scores],
    }


def node_id(node: Any) -> str:
    """Stable chart identity shared by provenance records, score/rank
    events, and snapshot fingerprints (duck-typed over any node with
    ``.chart`` and ``.query``)."""
    query = node.query
    order = query.order
    if order is None:
        order_token = "unsorted"
    elif hasattr(order, "describe"):
        order_token = order.describe()
    else:
        order_token = str(order)
    parts = [
        node.chart.value,
        query.x,
        query.y,
        query.transform.describe() if query.transform else "raw",
        query.aggregate.value if query.aggregate else "none",
        order_token,
    ]
    return "|".join(parts)


def build_snapshot(
    entries: Sequence[Dict[str, Any]],
    k: int,
    config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Assemble per-table entries into one versioned snapshot document."""
    return {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "k": int(k),
        "config": dict(config or {}),
        "tables": list(entries),
    }


def save_snapshot(snapshot: Dict[str, Any], path) -> None:
    """Write a snapshot as pretty JSON (stable key order for diffs)."""
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_snapshot(path) -> Dict[str, Any]:
    """Read a snapshot, refusing schema versions newer than this reader."""
    with open(path) as handle:
        snapshot = json.load(handle)
    version = snapshot.get("schema", 0)
    if version > SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(
            f"snapshot schema v{version} is newer than this reader "
            f"(v{SNAPSHOT_SCHEMA_VERSION})"
        )
    return snapshot


# ----------------------------------------------------------------------
# Drift statistics
# ----------------------------------------------------------------------
def kendall_tau(a: Sequence[str], b: Sequence[str]) -> float:
    """Kendall-tau rank correlation between two orderings.

    Computed over the elements common to both sequences (each assumed
    duplicate-free); 1.0 for identical relative order, -1.0 for fully
    reversed, 1.0 (vacuously) when fewer than two elements are shared.
    """
    position_b = {item: index for index, item in enumerate(b)}
    common = [item for item in a if item in position_b]
    n = len(common)
    if n < 2:
        return 1.0
    ranks = [position_b[item] for item in common]
    concordant = discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            if ranks[i] < ranks[j]:
                concordant += 1
            else:
                discordant += 1
    pairs = n * (n - 1) // 2
    return (concordant - discordant) / pairs


def top_k_overlap(a: Sequence[str], b: Sequence[str]) -> float:
    """Jaccard overlap of two chart-id sets (1.0 when both empty)."""
    set_a, set_b = set(a), set(b)
    union = set_a | set_b
    if not union:
        return 1.0
    return len(set_a & set_b) / len(union)


# ----------------------------------------------------------------------
# Classification
# ----------------------------------------------------------------------
def classify_drift(
    old: Dict[str, Any],
    new: Dict[str, Any],
    score_tolerance: float = DEFAULT_SCORE_TOLERANCE,
    compare_fingerprints: bool = True,
) -> Dict[str, Any]:
    """Compare one table's old and new fingerprints.

    Returns ``{"table", "kind", "kendall_tau", "overlap",
    "max_score_delta", ...}`` with ``kind`` from :data:`DRIFT_KINDS`.
    A changed table-content fingerprint is reported as ``churned`` with
    ``"input_changed": True`` — the *data* moved, so chart drift is
    expected rather than a code regression.

    ``compare_fingerprints=False`` skips that input check and classifies
    purely on chart ids and scores.  Two callers need this: diffing
    across snapshot *schema* versions (a fingerprint format change makes
    every hash differ even for identical data — see
    :func:`diff_snapshots`), and the incremental engine's churn
    subscription, where the input changed *by construction* (rows were
    appended) and the question is whether the top-k moved.
    """
    old_ids: List[str] = list(old["chart_ids"])
    new_ids: List[str] = list(new["chart_ids"])
    tau = kendall_tau(old_ids, new_ids)
    overlap = top_k_overlap(old_ids, new_ids)

    old_scores = list(old.get("scores") or [])
    new_scores = list(new.get("scores") or [])
    max_delta = 0.0
    if old_ids == new_ids and len(old_scores) == len(new_scores):
        for before, after in zip(old_scores, new_scores):
            max_delta = max(max_delta, abs(after - before))

    report: Dict[str, Any] = {
        "table": new.get("table", old.get("table")),
        "kendall_tau": round(tau, 6),
        "overlap": round(overlap, 6),
        "max_score_delta": max_delta,
        "old_chart_ids": old_ids,
        "new_chart_ids": new_ids,
    }
    if compare_fingerprints and old.get("fingerprint") != new.get("fingerprint"):
        report["kind"] = "churned"
        report["input_changed"] = True
        return report
    if set(old_ids) != set(new_ids):
        report["kind"] = "churned"
    elif old_ids != new_ids:
        report["kind"] = "reordered"
    elif max_delta > score_tolerance:
        report["kind"] = "score_shifted"
    else:
        report["kind"] = "identical"
    return report


def diff_snapshots(
    old: Dict[str, Any],
    new: Dict[str, Any],
    score_tolerance: float = DEFAULT_SCORE_TOLERANCE,
) -> Dict[str, Any]:
    """Compare two snapshots table by table.

    Returns ``{"tables": [per-table reports], "counts": {kind: n},
    "clean": bool}`` where ``clean`` means every table is ``identical``.
    Tables present on only one side classify as ``missing`` (dropped)
    or ``added``.

    When the two snapshots carry *different schema versions*, table
    fingerprints are not compared: a fingerprint-format bump changes
    every hash without any data changing, and flagging that as
    ``churned``/``input_changed`` would drown the real signal (chart
    ids and scores), which is always compared.
    """
    compare_fingerprints = old.get("schema", 0) == new.get("schema", 0)
    old_tables = {entry["table"]: entry for entry in old["tables"]}
    new_tables = {entry["table"]: entry for entry in new["tables"]}
    reports: List[Dict[str, Any]] = []
    for name, old_entry in old_tables.items():
        new_entry = new_tables.get(name)
        if new_entry is None:
            reports.append(
                {"table": name, "kind": "missing", "kendall_tau": 0.0,
                 "overlap": 0.0, "max_score_delta": 0.0}
            )
            continue
        reports.append(
            classify_drift(
                old_entry,
                new_entry,
                score_tolerance,
                compare_fingerprints=compare_fingerprints,
            )
        )
    for name in new_tables:
        if name not in old_tables:
            reports.append(
                {"table": name, "kind": "added", "kendall_tau": 0.0,
                 "overlap": 0.0, "max_score_delta": 0.0}
            )
    counts: Dict[str, int] = {}
    for report in reports:
        counts[report["kind"]] = counts.get(report["kind"], 0) + 1
    return {
        "schema": SNAPSHOT_SCHEMA_VERSION,
        "k": new.get("k", old.get("k")),
        "tables": reports,
        "counts": counts,
        "clean": all(r["kind"] == "identical" for r in reports),
    }


def format_drift_report(report: Dict[str, Any]) -> str:
    """Render a :func:`diff_snapshots` report as an aligned text table."""
    lines = [
        "drift: "
        + (
            "none"
            if report["clean"]
            else ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(report["counts"].items())
            )
        )
    ]
    header = ["table", "kind", "tau", "overlap", "max_score_delta"]
    rows = [
        [
            str(entry["table"]),
            entry["kind"],
            f"{entry.get('kendall_tau', 0.0):.3f}",
            f"{entry.get('overlap', 0.0):.3f}",
            f"{entry.get('max_score_delta', 0.0):.3g}",
        ]
        for entry in report["tables"]
    ]
    widths = [
        max(len(header[i]), max((len(row[i]) for row in rows), default=0))
        for i in range(len(header))
    ]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines) + "\n"
