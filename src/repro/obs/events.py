"""Structured decision-event log: append-only JSONL with a reader side.

Performance observability (:mod:`repro.obs.trace`, `.metrics`) answers
*how long*; this module answers *what happened*: every selection run
can append schema-versioned event records describing the decisions the
pipeline made — which rules pruned, what scored how, which rank each
chart landed at, whether the cache answered.  The log is the raw
material of the ``repro obs report`` summary and the decision-provenance
records of :mod:`repro.obs.provenance`.

Event record shape (one JSON object per line)::

    {"v": 2, "seq": 17, "ts": 1722950000.123, "kind": "phase",
     "phase": "enumerate", "seconds": 0.012, "candidates": 412, ...}

* ``v`` — the schema version (:data:`EVENT_LOG_SCHEMA_VERSION`);
* ``seq`` — a per-log monotone sequence number (merge-stable ordering);
* ``ts`` — wall-clock seconds since the epoch;
* ``kind`` — one of :data:`EVENT_KINDS`:

  ========== ==========================================================
  ``request``  one per ``select_top_k`` / batch entry point
  ``phase``    one per pipeline phase (or per parallel task)
  ``prune``    per decision rule: how many candidates it eliminated
  ``score``    per emitted chart: the factor/model scores behind it
  ``rank``     one per run: the final ordered top-k chart ids
  ``cache``    serving-cache activity (per-level counters, result hits)
  ``delta``    one per incremental append decision (merge / rebuild /
               churn) — see :mod:`repro.engine.incremental`
  ``error``    an exception escaping an instrumented region
  ========== ==========================================================

Writer features: request-granular **sampling** (``sample_rate``),
size-bounded **rotation** of the JSONL file (``max_bytes`` /
``max_backups``), a bounded in-memory tail (``max_events``) so
long-running engines cannot grow without limit, and :meth:`merge` for
folding per-worker event lists back in input order (parallel workers
cannot share the parent's file handle).  Everything is stdlib-only and
thread-safe; this module imports nothing from the rest of ``repro``.
"""

from __future__ import annotations

import io
import json
import math
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Iterable, Iterator, List, Optional

from .context import current_request_id

__all__ = [
    "EVENT_LOG_SCHEMA_VERSION",
    "EVENT_KINDS",
    "EventLog",
    "read_event_log",
    "aggregate_events",
    "format_event_report",
]

#: Version stamped into every record; bump on incompatible shape changes.
#: v2: ``cache`` events namespace their per-level counter dicts under a
#: single ``levels`` field instead of spreading them at the top level,
#: where a level name could collide with envelope fields like ``table``.
#: v3: ``request`` events of source-backed tables carry the ingest
#: record — ``source_kind`` / ``source_id`` / ``source_query`` /
#: ``source_mode`` (see ``repro.dataset.sources``).  Additive: the
#: reader accepts older versions unchanged (absent fields read as
#: "plain in-memory table").
#: v4: every record written inside a
#: :func:`repro.obs.context.request_scope` carries the scope's
#: ``request_id`` in its envelope — the correlation key joining events
#: to spans, provenance, and metric exemplars (``repro obs timeline``).
#: Additive: v2/v3 logs still parse (records simply have no
#: ``request_id``), and worker-side ids folded in via :meth:`merge` are
#: preserved verbatim rather than overwritten by the parent's scope.
EVENT_LOG_SCHEMA_VERSION = 4

#: The closed set of record kinds the writer accepts.
EVENT_KINDS = (
    "request",
    "phase",
    "prune",
    "score",
    "rank",
    "cache",
    "delta",
    "error",
)


class EventLog:
    """Append-only structured event log (in-memory tail + optional JSONL).

    Parameters
    ----------
    path:
        JSONL file to append to; ``None`` keeps events in memory only.
    sample_rate:
        Fraction of *requests* to record, in [0, 1].  Sampling is
        request-granular: either every event of a request is kept or
        none is, so per-request invariants (``considered == emitted +
        pruned``) always hold within the log.  The decision is
        deterministic (every ``round(1/rate)``-ish request by counter,
        not RNG), so two identical runs produce identical logs.
    max_bytes:
        Rotate the JSONL file when it would exceed this size; ``None``
        disables rotation.  Rotated files move to ``path.1`` ..
        ``path.<max_backups>`` (newest = ``.1``), oldest dropped.
    max_backups:
        How many rotated files to keep.
    max_events:
        Bound on the in-memory tail (oldest events drop first).  The
        file, when given, always receives every sampled event.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        sample_rate: float = 1.0,
        max_bytes: Optional[int] = None,
        max_backups: int = 3,
        max_events: int = 10_000,
    ) -> None:
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError(f"max_bytes must be positive, got {max_bytes}")
        self.path = os.fspath(path) if path is not None else None
        self.sample_rate = float(sample_rate)
        self.max_bytes = max_bytes
        self.max_backups = max(1, int(max_backups))
        self.events: Deque[Dict[str, Any]] = deque(maxlen=max_events)
        self._seq = 0
        self._requests = 0
        self._sampled = True  # events before any request are always kept
        self._dropped = 0
        self._handle: Optional[io.TextIOWrapper] = None
        self._lock = threading.Lock()

    # -- writer --------------------------------------------------------
    def begin_request(self, **fields: Any) -> bool:
        """Open a new request scope and emit its ``request`` event.

        Returns whether this request is sampled; until the next
        ``begin_request`` every :meth:`emit` follows that decision.
        """
        with self._lock:
            self._requests += 1
            # Deterministic stride sampling: request i is kept when the
            # running total floor(i * rate) advances, which spreads kept
            # requests evenly and needs no RNG state.
            kept = math.floor(self._requests * self.sample_rate) > math.floor(
                (self._requests - 1) * self.sample_rate
            )
            self._sampled = kept
            if not kept:
                self._dropped += 1
                return False
            self._append("request", fields)
            return True

    def emit(self, kind: str, **fields: Any) -> None:
        """Append one event of ``kind`` (dropped if the current request
        is unsampled)."""
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; use one of {EVENT_KINDS}"
            )
        with self._lock:
            if not self._sampled:
                return
            self._append(kind, fields)

    def merge(self, events: Iterable[Dict[str, Any]]) -> None:
        """Fold pre-built event dicts (e.g. a worker's) into this log.

        Events are re-sequenced but otherwise appended verbatim in the
        order given — callers gather per-worker lists in input order, so
        the merged log is deterministic regardless of worker scheduling.
        Dropped when the current request is unsampled, like :meth:`emit`.
        """
        with self._lock:
            if not self._sampled:
                return
            for event in events:
                kind = event.get("kind", "phase")
                fields = {
                    k: v
                    for k, v in event.items()
                    if k not in ("v", "seq", "ts", "kind")
                }
                if "ts" in event:
                    fields["worker_ts"] = event["ts"]
                self._append(kind, fields)

    def _append(self, kind: str, fields: Dict[str, Any]) -> None:
        """Build, store, and (when file-backed) persist one record.
        Caller holds the lock."""
        self._seq += 1
        record: Dict[str, Any] = {
            "v": EVENT_LOG_SCHEMA_VERSION,
            "seq": self._seq,
            "ts": time.time(),
            "kind": kind,
        }
        if "request_id" not in fields:
            request_id = current_request_id()
            if request_id is not None:
                record["request_id"] = request_id
        for key, value in fields.items():
            record[key] = _jsonable(value)
        self.events.append(record)
        if self.path is not None:
            line = json.dumps(record, separators=(",", ":")) + "\n"
            self._rotate_if_needed(len(line))
            if self._handle is None:
                self._handle = open(self.path, "a")
            self._handle.write(line)
            self._handle.flush()

    def _rotate_if_needed(self, incoming: int) -> None:
        """Shift ``path`` -> ``path.1`` -> ... when the next write would
        exceed ``max_bytes``.  Caller holds the lock."""
        if self.max_bytes is None or self.path is None:
            return
        try:
            current = os.path.getsize(self.path)
        except OSError:
            current = 0
        if current + incoming <= self.max_bytes:
            return
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        oldest = f"{self.path}.{self.max_backups}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.max_backups - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        if os.path.exists(self.path):
            os.replace(self.path, f"{self.path}.1")

    def close(self) -> None:
        """Flush and close the file handle (in-memory tail stays)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- reader-side conveniences --------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(list(self.events))

    def by_kind(self, kind: str) -> List[Dict[str, Any]]:
        """The in-memory tail filtered to one event kind."""
        return [event for event in self.events if event["kind"] == kind]

    @property
    def requests_seen(self) -> int:
        """Requests offered to the log (sampled or not)."""
        return self._requests

    @property
    def requests_dropped(self) -> int:
        """Requests the sampler skipped entirely."""
        return self._dropped

    # -- pickling (file handles / locks cannot cross processes) --------
    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_handle"] = None
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        target = self.path or "memory"
        return (
            f"EventLog({target!r}, events={len(self.events)}, "
            f"requests={self._requests}, dropped={self._dropped})"
        )


def _jsonable(value: Any) -> Any:
    """Best-effort JSON-safe projection of one field value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


# ----------------------------------------------------------------------
# Reader / aggregator
# ----------------------------------------------------------------------
def read_event_log(path) -> List[Dict[str, Any]]:
    """All events of a JSONL log, rotated backups first (oldest to
    newest), skipping blank lines.

    Raises ``ValueError`` on records whose schema version is newer than
    this reader understands.
    """
    path = os.fspath(path)
    files: List[str] = []
    index = 1
    while os.path.exists(f"{path}.{index}"):
        files.append(f"{path}.{index}")
        index += 1
    files.reverse()  # .2 (older) before .1 (newer)
    if os.path.exists(path):
        files.append(path)
    events: List[Dict[str, Any]] = []
    for name in files:
        with open(name) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                record = json.loads(line)
                version = record.get("v", 0)
                if version > EVENT_LOG_SCHEMA_VERSION:
                    raise ValueError(
                        f"event log schema v{version} is newer than this "
                        f"reader (v{EVENT_LOG_SCHEMA_VERSION})"
                    )
                events.append(record)
    return events


def aggregate_events(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Roll an event stream up into the ``repro obs report`` summary.

    Returns ``{"events", "kinds", "requests", "phases", "rules",
    "tables", "cache", "errors"}`` where ``phases`` maps phase name to
    count/total/mean seconds, ``rules`` maps decision rule to pruned
    totals, and ``tables`` maps table name to request/candidate/emitted
    accounting.
    """
    kinds: Dict[str, int] = {}
    phases: Dict[str, Dict[str, float]] = {}
    rules: Dict[str, int] = {}
    tables: Dict[str, Dict[str, float]] = {}
    cache: Dict[str, float] = {}
    errors: List[Dict[str, Any]] = []
    total = 0
    requests = 0

    for event in events:
        total += 1
        kind = event.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
        if kind == "request":
            requests += 1
            name = event.get("table", "?")
            entry = tables.setdefault(
                name, {"requests": 0, "considered": 0, "emitted": 0,
                       "pruned": 0, "result_cache_hits": 0}
            )
            entry["requests"] += 1
            if event.get("result_cache_hit"):
                entry["result_cache_hits"] += 1
        elif kind == "phase":
            name = event.get("phase", "?")
            entry = phases.setdefault(name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += float(event.get("seconds", 0.0))
            table_name = event.get("table")
            if table_name is not None and name == "enumerate":
                table_entry = tables.setdefault(
                    table_name,
                    {"requests": 0, "considered": 0, "emitted": 0,
                     "pruned": 0, "result_cache_hits": 0},
                )
                table_entry["considered"] += int(event.get("considered", 0))
                table_entry["emitted"] += int(event.get("emitted", 0))
        elif kind == "prune":
            rule = event.get("rule", "?")
            count = int(event.get("count", 0))
            rules[rule] = rules.get(rule, 0) + count
            table_name = event.get("table")
            if table_name is not None:
                table_entry = tables.setdefault(
                    table_name,
                    {"requests": 0, "considered": 0, "emitted": 0,
                     "pruned": 0, "result_cache_hits": 0},
                )
                table_entry["pruned"] += count
        elif kind == "cache":
            if event.get("result_cache_hit") and event.get("table"):
                table_entry = tables.setdefault(
                    event["table"],
                    {"requests": 0, "considered": 0, "emitted": 0,
                     "pruned": 0, "result_cache_hits": 0},
                )
                table_entry["result_cache_hits"] += 1
            for key, value in event.items():
                if key in ("v", "seq", "ts", "kind", "table"):
                    continue
                if key == "levels" and isinstance(value, dict):
                    # v2 shape: {"levels": {level: {counter: n}}}.
                    for level, counters in value.items():
                        if not isinstance(counters, dict):
                            continue
                        for counter, amount in counters.items():
                            if isinstance(amount, (int, float)):
                                full = f"{level}_{counter}"
                                cache[full] = cache.get(full, 0) + amount
                elif isinstance(value, dict):
                    # v1 shape: per-level dicts spread at the top level.
                    for counter, amount in value.items():
                        if isinstance(amount, (int, float)):
                            full = f"{key}_{counter}"
                            cache[full] = cache.get(full, 0) + amount
                elif isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    cache[key] = cache.get(key, 0) + value
                elif value is True:
                    cache[key] = cache.get(key, 0) + 1
        elif kind == "error":
            errors.append(
                {k: v for k, v in event.items() if k not in ("v", "seq")}
            )

    for entry in phases.values():
        entry["mean_seconds"] = (
            entry["seconds"] / entry["count"] if entry["count"] else 0.0
        )
    return {
        "events": total,
        "kinds": dict(sorted(kinds.items())),
        "requests": requests,
        "phases": dict(sorted(phases.items())),
        "rules": dict(sorted(rules.items())),
        "tables": dict(sorted(tables.items())),
        "cache": dict(sorted(cache.items())),
        "errors": errors,
    }


def _rows_to_text(title: str, header: List[str], rows: List[List[str]]) -> List[str]:
    """One fixed-width text table."""
    if not rows:
        return []
    widths = [
        max(len(header[i]), max(len(row[i]) for row in rows))
        for i in range(len(header))
    ]
    lines = [title]
    lines.append("  " + "  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for row in rows:
        lines.append(
            "  " + "  ".join(c.ljust(w) for c, w in zip(row, widths))
        )
    return lines


def format_event_report(summary: Dict[str, Any]) -> str:
    """Render an :func:`aggregate_events` summary as aligned text tables
    (the body of ``repro obs report``)."""
    lines: List[str] = [
        f"events: {summary['events']}  requests: {summary['requests']}",
        "kinds: "
        + ", ".join(f"{k}={v}" for k, v in summary["kinds"].items()),
    ]
    phase_rows = [
        [name, str(int(entry["count"])), f"{entry['seconds']:.4f}",
         f"{entry['mean_seconds']:.4f}"]
        for name, entry in summary["phases"].items()
    ]
    lines += _rows_to_text(
        "per-phase:", ["phase", "count", "total_s", "mean_s"], phase_rows
    )
    rule_rows = [
        [rule, str(count)] for rule, count in summary["rules"].items()
    ]
    lines += _rows_to_text("per-rule pruning:", ["rule", "pruned"], rule_rows)
    table_rows = [
        [
            name,
            str(int(entry["requests"])),
            str(int(entry["considered"])),
            str(int(entry["emitted"])),
            str(int(entry["pruned"])),
            str(int(entry["result_cache_hits"])),
        ]
        for name, entry in summary["tables"].items()
    ]
    lines += _rows_to_text(
        "per-table:",
        ["table", "requests", "considered", "emitted", "pruned", "cache_hits"],
        table_rows,
    )
    if summary["cache"]:
        lines.append(
            "cache: "
            + ", ".join(
                f"{k}={int(v)}" for k, v in summary["cache"].items()
            )
        )
    if summary["errors"]:
        lines.append(f"errors: {len(summary['errors'])}")
        for error in summary["errors"][:10]:
            lines.append(f"  - {error.get('error', error)}")
    return "\n".join(lines) + "\n"
