"""SLO health monitoring: rolling objectives, burn rates, runtime vitals.

The metrics registry can say *what* the latency distribution looks
like; it cannot say whether the system is *healthy* — that requires an
objective ("99% of selections under 250ms over the last hour") and a
judgement against it.  This module supplies both halves of the serving
health story the ROADMAP's ``repro.serve`` front-end will consume:

* :class:`SLOMonitor` — a set of named :class:`SLO` objectives, each
  evaluated over several rolling windows at once.  Every request
  outcome is recorded as (timestamp, good/bad); compliance per window
  is the good fraction, and the **burn rate** is how fast the error
  budget is being spent: ``burn = (1 - compliance) / (1 - target)``,
  so burn 1.0 exactly exhausts the budget over the objective period
  and burn 14 is a page.  An alert fires only when *every* configured
  window burns past its threshold — the multi-window multi-burn-rate
  rule that keeps one slow request from paging while still catching
  sustained regressions fast.
* :class:`RuntimeSampler` — a periodic daemon that samples process
  vitals (RSS from ``/proc/self/statm``, GC generation counts, live
  thread count, and any registered queue-depth callables) into the
  existing :class:`~repro.obs.metrics.MetricsRegistry` as gauges, so
  the fleet view carries memory/GC pressure next to request latency.

Latency objectives take a threshold (`good` = observation ≤
threshold); error and cache-hit objectives take booleans.  Everything
is wall-clock driven but injectable (``clock=``) so tests replay a
day of traffic in microseconds.

Pure stdlib; sibling imports only (:mod:`repro.obs.metrics` types are
duck-typed — any registry with ``gauge()`` works).
"""

from __future__ import annotations

import gc
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "SLO",
    "SLOStatus",
    "SLOMonitor",
    "RuntimeSampler",
    "read_rss_bytes",
    "DEFAULT_WINDOWS",
]

#: Default rolling windows (seconds) with their burn-rate alert
#: thresholds: a fast 5-minute window catching sharp regressions and a
#: slow 1-hour window requiring them to be sustained.  Both must burn
#: for an alert — the Google SRE multi-window pairing, scaled down to
#: the short-lived batch processes this repo runs today.
DEFAULT_WINDOWS: Tuple[Tuple[float, float], ...] = (
    (300.0, 14.0),
    (3600.0, 6.0),
)


@dataclass(frozen=True)
class SLO:
    """One objective: a name, a target good-fraction, and what "good"
    means.

    ``kind`` selects the record API: ``latency`` objectives judge
    observations against ``threshold`` (seconds); ``ratio`` objectives
    (errors, cache hits) are told good/bad directly.
    """

    name: str
    target: float
    kind: str = "ratio"
    threshold: Optional[float] = None
    description: str = ""
    windows: Tuple[Tuple[float, float], ...] = DEFAULT_WINDOWS

    def __post_init__(self) -> None:
        if not 0.0 < self.target < 1.0:
            raise ValueError(
                f"SLO target must be in (0, 1), got {self.target}"
            )
        if self.kind not in ("latency", "ratio"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "latency" and self.threshold is None:
            raise ValueError("latency SLOs require a threshold")
        if not self.windows:
            raise ValueError("at least one window is required")


@dataclass
class SLOStatus:
    """One objective's judgement at a point in time."""

    name: str
    target: float
    total: int
    good: int
    #: per-window ``{window_seconds: {"compliance", "burn_rate",
    #: "total", "good", "threshold"}}``
    windows: Dict[float, Dict[str, float]] = field(default_factory=dict)
    alerting: bool = False

    @property
    def compliance(self) -> float:
        """All-time good fraction (1.0 when nothing recorded yet)."""
        return self.good / self.total if self.total else 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "target": self.target,
            "total": self.total,
            "good": self.good,
            "compliance": self.compliance,
            "alerting": self.alerting,
            "windows": {
                str(window): dict(stats)
                for window, stats in self.windows.items()
            },
        }


class _Objective:
    """Mutable tracking state behind one :class:`SLO` (ring of
    timestamped outcomes, bounded by the longest window)."""

    __slots__ = ("slo", "outcomes", "total", "good", "lock")

    def __init__(self, slo: SLO) -> None:
        self.slo = slo
        self.outcomes: Deque[Tuple[float, bool]] = deque()
        self.total = 0
        self.good = 0
        self.lock = threading.Lock()

    def record(self, now: float, is_good: bool) -> None:
        horizon = max(window for window, _ in self.slo.windows)
        with self.lock:
            self.outcomes.append((now, is_good))
            self.total += 1
            if is_good:
                self.good += 1
            cutoff = now - horizon
            while self.outcomes and self.outcomes[0][0] < cutoff:
                self.outcomes.popleft()

    def status(self, now: float) -> SLOStatus:
        slo = self.slo
        with self.lock:
            outcomes = list(self.outcomes)
            total, good = self.total, self.good
        status = SLOStatus(
            name=slo.name, target=slo.target, total=total, good=good
        )
        budget = 1.0 - slo.target
        all_burning = True
        for window, burn_threshold in slo.windows:
            cutoff = now - window
            in_window = [g for ts, g in outcomes if ts >= cutoff]
            window_total = len(in_window)
            window_good = sum(in_window)
            compliance = (
                window_good / window_total if window_total else 1.0
            )
            burn = (1.0 - compliance) / budget
            status.windows[window] = {
                "total": float(window_total),
                "good": float(window_good),
                "compliance": compliance,
                "burn_rate": burn,
                "threshold": burn_threshold,
            }
            if window_total == 0 or burn < burn_threshold:
                all_burning = False
        status.alerting = all_burning
        return status


class SLOMonitor:
    """A registry of SLOs fed by request outcomes.

    Attach one to a pipeline (``DeepEye(slo=...)``) and the selection
    and batch layers feed it automatically; or feed it directly with
    :meth:`record_latency` / :meth:`record_outcome`.  ``on_alert``
    callbacks fire on the *transition* into the alerting state (not on
    every burning observation), receiving the :class:`SLOStatus`.

    The three conventional objectives the pipeline wires up are
    available via :meth:`with_default_objectives`:
    ``selection_latency`` (p-good under ``latency_threshold``),
    ``selection_errors`` (good = no exception), and ``cache_hit_rate``
    (good = result served from any cache level).
    """

    def __init__(
        self,
        objectives: Sequence[SLO] = (),
        clock: Callable[[], float] = time.time,
    ) -> None:
        self._clock = clock
        self._objectives: Dict[str, _Objective] = {}
        self._alerting: Dict[str, bool] = {}
        self._callbacks: List[Callable[[SLOStatus], None]] = []
        self._lock = threading.Lock()
        for slo in objectives:
            self.add(slo)

    @classmethod
    def with_default_objectives(
        cls,
        latency_threshold: float = 0.25,
        latency_target: float = 0.99,
        error_target: float = 0.999,
        cache_hit_target: float = 0.5,
        clock: Callable[[], float] = time.time,
    ) -> "SLOMonitor":
        return cls(
            objectives=(
                SLO(
                    name="selection_latency",
                    target=latency_target,
                    kind="latency",
                    threshold=latency_threshold,
                    description=(
                        f"{latency_target:.1%} of selections complete "
                        f"within {latency_threshold * 1000:.0f}ms"
                    ),
                ),
                SLO(
                    name="selection_errors",
                    target=error_target,
                    kind="ratio",
                    description=(
                        f"{error_target:.2%} of selections succeed"
                    ),
                ),
                SLO(
                    name="cache_hit_rate",
                    target=cache_hit_target,
                    kind="ratio",
                    description=(
                        f"{cache_hit_target:.0%} of selections are "
                        "served from cache"
                    ),
                ),
            ),
            clock=clock,
        )

    def add(self, slo: SLO) -> SLO:
        with self._lock:
            if slo.name in self._objectives:
                raise ValueError(f"duplicate SLO {slo.name!r}")
            self._objectives[slo.name] = _Objective(slo)
            self._alerting[slo.name] = False
        return slo

    def on_alert(self, callback: Callable[[SLOStatus], None]) -> None:
        """Register a callback fired when an objective *starts* alerting."""
        self._callbacks.append(callback)

    @property
    def names(self) -> List[str]:
        with self._lock:
            return list(self._objectives)

    # -- recording -------------------------------------------------------
    def _objective(self, name: str) -> Optional[_Objective]:
        with self._lock:
            return self._objectives.get(name)

    def record_latency(self, name: str, seconds: float) -> None:
        """Judge one latency observation against the named objective's
        threshold; unknown names are ignored (monitors are optional)."""
        objective = self._objective(name)
        if objective is None:
            return
        threshold = objective.slo.threshold
        self._record(objective, seconds <= threshold)

    def record_outcome(self, name: str, is_good: bool) -> None:
        """Record a boolean outcome for a ratio objective."""
        objective = self._objective(name)
        if objective is None:
            return
        self._record(objective, bool(is_good))

    def _record(self, objective: _Objective, is_good: bool) -> None:
        now = self._clock()
        objective.record(now, is_good)
        status = objective.status(now)
        name = objective.slo.name
        with self._lock:
            was_alerting = self._alerting[name]
            self._alerting[name] = status.alerting
        if status.alerting and not was_alerting:
            for callback in list(self._callbacks):
                callback(status)

    # -- reading ---------------------------------------------------------
    def status(self, name: str) -> SLOStatus:
        objective = self._objective(name)
        if objective is None:
            raise KeyError(name)
        return objective.status(self._clock())

    def snapshot(self) -> Dict[str, Any]:
        """All objectives' judgements, JSON-ready (the ``repro obs
        report`` health block and the serving admission signal)."""
        now = self._clock()
        with self._lock:
            objectives = list(self._objectives.values())
        statuses = [objective.status(now) for objective in objectives]
        return {
            "healthy": not any(status.alerting for status in statuses),
            "objectives": {
                status.name: status.to_dict() for status in statuses
            },
        }

    def alerting(self) -> List[str]:
        """Names of objectives currently in the alerting state."""
        now = self._clock()
        with self._lock:
            objectives = list(self._objectives.values())
        return [
            objective.slo.name
            for objective in objectives
            if objective.status(now).alerting
        ]


# ----------------------------------------------------------------------
# Runtime vitals
# ----------------------------------------------------------------------
_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def read_rss_bytes() -> Optional[int]:
    """Resident set size in bytes, from ``/proc/self/statm`` (second
    field, pages) with a ``resource.getrusage`` fallback; ``None`` when
    neither source exists."""
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF)
        # ru_maxrss is KiB on Linux, bytes on macOS; Linux is the
        # deployment target so KiB it is.
        return int(usage.ru_maxrss) * 1024
    except Exception:
        return None


class RuntimeSampler:
    """Periodic process-vitals sampler feeding a metrics registry.

    Each tick sets gauges on the registry: ``process_rss_bytes``,
    ``process_gc_gen{0,1,2}_objects``, ``process_threads``, and one
    ``queue_depth{queue="<name>"}`` gauge per registered depth callable
    (e.g. ``cache.level_sizes`` or a batch executor's pending count).
    ``sample_once()`` works without starting the thread — the CLI calls
    it before writing metrics so even fast one-shot commands report
    vitals.
    """

    def __init__(self, registry, interval: float = 1.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.registry = registry
        self.interval = float(interval)
        self._queues: Dict[str, Callable[[], Any]] = {}
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._lock = threading.Lock()
        self.samples_taken = 0

    def register_queue(self, name: str, depth: Callable[[], Any]) -> None:
        """Register a named depth provider.  The callable may return a
        number (one gauge) or a mapping (one gauge per key, labelled
        ``{queue=name, key=...}``)."""
        with self._lock:
            self._queues[name] = depth

    def sample_once(self) -> Dict[str, Any]:
        """Take one sample, update the registry, and return the values."""
        vitals: Dict[str, Any] = {}
        rss = read_rss_bytes()
        if rss is not None:
            vitals["process_rss_bytes"] = rss
            self.registry.gauge("process_rss_bytes").set(float(rss))
        counts = gc.get_count()
        for generation, count in enumerate(counts):
            name = f"process_gc_gen{generation}_objects"
            vitals[name] = count
            self.registry.gauge(name).set(float(count))
        threads = threading.active_count()
        vitals["process_threads"] = threads
        self.registry.gauge("process_threads").set(float(threads))
        with self._lock:
            queues = dict(self._queues)
        for queue_name, depth in queues.items():
            try:
                value = depth()
            except Exception:
                continue
            if isinstance(value, Mapping):
                for key, depth_value in value.items():
                    gauge = self.registry.gauge(
                        "queue_depth",
                        labels={"queue": queue_name, "key": str(key)},
                    )
                    gauge.set(float(depth_value))
                    vitals[f"queue_depth:{queue_name}:{key}"] = depth_value
            else:
                self.registry.gauge(
                    "queue_depth", labels={"queue": queue_name}
                ).set(float(value))
                vitals[f"queue_depth:{queue_name}"] = value
        self.samples_taken += 1
        return vitals

    def start(self) -> "RuntimeSampler":
        if self._thread is not None:
            raise RuntimeError("sampler already running")
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-runtime-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "RuntimeSampler":
        if self._thread is None:
            return self
        self._stop_event.set()
        self._thread.join(timeout=max(1.0, 5 * self.interval))
        self._thread = None
        return self

    def __enter__(self) -> "RuntimeSampler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - vitals must not kill
                pass
