"""Per-kernel work accounting for the columnar transform layer.

The enumeration hot path bottoms out in a handful of *kernels* — the
vectorized transform operators (``bin_temporal``, ``bin_numeric``,
``bin_udf``, ``group_categorical``) and the aggregation scans
(``count_scan``, ``y_scan``).  :class:`KernelStats` is the process-global
ledger those kernels report into: per kernel name it accumulates calls,
rows consumed, buckets produced, and wall-clock seconds, cheaply enough
to stay always-on (one lock + four float adds per kernel invocation,
orders of magnitude below the kernel work itself — the same bargain as
the enumeration layer's ``PruningCounters``).

Two consumption paths:

* **pull** — :meth:`KernelStats.snapshot` / :meth:`KernelStats.delta_since`
  give cumulative or windowed totals; the selection pipeline snapshots
  around its *enumerate* phase so the trace span shows kernel time next
  to aggregation time, and :meth:`KernelStats.record_metrics` bridges
  the lifetime totals into a :class:`~repro.obs.metrics.MetricsRegistry`
  as ``kernel_calls_total`` / ``kernel_rows_total`` /
  ``kernel_buckets_total`` / ``kernel_seconds_total`` counters;
* **push** — registries attached via :meth:`KernelStats.attach` receive a
  live ``kernel_seconds{kernel=...}`` histogram observation per call
  (bounds :data:`KERNEL_SECONDS_BUCKETS`, tuned for the
  microsecond-to-millisecond range a single columnar pass occupies).

Like the rest of :mod:`repro.obs`, this module imports nothing from the
rest of :mod:`repro`; the kernels in :mod:`repro.language.binning`
import *it*, never the other way around.  Process-pool workers carry
their own per-process ledger — cross-process totals are only merged for
counters that already travel with results (cache stats, pruning
counters); kernel seconds from process workers stay worker-local.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

__all__ = ["KERNEL_SECONDS_BUCKETS", "KernelStats", "KERNEL_STATS"]

#: Histogram upper bounds (seconds) for one kernel invocation.  A single
#: columnar pass over 10^3..10^6 rows lands between ~1 µs and ~100 ms —
#: far below :data:`repro.obs.metrics.DEFAULT_LATENCY_BUCKETS`, which is
#: tuned for whole pipeline phases.
KERNEL_SECONDS_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 1.0,
)

#: The counters tracked per kernel, in reporting order.
_FIELDS = ("calls", "rows", "buckets", "seconds")


class KernelStats:
    """Thread-safe per-kernel ledger of calls / rows / buckets / seconds."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._totals: Dict[str, Dict[str, float]] = {}
        self._registries: List[object] = []

    # -- recording ------------------------------------------------------
    def record(
        self, kernel: str, rows: int, buckets: int, seconds: float
    ) -> None:
        """Account one kernel invocation; pushes a ``kernel_seconds``
        histogram sample to every attached registry."""
        with self._lock:
            entry = self._totals.get(kernel)
            if entry is None:
                entry = dict.fromkeys(_FIELDS, 0.0)
                self._totals[kernel] = entry
            entry["calls"] += 1
            entry["rows"] += rows
            entry["buckets"] += buckets
            entry["seconds"] += seconds
            registries = list(self._registries) if self._registries else None
        if registries:
            for registry in registries:
                registry.histogram(
                    "kernel_seconds",
                    labels={"kernel": kernel},
                    buckets=KERNEL_SECONDS_BUCKETS,
                    help="Wall-clock of one columnar kernel invocation",
                ).observe(seconds)

    # -- live histogram sinks ------------------------------------------
    def attach(self, registry) -> None:
        """Start streaming per-call ``kernel_seconds`` observations into
        ``registry`` (a :class:`~repro.obs.metrics.MetricsRegistry`)."""
        with self._lock:
            if registry not in self._registries:
                self._registries.append(registry)

    def detach(self, registry) -> None:
        """Stop streaming into ``registry`` (no-op when not attached)."""
        with self._lock:
            try:
                self._registries.remove(registry)
            except ValueError:
                pass

    # -- reading --------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Deep copy of the cumulative per-kernel totals."""
        with self._lock:
            return {kernel: dict(entry) for kernel, entry in self._totals.items()}

    def delta_since(
        self, before: Dict[str, Dict[str, float]]
    ) -> Dict[str, Dict[str, float]]:
        """Per-kernel difference between now and an earlier ``snapshot()``,
        dropping kernels that did no work in the window."""
        delta: Dict[str, Dict[str, float]] = {}
        for kernel, entry in self.snapshot().items():
            base = before.get(kernel, {})
            diff = {
                field: entry[field] - base.get(field, 0.0) for field in _FIELDS
            }
            if diff["calls"] > 0:
                delta[kernel] = diff
        return delta

    def calls(self, *kernels: str) -> int:
        """Total invocation count across the named kernels (all when empty)."""
        with self._lock:
            names = kernels or tuple(self._totals)
            return int(
                sum(self._totals[k]["calls"] for k in names if k in self._totals)
            )

    def reset(self) -> None:
        """Zero every counter (test isolation; attached sinks survive)."""
        with self._lock:
            self._totals.clear()

    # -- bridging -------------------------------------------------------
    def record_metrics(self, registry) -> None:
        """Publish the lifetime totals into ``registry`` as monotone
        counters (``set_cumulative``, so repeated syncs never go back)."""
        for kernel, entry in self.snapshot().items():
            labels = {"kernel": kernel}
            registry.counter(
                "kernel_calls_total", labels=labels,
                help="Columnar kernel invocations",
            ).set_cumulative(entry["calls"])
            registry.counter(
                "kernel_rows_total", labels=labels,
                help="Rows consumed by columnar kernels",
            ).set_cumulative(entry["rows"])
            registry.counter(
                "kernel_buckets_total", labels=labels,
                help="Distinct buckets produced by columnar kernels",
            ).set_cumulative(entry["buckets"])
            registry.counter(
                "kernel_seconds_total", labels=labels,
                help="Wall-clock seconds spent inside columnar kernels",
            ).set_cumulative(entry["seconds"])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            kernels = ", ".join(
                f"{k}={int(v['calls'])}" for k, v in sorted(self._totals.items())
            )
        return f"KernelStats({kernels})"


#: The process-global ledger every kernel reports into.
KERNEL_STATS = KernelStats()
