"""Process-global metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` is a thread-safe collection of named
instruments, optionally labelled (Prometheus-style)::

    registry = MetricsRegistry()
    registry.counter("cache_hits_total", labels={"level": "results"}).inc()
    registry.histogram("selection_phase_seconds",
                       labels={"phase": "enumerate"}).observe(0.012)
    print(registry.to_prometheus_text())

Histograms use fixed upper-bound buckets (cumulative, with an implicit
``+Inf`` overflow) and derive p50/p90/p99 summaries by linear
interpolation inside the covering bucket, clamped to the exact observed
min/max.  Exporters: :meth:`MetricsRegistry.to_prometheus_text` (the
text exposition format) and :meth:`MetricsRegistry.to_json`;
:func:`parse_prometheus_text` round-trips the former for tests and
scrapers.

Counters and histograms capture **exemplars**: when an observation
happens inside a :func:`~repro.obs.context.request_scope`, the last
observation's value, timestamp, and request id are remembered and
exported on an OpenMetrics-style suffix (``... # {request_id="..."}
value ts``) — the join key that lets ``repro obs timeline`` tie a
fleet-level histogram back to one concrete request.
:func:`parse_exemplars` reads them back.

``global_registry()`` returns the shared process-wide registry used
when instrumentation is enabled without an explicit registry.  Pure
stdlib; no Prometheus client dependency.
"""

from __future__ import annotations

import math
import re
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .context import current_request_id

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "global_registry",
    "parse_prometheus_text",
    "parse_exemplars",
]

#: Upper bounds (seconds) tuned for the selection pipeline's latency
#: range: sub-millisecond cache hits up to multi-second exhaustive runs.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelItems = Tuple[Tuple[str, str], ...]


def _capture_exemplar(value: float) -> Optional[Dict[str, Any]]:
    """The exemplar for one observation, or ``None`` outside a request
    scope (unscoped observations never overwrite a correlated one)."""
    request_id = current_request_id()
    if request_id is None:
        return None
    return {"request_id": request_id, "value": value, "ts": time.time()}


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value", "exemplar", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self.exemplar: Optional[Dict[str, Any]] = None
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        exemplar = _capture_exemplar(amount)
        with self._lock:
            self.value += amount
            if exemplar is not None:
                self.exemplar = exemplar

    def set_cumulative(self, value: float) -> None:
        """Bridge an externally maintained cumulative total into this
        counter (e.g. an LRU cache's lifetime hit count).  The counter
        only ever moves forward: values below the current one are
        ignored, so repeated syncs stay monotone."""
        with self._lock:
            if value > self.value:
                self.value = value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("value", "_lock")

    def __init__(self) -> None:
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value -= amount


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max tracking.

    ``buckets`` are ascending finite upper bounds; observations land in
    the first bucket whose bound is >= the value, or the implicit
    ``+Inf`` overflow bucket.  Percentiles interpolate linearly within
    the covering bucket and clamp to the observed min/max, so they are
    exact at the bucket boundaries and never invent values outside the
    observed range.
    """

    __slots__ = (
        "buckets", "counts", "sum", "count", "min", "max",
        "exemplars", "_lock",
    )

    def __init__(self, buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ) or any(not math.isfinite(b) for b in bounds):
            raise ValueError(
                f"histogram buckets must be ascending finite bounds, got {buckets!r}"
            )
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)  # last slot = +Inf overflow
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf
        #: last request-correlated observation per bucket index
        self.exemplars: Dict[int, Dict[str, Any]] = {}
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        exemplar = _capture_exemplar(value)
        with self._lock:
            index = len(self.buckets)
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    index = i
                    break
            self.counts[index] += 1
            self.sum += value
            self.count += 1
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value
            if exemplar is not None:
                self.exemplars[index] = exemplar

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (``q`` in [0, 1]) from the buckets.

        NaN when empty.  Within the covering bucket the estimate
        interpolates linearly; observations in the overflow bucket are
        represented by the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return math.nan
            rank = q * self.count
            cumulative = 0
            for i, bucket_count in enumerate(self.counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= rank:
                    if i == len(self.buckets):
                        return self.max
                    lower = self.buckets[i - 1] if i > 0 else min(self.min, self.buckets[i])
                    upper = self.buckets[i]
                    fraction = (rank - cumulative) / bucket_count
                    estimate = lower + (upper - lower) * fraction
                    return min(max(estimate, self.min), self.max)
                cumulative += bucket_count
            return self.max

    def summary(self) -> Dict[str, float]:
        """``{count, sum, min, max, p50, p90, p99}`` of the distribution."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }


class _Family:
    """All instruments sharing one metric name (one per label set)."""

    __slots__ = ("name", "kind", "help", "buckets", "instruments")

    def __init__(self, name: str, kind: str, help_text: str, buckets) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.buckets = buckets
        self.instruments: Dict[LabelItems, Any] = {}


_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _label_items(labels: Optional[Dict[str, str]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _format_labels(items: LabelItems, extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = list(items)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_exemplar(exemplar: Optional[Dict[str, Any]]) -> str:
    """The OpenMetrics exemplar suffix, or ``""`` when absent."""
    if not exemplar:
        return ""
    labels = _format_labels(
        (("request_id", str(exemplar["request_id"])),)
    )
    return (
        f" # {labels} {_format_value(exemplar['value'])}"
        f" {repr(float(exemplar['ts']))}"
    )


class MetricsRegistry:
    """A named, labelled collection of counters, gauges, and histograms.

    Instruments are get-or-create: calling :meth:`counter` twice with
    the same name and labels returns the same object, so call sites can
    stay stateless.  A name is permanently bound to its first kind —
    registering it again as a different kind raises.
    """

    def __init__(self) -> None:
        self._families: Dict[str, _Family] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------
    def _family(self, name: str, kind: str, help_text: str, buckets=None) -> _Family:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ValueError(
                    f"metric {name!r} already registered as {family.kind}, "
                    f"not {kind}"
                )
            return family

    def counter(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
    ) -> Counter:
        """Get or create the counter ``name`` for this label set."""
        family = self._family(name, "counter", help)
        key = _label_items(labels)
        with self._lock:
            if key not in family.instruments:
                family.instruments[key] = Counter()
            return family.instruments[key]

    def gauge(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        help: str = "",
    ) -> Gauge:
        """Get or create the gauge ``name`` for this label set."""
        family = self._family(name, "gauge", help)
        key = _label_items(labels)
        with self._lock:
            if key not in family.instruments:
                family.instruments[key] = Gauge()
            return family.instruments[key]

    def histogram(
        self,
        name: str,
        labels: Optional[Dict[str, str]] = None,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        help: str = "",
    ) -> Histogram:
        """Get or create the histogram ``name`` for this label set.

        ``buckets`` only takes effect on first registration of the name;
        later calls reuse the family's buckets.
        """
        family = self._family(name, "histogram", help, tuple(buckets))
        key = _label_items(labels)
        with self._lock:
            if key not in family.instruments:
                family.instruments[key] = Histogram(family.buckets)
            return family.instruments[key]

    # -- export ---------------------------------------------------------
    def to_prometheus_text(self) -> str:
        """The text exposition format (the ``/metrics`` page body)."""
        lines: List[str] = []
        with self._lock:
            families = sorted(self._families.values(), key=lambda f: f.name)
        for family in families:
            if family.help:
                lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key in sorted(family.instruments):
                instrument = family.instruments[key]
                if family.kind == "counter":
                    lines.append(
                        f"{family.name}{_format_labels(key)} "
                        f"{_format_value(instrument.value)}"
                        f"{_format_exemplar(instrument.exemplar)}"
                    )
                elif family.kind == "gauge":
                    lines.append(
                        f"{family.name}{_format_labels(key)} "
                        f"{_format_value(instrument.value)}"
                    )
                else:
                    cumulative = 0
                    for i, (bound, count) in enumerate(
                        zip(instrument.buckets, instrument.counts)
                    ):
                        cumulative += count
                        labels = _format_labels(
                            key, ("le", _format_value(bound))
                        )
                        lines.append(
                            f"{family.name}_bucket{labels} {cumulative}"
                            f"{_format_exemplar(instrument.exemplars.get(i))}"
                        )
                    labels = _format_labels(key, ("le", "+Inf"))
                    overflow = len(instrument.buckets)
                    lines.append(
                        f"{family.name}_bucket{labels} {instrument.count}"
                        f"{_format_exemplar(instrument.exemplars.get(overflow))}"
                    )
                    lines.append(
                        f"{family.name}_sum{_format_labels(key)} "
                        f"{_format_value(instrument.sum)}"
                    )
                    lines.append(
                        f"{family.name}_count{_format_labels(key)} "
                        f"{instrument.count}"
                    )
        return "\n".join(lines) + ("\n" if lines else "")

    def to_json(self) -> Dict[str, Any]:
        """JSON-friendly dump: per family, per label set, the value or
        histogram summary."""
        payload: Dict[str, Any] = {}
        with self._lock:
            families = list(self._families.values())
        for family in families:
            series = []
            for key, instrument in sorted(family.instruments.items()):
                entry: Dict[str, Any] = {"labels": dict(key)}
                if family.kind in ("counter", "gauge"):
                    entry["value"] = instrument.value
                else:
                    entry.update(instrument.summary())
                series.append(entry)
            payload[family.name] = {"type": family.kind, "series": series}
        return payload

    def reset(self) -> None:
        """Drop every registered family (mainly for tests)."""
        with self._lock:
            self._families.clear()


_GLOBAL_REGISTRY = MetricsRegistry()


def global_registry() -> MetricsRegistry:
    """The shared process-wide registry."""
    return _GLOBAL_REGISTRY


# Labels must be matched non-greedily so an exemplar's own brace pair
# (the `# {request_id="..."} ...` tail) is never swallowed into the
# sample's label set.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*?)\})?\s+(?P<value>\S+)"
    r"(?:\s+#\s+\{(?P<exemplar_labels>.*?)\}"
    r"\s+(?P<exemplar_value>\S+)(?:\s+(?P<exemplar_ts>\S+))?)?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_labels(labels_text: str) -> LabelItems:
    return tuple(
        (k, v.encode().decode("unicode_escape"))
        for k, v in _LABEL_RE.findall(labels_text)
    )


def parse_prometheus_text(
    text: str,
) -> Dict[Tuple[str, LabelItems], float]:
    """Parse the exposition format back into ``{(name, labels): value}``.

    The inverse of :meth:`MetricsRegistry.to_prometheus_text` for the
    subset this module emits (used by the round-trip tests and simple
    scrapers).  ``+Inf``/``-Inf``/``NaN`` parse to their float values;
    exemplar suffixes are accepted and ignored (see
    :func:`parse_exemplars` for the exemplars themselves).
    """
    samples: Dict[Tuple[str, LabelItems], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable metrics line: {line!r}")
        labels = _parse_labels(match.group("labels") or "")
        samples[(match.group("name"), tuple(sorted(labels)))] = float(
            match.group("value")
        )
    return samples


def parse_exemplars(text: str) -> List[Dict[str, Any]]:
    """The exemplars of an exposition page, as timeline-ready records.

    Each record: ``{"name", "labels", "request_id", "value", "ts"}`` —
    ``name``/``labels`` identify the series the exemplar annotates
    (``_bucket`` suffix and ``le`` label intact), ``value`` is the
    exemplar observation, ``ts`` its unix timestamp (0.0 when the line
    carried none).
    """
    exemplars: List[Dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None or match.group("exemplar_value") is None:
            continue
        exemplar_labels = dict(
            _parse_labels(match.group("exemplar_labels") or "")
        )
        exemplars.append(
            {
                "name": match.group("name"),
                "labels": dict(_parse_labels(match.group("labels") or "")),
                "request_id": exemplar_labels.get("request_id"),
                "value": float(match.group("exemplar_value")),
                "ts": float(match.group("exemplar_ts") or 0.0),
            }
        )
    return exemplars
