"""Low-overhead sampling wall-clock profiler with span attribution.

Answers the question the span tree cannot: *where inside a phase* did
the wall-clock go?  Spans bound the three coarse pipeline phases; the
:class:`SamplingProfiler` attributes time to the full Python call stack
under them, at a fixed sampling interval, without instrumenting any
code:

* **main thread** — ``signal.setitimer(ITIMER_REAL)`` delivers
  ``SIGALRM`` every ``interval`` seconds of wall-clock; the handler
  receives the interrupted frame directly, so main-thread samples cost
  one handler call and no thread introspection;
* **pool / worker threads** — a daemon sweeper thread wakes at the
  same interval and walks :func:`sys._current_frames` for every other
  live thread (signals only ever interrupt the main thread, so sweeping
  is the only way to see a ``ThreadPoolExecutor`` worker).

Each sample collapses its frame chain into a ``module:function`` stack,
root first.  When a :class:`~repro.obs.trace.Tracer` is attached, the
sampled thread's currently-open span names prefix the stack — the
flamegraph then reads *phase → function tree* (``select_top_k;
enumerate;binning:bin_numeric;...``), which is exactly the
request-latency attribution a serving fleet wants.

Exports: :meth:`SamplingProfiler.collapsed` emits the
``stack;stack;leaf count`` text `flamegraph.pl
<https://github.com/brendangregg/FlameGraph>`_ consumes, and
:meth:`SamplingProfiler.to_speedscope` the `speedscope
<https://www.speedscope.app>`_ sampled-profile JSON.  The CLI wires
both behind one ``--profile PATH`` flag on every pipeline command.

Limits, stated honestly: process-pool workers run in other processes,
which no in-process sampler can see — their samples attribute to the
parent's ``future.result()`` wait (the thread backend profiles fully).
POSIX clears interval timers across ``fork``, so a forked worker never
inherits a stray ``SIGALRM``.  On platforms without ``setitimer``
(Windows) or off the main thread, the profiler degrades to sweeping
every thread including the main one — same stacks, slightly coarser
main-thread timing.

Pure stdlib; sibling imports only (:mod:`repro.obs.trace`).
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SamplingProfiler", "active_profiler"]

#: Default sampling interval (seconds): 5ms ≈ 200Hz, low enough that a
#: multi-millisecond selection run lands tens of samples while keeping
#: handler overhead far under the 1.15x CI budget.
DEFAULT_INTERVAL = 0.005

#: Frames whose code lives in these files never appear in stacks (the
#: profiler watching itself, and the sweeper's own sleep).
_SELF_FILE = os.path.abspath(__file__)

_ACTIVE: Optional["SamplingProfiler"] = None
_ACTIVE_LOCK = threading.Lock()


def active_profiler() -> Optional["SamplingProfiler"]:
    """The currently-running profiler, if any (one per process)."""
    return _ACTIVE


#: Per-code-object label cache: sampling runs inside a signal handler,
#: where every saved path/split call directly buys sampling headroom.
_LABEL_CACHE: Dict[Any, Optional[str]] = {}


def _frame_label(code) -> Optional[str]:
    """``module:function`` label of one code object (``None`` for the
    profiler's own frames), cached and stable across runs."""
    label = _LABEL_CACHE.get(code)
    if label is None and code not in _LABEL_CACHE:
        filename = code.co_filename
        if os.path.abspath(filename) == _SELF_FILE:
            label = None
        else:
            module = os.path.splitext(os.path.basename(filename))[0]
            label = f"{module}:{code.co_name}"
        _LABEL_CACHE[code] = label
    return label


def _collapse(frame) -> Tuple[str, ...]:
    """The frame chain as a root-first tuple of labels, profiler frames
    dropped."""
    labels: List[str] = []
    while frame is not None:
        label = _frame_label(frame.f_code)
        if label is not None:
            labels.append(label)
        frame = frame.f_back
    labels.reverse()
    return tuple(labels)


class SamplingProfiler:
    """Aggregating sampling profiler; start/stop or use as a context
    manager.

    Parameters
    ----------
    interval:
        Seconds between samples (both the itimer period and the sweeper
        wake period).
    tracer:
        Optional :class:`~repro.obs.trace.Tracer`; when given, each
        sample is prefixed with the sampled thread's open span names
        (via :meth:`~repro.obs.trace.Tracer.open_stacks`), so stacks
        group under the phase that was running.
    use_signal:
        ``True``/``False`` forces the main-thread itimer on or off;
        ``None`` (default) auto-detects (requires ``signal.setitimer``
        and being called from the main thread).
    """

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        tracer=None,
        use_signal: Optional[bool] = None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.interval = float(interval)
        self.tracer = tracer
        self._use_signal_request = use_signal
        self.samples: Counter = Counter()
        self._lock = threading.Lock()
        self._running = False
        self._signal_active = False
        self._in_handler = False
        self._old_handler: Any = None
        self._sweeper: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._started_at: Optional[float] = None
        self.wall_seconds = 0.0
        self.sample_count = 0
        self.signal_samples = 0
        self.sweep_samples = 0

    # -- lifecycle -------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> "SamplingProfiler":
        """Install the itimer (when possible), start the sweeper, and
        register as the process's active profiler."""
        global _ACTIVE
        if self._running:
            raise RuntimeError("profiler already running")
        with _ACTIVE_LOCK:
            if _ACTIVE is not None:
                raise RuntimeError(
                    "another SamplingProfiler is already running in this "
                    "process"
                )
            _ACTIVE = self
        self._running = True
        self._started_at = time.perf_counter()
        self._stop_event.clear()

        want_signal = self._use_signal_request
        if want_signal is None:
            want_signal = (
                hasattr(signal, "setitimer")
                and threading.current_thread() is threading.main_thread()
            )
        if want_signal:
            try:
                self._old_handler = signal.signal(
                    signal.SIGALRM, self._on_signal
                )
                signal.setitimer(
                    signal.ITIMER_REAL, self.interval, self.interval
                )
                self._signal_active = True
            except (ValueError, OSError, AttributeError):
                # Not the main thread / no itimer support: sweep instead.
                self._signal_active = False
        self._sweeper = threading.Thread(
            target=self._sweep_loop, name="repro-profiler", daemon=True
        )
        self._sweeper.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Tear the timer and sweeper down; safe to call once only."""
        global _ACTIVE
        if not self._running:
            return self
        self._running = False
        if self._signal_active:
            signal.setitimer(signal.ITIMER_REAL, 0.0, 0.0)
            signal.signal(signal.SIGALRM, self._old_handler)
            self._signal_active = False
        self._stop_event.set()
        if self._sweeper is not None:
            self._sweeper.join(timeout=max(1.0, 5 * self.interval))
            self._sweeper = None
        if self._started_at is not None:
            self.wall_seconds += time.perf_counter() - self._started_at
            self._started_at = None
        with _ACTIVE_LOCK:
            if _ACTIVE is self:
                _ACTIVE = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- sampling --------------------------------------------------------
    def _span_prefix(self, thread_id: int) -> Tuple[str, ...]:
        if self.tracer is None:
            return ()
        return self.tracer.open_stacks().get(thread_id, ())

    def _record(self, thread_id: int, frame) -> None:
        stack = self._span_prefix(thread_id) + _collapse(frame)
        if not stack:
            return
        with self._lock:
            self.samples[stack] += 1
            self.sample_count += 1

    def _on_signal(self, signum, frame) -> None:
        # The handler runs on the main thread with the interrupted
        # frame in hand — no _current_frames walk needed.  The guard
        # drops ticks that land while a previous handler is still
        # walking a deep stack: Python-level handlers re-enter, and at
        # small intervals that recursion would otherwise be unbounded.
        if not self._running or self._in_handler:
            return
        self._in_handler = True
        try:
            self.signal_samples += 1
            self._record(threading.main_thread().ident, frame)
        finally:
            self._in_handler = False

    def _sweep_loop(self) -> None:
        main_ident = threading.main_thread().ident
        own_ident = threading.get_ident()
        while not self._stop_event.wait(self.interval):
            frames = sys._current_frames()
            for thread_id, frame in frames.items():
                if thread_id == own_ident:
                    continue
                if thread_id == main_ident and self._signal_active:
                    continue  # the itimer owns main-thread sampling
                self.sweep_samples += 1
                self._record(thread_id, frame)

    # -- export ----------------------------------------------------------
    def stacks(self) -> Dict[Tuple[str, ...], int]:
        """The aggregated ``{stack tuple: sample count}`` map (a copy)."""
        with self._lock:
            return dict(self.samples)

    def collapsed(self) -> str:
        """The folded-stacks text ``flamegraph.pl`` consumes: one
        ``frame;frame;leaf count`` line per distinct stack, most
        samples first."""
        with self._lock:
            items = sorted(
                self.samples.items(), key=lambda kv: (-kv[1], kv[0])
            )
        return "\n".join(
            ";".join(stack) + f" {count}" for stack, count in items
        ) + ("\n" if items else "")

    def write_collapsed(self, path) -> None:
        with open(path, "w") as handle:
            handle.write(self.collapsed())

    def to_speedscope(self, name: str = "repro profile") -> Dict[str, Any]:
        """The speedscope sampled-profile JSON document (open at
        https://www.speedscope.app or with the local viewer)."""
        with self._lock:
            items = sorted(self.samples.items())
        frame_index: Dict[str, int] = {}
        frames: List[Dict[str, str]] = []
        samples: List[List[int]] = []
        weights: List[float] = []
        for stack, count in items:
            indexed = []
            for label in stack:
                if label not in frame_index:
                    frame_index[label] = len(frames)
                    frames.append({"name": label})
                indexed.append(frame_index[label])
            samples.append(indexed)
            weights.append(count * self.interval)
        total = sum(weights)
        return {
            "$schema": "https://www.speedscope.app/file-format-schema.json",
            "name": name,
            "exporter": "repro.obs.profiler",
            "activeProfileIndex": 0,
            "shared": {"frames": frames},
            "profiles": [
                {
                    "type": "sampled",
                    "name": name,
                    "unit": "seconds",
                    "startValue": 0,
                    "endValue": total,
                    "samples": samples,
                    "weights": weights,
                }
            ],
        }

    def write_speedscope(self, path, name: str = "repro profile") -> None:
        with open(path, "w") as handle:
            json.dump(self.to_speedscope(name), handle)

    def summary(self) -> Dict[str, Any]:
        """Headline accounting: samples, wall seconds, distinct stacks,
        and the sampling duty split (signal vs sweep)."""
        with self._lock:
            distinct = len(self.samples)
        return {
            "interval": self.interval,
            "samples": self.sample_count,
            "signal_samples": self.signal_samples,
            "sweep_samples": self.sweep_samples,
            "distinct_stacks": distinct,
            "wall_seconds": self.wall_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self._running else "stopped"
        return (
            f"SamplingProfiler({state}, interval={self.interval}, "
            f"samples={self.sample_count})"
        )
