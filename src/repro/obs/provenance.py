"""Per-chart decision provenance: *why* a chart landed at its rank.

A :class:`ChartProvenance` record captures every fact the ranking
pipeline used when it placed one emitted visualization: the recognizer
verdict (and its probability when the model exposes one), the expert
M/Q/W factor values, the chart's dominance edges in and out of the
partial-order graph, its learning-to-rank score, the hybrid blend
positions, and the per-rule pruning accounting of the run that
eliminated its sibling candidates.  ``SelectionResult.provenance`` maps
a stable chart id to one record per emitted chart;
:func:`repro.core.explain.provenance_report` renders them as a
human-readable "why this rank" report.

Records are plain data (floats, strings, dicts) so this module — like
the rest of :mod:`repro.obs` — imports nothing from the rest of
``repro`` and every record serialises cleanly to JSON for the event log
and golden snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["ChartProvenance", "render_provenance"]


@dataclass
class ChartProvenance:
    """Everything the pipeline knew when it ranked one emitted chart.

    Attributes
    ----------
    node_id:
        Stable identity of the chart (chart type + columns + transform
        + aggregate + order), shared with the event log and snapshots.
    rank:
        1-based final position among the emitted top-k.
    description:
        The chart's one-line human-readable summary.
    m, q, w:
        The normalised partial-order factors (matching quality,
        transformation quality, column importance); ``None`` when the
        run's ranker never scored them and they could not be derived.
    score:
        The weight-aware partial-order score S(v); ``None`` for pure
        learned rankers.
    ltr_score:
        The LambdaMART model score; ``None`` when no learned ranker ran.
    hybrid:
        ``{"alpha", "ltr_position", "po_position", "combined"}`` when
        the hybrid blend decided the rank; ``None`` otherwise.
    recognizer:
        ``{"model", "verdict", "probability"}`` when a trained
        recognizer filtered candidates; ``None`` when the expert
        M(v) > 0 criterion (or no filter) ran instead.
    dominates, dominated_by:
        Dominance edges out of / into this chart in the partial-order
        graph over the run's valid candidates.
    siblings_pruned:
        Per-decision-rule counts of sibling candidates the run pruned
        before ranking (the whole run's accounting, identical across
        records of one run).
    considered, emitted:
        The run's candidate accounting; ``considered == emitted +
        sum(siblings_pruned.values())`` by construction.
    request_id:
        The :func:`repro.obs.context.request_scope` id of the run that
        produced this record; ``None`` outside a scope.  The join key
        tying a chart's "why this rank" back to its spans, events, and
        metric exemplars in ``repro obs timeline``.
    """

    node_id: str
    rank: int
    description: str
    m: Optional[float] = None
    q: Optional[float] = None
    w: Optional[float] = None
    score: Optional[float] = None
    ltr_score: Optional[float] = None
    hybrid: Optional[Dict[str, float]] = None
    recognizer: Optional[Dict[str, Any]] = None
    dominates: int = 0
    dominated_by: int = 0
    siblings_pruned: Dict[str, int] = field(default_factory=dict)
    considered: int = 0
    emitted: int = 0
    request_id: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (event log / snapshot payloads)."""
        payload: Dict[str, Any] = {
            "node_id": self.node_id,
            "rank": self.rank,
            "description": self.description,
            "dominates": self.dominates,
            "dominated_by": self.dominated_by,
            "siblings_pruned": dict(self.siblings_pruned),
            "considered": self.considered,
            "emitted": self.emitted,
        }
        for key in ("m", "q", "w", "score", "ltr_score"):
            value = getattr(self, key)
            if value is not None:
                payload[key] = value
        if self.hybrid is not None:
            payload["hybrid"] = dict(self.hybrid)
        if self.recognizer is not None:
            payload["recognizer"] = dict(self.recognizer)
        if self.request_id is not None:
            payload["request_id"] = self.request_id
        return payload

    def summary(self) -> str:
        """Multi-line "why this rank" text for one chart."""
        lines = [f"#{self.rank}: {self.description}"]
        if self.m is not None:
            lines.append(
                f"  factors: M={self.m:.3f} (chart/data fit), "
                f"Q={self.q:.3f} (summarisation), "
                f"W={self.w:.3f} (column importance)"
            )
        if self.score is not None:
            lines.append(
                f"  partial order: S(v)={self.score:.4g}; dominates "
                f"{self.dominates} charts, dominated by {self.dominated_by}"
            )
        if self.ltr_score is not None:
            lines.append(f"  learning-to-rank score: {self.ltr_score:.4f}")
        if self.hybrid is not None:
            lines.append(
                "  hybrid blend: ltr position "
                f"{int(self.hybrid['ltr_position'])} + "
                f"{self.hybrid['alpha']:g} x partial-order position "
                f"{int(self.hybrid['po_position'])} = "
                f"{self.hybrid['combined']:g}"
            )
        if self.recognizer is not None:
            verdict = "good" if self.recognizer.get("verdict") else "bad"
            probability = self.recognizer.get("probability")
            detail = (
                f" (p={probability:.2f})" if probability is not None else ""
            )
            lines.append(
                f"  recognizer [{self.recognizer.get('model')}]: "
                f"{verdict}{detail}"
            )
        pruned_total = sum(self.siblings_pruned.values())
        if self.considered:
            lines.append(
                f"  siblings: {self.considered} variants considered, "
                f"{self.emitted} emitted, {pruned_total} pruned"
            )
            for rule, count in sorted(
                self.siblings_pruned.items(), key=lambda kv: (-kv[1], kv[0])
            )[:5]:
                lines.append(f"    - {rule}: {count}")
        return "\n".join(lines)


def render_provenance(records: List[ChartProvenance]) -> str:
    """The full "why this rank" report for one run, best rank first."""
    ordered = sorted(records, key=lambda record: record.rank)
    return "\n\n".join(record.summary() for record in ordered) + (
        "\n" if ordered else ""
    )
