"""Nested-span tracing with JSON and Chrome trace-event export.

A :class:`Tracer` hands out :class:`Span` context managers::

    tracer = Tracer()
    with tracer.span("select_top_k", table="flights") as root:
        with tracer.span("enumerate") as span:
            span.add("candidates", 412)
    tracer.write_chrome_trace("trace.json")   # open in chrome://tracing

Spans nest per thread (a span opened while another is active becomes
its child); spans opened on worker threads start their own top-level
tree tagged with that thread's id, which the Chrome viewer renders as
separate rows.  Timing uses ``time.perf_counter`` offsets from the
tracer's epoch, so durations are monotonic even if the wall clock
steps.

Everything here is pure stdlib and thread-safe; a tracer is cheap
enough to create per request and can be exported at any time (open
spans are simply excluded until they close).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .context import current_request_id

__all__ = ["Span", "Tracer", "maybe_span"]


class Span:
    """One timed operation: name, interval, attributes, counters, children.

    ``start``/``end`` are seconds relative to the owning tracer's epoch;
    ``duration`` is ``end - start`` (0.0 while the span is still open).
    ``attributes`` hold one-shot facts (``span.set("k", 5)``);
    ``counters`` accumulate (``span.add("candidates", 10)``).
    """

    __slots__ = (
        "name",
        "start",
        "end",
        "attributes",
        "counters",
        "children",
        "thread_id",
    )

    def __init__(self, name: str, start: float, thread_id: int, **attributes: Any) -> None:
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes)
        self.counters: Dict[str, float] = {}
        self.children: List["Span"] = []
        self.thread_id = thread_id

    @property
    def duration(self) -> float:
        """Seconds from start to end; 0.0 while the span is open."""
        return 0.0 if self.end is None else self.end - self.start

    def set(self, key: str, value: Any) -> "Span":
        """Record a one-shot attribute on this span."""
        self.attributes[key] = value
        return self

    def add(self, key: str, amount: float = 1.0) -> "Span":
        """Accumulate a counter on this span."""
        self.counters[key] = self.counters.get(key, 0.0) + amount
        return self

    def to_dict(self) -> Dict[str, Any]:
        """Nested JSON-serialisable form of this span and its children."""
        payload: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.attributes:
            payload["attributes"] = {
                k: _jsonable(v) for k, v in self.attributes.items()
            }
        if self.counters:
            payload["counters"] = dict(self.counters)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    def find(self, name: str) -> Optional["Span"]:
        """Depth-first lookup of a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "open" if self.end is None else f"{self.duration * 1000:.3f}ms"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"


#: Synthetic Chrome-trace tids for adopted worker spans start here —
#: far above real Linux tids, so they can never collide with the
#: parent's own thread rows.
_SYNTHETIC_TID_BASE = 1_000_000


def _jsonable(value: Any) -> Any:
    """Best-effort JSON-safe projection of an attribute value."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Tracer:
    """Produces nested spans and exports them as JSON or Chrome events.

    Thread model: each thread keeps its own open-span stack, so worker
    threads trace independently; their finished top-level spans land in
    the shared ``spans`` list tagged with the worker's thread id.
    """

    def __init__(self) -> None:
        self.epoch = time.perf_counter()
        self.epoch_unix = time.time()
        self.spans: List[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        # Shared view of every thread's open-span names, for the
        # sampling profiler: {thread_id: (outermost, ..., innermost)}.
        self._open_names: Dict[int, Tuple[str, ...]] = {}

    # -- span production ------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def current(self) -> Optional[Span]:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a span; it closes (and records its end time) on exit.

        The span becomes a child of the calling thread's innermost open
        span, or a new top-level span when none is open.  A span opened
        inside a :func:`~repro.obs.context.request_scope` carries the
        scope's id as a ``request_id`` attribute (explicit attributes
        win).
        """
        stack = self._stack()
        thread_id = threading.get_ident()
        span = Span(
            name,
            time.perf_counter() - self.epoch,
            thread_id,
            **attributes,
        )
        if "request_id" not in span.attributes:
            request_id = current_request_id()
            if request_id is not None:
                span.attributes["request_id"] = request_id
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        with self._lock:
            self._open_names[thread_id] = tuple(s.name for s in stack)
        try:
            yield span
        finally:
            span.end = time.perf_counter() - self.epoch
            stack.pop()
            with self._lock:
                if stack:
                    self._open_names[thread_id] = tuple(
                        s.name for s in stack
                    )
                else:
                    self._open_names.pop(thread_id, None)
                    self.spans.append(span)

    def open_stacks(self) -> Dict[int, Tuple[str, ...]]:
        """Every thread's currently-open span names, outermost first —
        the span attribution the sampling profiler prefixes onto its
        stacks (a snapshot copy; safe to read from any thread)."""
        with self._lock:
            return dict(self._open_names)

    def adopt(
        self,
        spans: Sequence[Span],
        epoch_unix: float,
        worker: Optional[str] = None,
    ) -> None:
        """Graft finished spans captured by *another* tracer (typically
        in a pool worker process) onto this one.

        ``epoch_unix`` is the capturing tracer's wall-clock epoch; span
        offsets are rebased onto this tracer's epoch so the merged
        timeline lines up (subject to cross-process clock skew, which
        on one host is microseconds).  ``worker`` tags each adopted
        root, and the Chrome export assigns every distinct worker label
        its own synthetic tid so worker timelines render as separate
        rows instead of interleaving on the parent's.
        """
        delta = epoch_unix - self.epoch_unix

        def rebase(span: Span) -> None:
            span.start += delta
            if span.end is not None:
                span.end += delta
            for child in span.children:
                rebase(child)

        with self._lock:
            for span in spans:
                rebase(span)
                if worker is not None:
                    span.attributes.setdefault("worker", worker)
                self.spans.append(span)

    # -- export ---------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Nested JSON form: ``{"epoch_unix": ..., "spans": [...]}``."""
        with self._lock:
            roots = list(self.spans)
        return {
            "epoch_unix": self.epoch_unix,
            "spans": [span.to_dict() for span in roots],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The nested form serialised to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The Chrome trace-event form (open via ``chrome://tracing``).

        Every finished span becomes one complete ("ph": "X") event with
        microsecond ``ts``/``dur``; nesting is implied by containment,
        which the viewer reconstructs per (pid, tid) row.  Spans adopted
        from pool workers (root tagged with a ``worker`` attribute by
        :meth:`adopt`) get a stable synthetic tid per distinct worker —
        thread ids from other processes can collide with the parent's,
        which used to interleave every worker's phases on one row — and
        a ``thread_name`` metadata event labels each synthetic row.
        """
        events: List[Dict[str, Any]] = []
        pid = os.getpid()

        with self._lock:
            roots = list(self.spans)

        # Stable mapping: worker label -> synthetic tid, in first-seen
        # root order so re-exports agree.
        worker_tids: Dict[str, int] = {}
        for root in roots:
            worker = root.attributes.get("worker")
            if worker is not None and worker not in worker_tids:
                worker_tids[worker] = _SYNTHETIC_TID_BASE + len(worker_tids)

        def emit(span: Span, tid: int) -> None:
            args = {k: _jsonable(v) for k, v in span.attributes.items()}
            args.update(span.counters)
            events.append(
                {
                    "name": span.name,
                    "cat": "repro",
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            for child in span.children:
                emit(child, tid)

        for root in roots:
            worker = root.attributes.get("worker")
            tid = worker_tids.get(worker, root.thread_id)
            emit(root, tid)
        for worker, tid in worker_tids.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": f"worker {worker}"},
                }
            )
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "epochUnix": self.epoch_unix,
        }

    def write_chrome_trace(self, path) -> None:
        """Serialise :meth:`to_chrome_trace` to a file."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=2)

    def find(self, name: str) -> Optional[Span]:
        """Depth-first lookup of a finished span by name across roots."""
        with self._lock:
            roots = list(self.spans)
        for root in roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def clear(self) -> None:
        """Drop all finished spans (open spans are unaffected)."""
        with self._lock:
            self.spans.clear()


@contextmanager
def maybe_span(
    tracer: Optional[Tracer], name: str, **attributes: Any
) -> Iterator[Optional[Span]]:
    """``tracer.span(...)`` when a tracer is given, else a free no-op.

    Lets instrumented code keep one shape for both paths::

        with maybe_span(tracer, "enumerate") as span:
            ...
            if span is not None:
                span.add("candidates", len(nodes))
    """
    if tracer is None:
        yield None
    else:
        with tracer.span(name, **attributes) as span:
            yield span
