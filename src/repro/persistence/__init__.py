"""Model persistence: JSON round-trips for every trained component."""

from .pipeline_io import (
    load_ltr,
    load_recognizer,
    ltr_from_dict,
    ltr_to_dict,
    recognizer_from_dict,
    recognizer_to_dict,
    save_ltr,
    save_recognizer,
)
from .serialization import from_dict, load_model, save_model, to_dict

__all__ = [
    "from_dict",
    "to_dict",
    "save_model",
    "load_model",
    "recognizer_to_dict",
    "recognizer_from_dict",
    "ltr_to_dict",
    "ltr_from_dict",
    "save_recognizer",
    "load_recognizer",
    "save_ltr",
    "load_ltr",
]
