"""Persistence for the pipeline-level wrappers (recognizer, LTR ranker).

Builds on :mod:`repro.persistence.serialization` to round-trip the
trained online components of a DeepEye deployment: the recognition
classifier (with its scaler and configuration) and the LambdaMART
ranker, so "train offline, ship online" works across processes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from ..core.ltr import LearningToRankRanker
from ..core.recognition import VisualizationRecognizer
from ..errors import ReproError
from .serialization import from_dict, to_dict

__all__ = [
    "recognizer_to_dict",
    "recognizer_from_dict",
    "ltr_to_dict",
    "ltr_from_dict",
    "save_recognizer",
    "load_recognizer",
    "save_ltr",
    "load_ltr",
]


def recognizer_to_dict(recognizer: VisualizationRecognizer) -> Dict:
    """Serialise a fitted recognizer (model + scaler + config)."""
    if not recognizer._fitted:
        raise ReproError("cannot serialise an unfitted recognizer")
    return {
        "kind": "visualization_recognizer",
        "model_name": recognizer.model_name,
        "extended_features": recognizer.extended_features,
        "balance_classes": recognizer.balance_classes,
        "random_state": recognizer.random_state,
        "model": to_dict(recognizer._model),
        "scaler": None if recognizer._scaler is None else to_dict(recognizer._scaler),
    }


def recognizer_from_dict(payload: Dict) -> VisualizationRecognizer:
    """Rebuild a recognizer from :func:`recognizer_to_dict` output."""
    if payload.get("kind") != "visualization_recognizer":
        raise ReproError(f"not a serialised recognizer: {payload.get('kind')!r}")
    recognizer = VisualizationRecognizer(
        model=payload["model_name"],
        extended_features=payload["extended_features"],
        balance_classes=payload["balance_classes"],
        random_state=payload["random_state"],
    )
    recognizer._model = from_dict(payload["model"])
    if payload["scaler"] is not None:
        recognizer._scaler = from_dict(payload["scaler"])
    recognizer._fitted = True
    return recognizer


def ltr_to_dict(ranker: LearningToRankRanker) -> Dict:
    """Serialise a fitted learning-to-rank ranker."""
    if not ranker._fitted:
        raise ReproError("cannot serialise an unfitted LTR ranker")
    return {
        "kind": "learning_to_rank_ranker",
        "extended_features": ranker.extended_features,
        "model": to_dict(ranker._model),
    }


def ltr_from_dict(payload: Dict) -> LearningToRankRanker:
    """Rebuild an LTR ranker from :func:`ltr_to_dict` output."""
    if payload.get("kind") != "learning_to_rank_ranker":
        raise ReproError(f"not a serialised LTR ranker: {payload.get('kind')!r}")
    ranker = LearningToRankRanker(extended_features=payload["extended_features"])
    ranker._model = from_dict(payload["model"])
    ranker._fitted = True
    return ranker


def _save(payload: Dict, path: Union[str, Path]) -> None:
    with Path(path).open("w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def _load(path: Union[str, Path]) -> Dict:
    with Path(path).open(encoding="utf-8") as handle:
        return json.load(handle)


def save_recognizer(recognizer: VisualizationRecognizer, path: Union[str, Path]) -> None:
    """Write a fitted recognizer to a JSON file."""
    _save(recognizer_to_dict(recognizer), path)


def load_recognizer(path: Union[str, Path]) -> VisualizationRecognizer:
    """Load a recognizer written by :func:`save_recognizer`."""
    return recognizer_from_dict(_load(path))


def save_ltr(ranker: LearningToRankRanker, path: Union[str, Path]) -> None:
    """Write a fitted LTR ranker to a JSON file."""
    _save(ltr_to_dict(ranker), path)


def load_ltr(path: Union[str, Path]) -> LearningToRankRanker:
    """Load an LTR ranker written by :func:`save_ltr`."""
    return ltr_from_dict(_load(path))
